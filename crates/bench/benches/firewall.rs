//! Micro-benchmarks of the Security Builder path: policy lookup and the
//! full checking-module pass, across Configuration Memory sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use secbus_bus::{AddrRange, MasterId, Op, Transaction, TxnId, Width};
use secbus_core::{AdfSet, ConfigMemory, FirewallId, LocalFirewall, Rwa, SecurityPolicy};
use secbus_sim::Cycle;
use std::hint::black_box;

fn table(n: usize) -> ConfigMemory {
    ConfigMemory::with_policies(
        (0..n)
            .map(|i| {
                SecurityPolicy::internal(
                    i as u16,
                    AddrRange::new((i as u32) * 0x1000, 0x800),
                    Rwa::ReadWrite,
                    AdfSet::ALL,
                )
            })
            .collect(),
    )
    .unwrap()
}

fn txn(addr: u32) -> Transaction {
    Transaction {
        id: TxnId(0),
        master: MasterId(0),
        op: Op::Write,
        addr,
        width: Width::Word,
        data: 0,
        burst: 1,
        issued_at: Cycle(0),
    }
}

fn bench_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("config_memory_lookup");
    for n in [4usize, 16, 64, 256] {
        let cm = table(n);
        let probe = ((n / 2) as u32) * 0x1000 + 4;
        g.bench_function(format!("policies_{n}"), |b| {
            b.iter(|| cm.lookup(black_box(probe)));
        });
    }
    g.finish();
}

fn bench_check(c: &mut Criterion) {
    let mut g = c.benchmark_group("firewall_check");
    for n in [4usize, 64] {
        let mut fw = LocalFirewall::new(FirewallId(0), "bench", table(n));
        let allowed = txn(((n / 2) as u32) * 0x1000);
        let denied = txn(0xffff_0000);
        g.bench_function(format!("pass_{n}"), |b| {
            b.iter(|| fw.check(black_box(&allowed), Cycle(0)));
        });
        g.bench_function(format!("deny_{n}"), |b| {
            b.iter(|| fw.check(black_box(&denied), Cycle(0)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_lookup, bench_check);
criterion_main!(benches);
