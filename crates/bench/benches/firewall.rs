//! Micro-benchmarks of the Security Builder path: policy lookup and the
//! full checking-module pass, across Configuration Memory sizes.

use secbus_bench::bench;
use secbus_bench::timing::observe;
use secbus_bus::{AddrRange, MasterId, Op, Transaction, TxnId, Width};
use secbus_core::{AdfSet, ConfigMemory, FirewallId, LocalFirewall, Rwa, SecurityPolicy};
use secbus_sim::Cycle;

fn table(n: usize) -> ConfigMemory {
    ConfigMemory::with_policies(
        (0..n)
            .map(|i| {
                SecurityPolicy::internal(
                    i as u16,
                    AddrRange::new((i as u32) * 0x1000, 0x800),
                    Rwa::ReadWrite,
                    AdfSet::ALL,
                )
            })
            .collect(),
    )
    .unwrap()
}

fn txn(addr: u32) -> Transaction {
    Transaction {
        id: TxnId(0),
        master: MasterId(0),
        op: Op::Write,
        addr,
        width: Width::Word,
        data: 0,
        burst: 1,
        issued_at: Cycle(0),
    }
}

fn bench_lookup() {
    for n in [4usize, 16, 64, 256] {
        let cm = table(n);
        let probe = ((n / 2) as u32) * 0x1000 + 4;
        bench("config_memory_lookup", &format!("policies_{n}"), 0, || {
            observe(cm.lookup(observe(probe)));
        });
    }
}

fn bench_check() {
    for n in [4usize, 64] {
        let mut fw = LocalFirewall::new(FirewallId(0), "bench", table(n));
        let allowed = txn(((n / 2) as u32) * 0x1000);
        let denied = txn(0xffff_0000);
        bench("firewall_check", &format!("pass_{n}"), 0, || {
            observe(fw.check(observe(&allowed), Cycle(0)));
        });
        bench("firewall_check", &format!("deny_{n}"), 0, || {
            observe(fw.check(observe(&denied), Cycle(0)));
        });
    }
}

fn main() {
    bench_lookup();
    bench_check();
}
