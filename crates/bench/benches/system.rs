//! Whole-system benchmarks: simulation rate of the case study, with and
//! without the security layer (host cycles per simulated cycle).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use secbus_soc::casestudy::{case_study, CaseStudyConfig};

fn bench_case_study(c: &mut Criterion) {
    let mut g = c.benchmark_group("case_study");
    g.sample_size(10);
    for security in [false, true] {
        let label = if security { "protected_10k_cycles" } else { "generic_10k_cycles" };
        g.bench_function(label, |b| {
            b.iter_batched(
                || case_study(CaseStudyConfig { security, ip_samples: 0, ..Default::default() }),
                |mut soc| {
                    soc.run(10_000);
                    soc
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench_case_study);
criterion_main!(benches);
