//! Whole-system benchmarks: simulation rate of the case study, with and
//! without the security layer (host cycles per simulated cycle).

use secbus_bench::timing::observe;
use secbus_soc::casestudy::{case_study, CaseStudyConfig};
use std::time::Instant;

fn main() {
    for security in [false, true] {
        let label = if security {
            "protected_10k_cycles"
        } else {
            "generic_10k_cycles"
        };
        // Each run consumes its SoC, so time explicit fresh-build runs
        // rather than going through the re-entrant harness.
        const RUNS: usize = 5;
        let mut samples = Vec::with_capacity(RUNS);
        for _ in 0..RUNS {
            let mut soc = case_study(CaseStudyConfig {
                security,
                ip_samples: 0,
                ..Default::default()
            });
            let start = Instant::now();
            soc.run(10_000);
            samples.push(start.elapsed().as_secs_f64() * 1e3);
            observe(soc);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        println!(
            "case_study/{label:<28} {:>9.2} ms (median of {RUNS})",
            samples[RUNS / 2]
        );
    }
}
