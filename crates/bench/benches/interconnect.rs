//! Micro-benchmarks of the bus layer: arbitration and full tick loops.

use criterion::{criterion_group, criterion_main, Criterion};
use secbus_bus::{
    AddrRange, Arbiter, BusConfig, FixedPriority, MasterId, Op, RoundRobin, SharedBus, Tdma,
    Width,
};
use secbus_sim::Cycle;
use std::hint::black_box;

fn bench_arbiters(c: &mut Criterion) {
    let requesting: Vec<MasterId> = (0..8).map(MasterId).collect();
    let mut g = c.benchmark_group("arbiter_grant");
    g.bench_function("fixed_priority", |b| {
        let mut a = FixedPriority;
        b.iter(|| a.grant(black_box(&requesting), Cycle(0)));
    });
    g.bench_function("round_robin", |b| {
        let mut a = RoundRobin::default();
        b.iter(|| a.grant(black_box(&requesting), Cycle(0)));
    });
    g.bench_function("tdma", |b| {
        let mut a = Tdma::new(requesting.clone(), 8);
        b.iter(|| a.grant(black_box(&requesting), Cycle(0)));
    });
    g.finish();
}

fn bench_bus_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("bus");
    g.bench_function("tick_4masters_loaded", |b| {
        let mut bus = SharedBus::new(BusConfig::default(), Box::new(RoundRobin::default()));
        let masters: Vec<MasterId> = (0..4).map(|_| bus.add_master()).collect();
        let s = bus.add_slave();
        bus.map_range(s, AddrRange::new(0, 0x10000)).unwrap();
        let mut cycle = 0u64;
        b.iter(|| {
            for &m in &masters {
                if bus.pending_requests(m) < 2 {
                    bus.issue(m, Op::Read, 0x100, Width::Word, 0, 1, Cycle(cycle));
                }
            }
            bus.tick(Cycle(cycle));
            while let Some(t) = bus.slave_pop(s) {
                bus.slave_complete(
                    s,
                    secbus_bus::Response {
                        txn: t.id,
                        data: 0,
                        result: Ok(()),
                        completed_at: Cycle(cycle),
                    },
                );
            }
            for &m in &masters {
                while bus.poll_response(m).is_some() {}
            }
            cycle += 1;
        });
    });
    g.finish();
}

criterion_group!(benches, bench_arbiters, bench_bus_tick);
criterion_main!(benches);
