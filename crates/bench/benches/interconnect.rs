//! Micro-benchmarks of the bus layer: arbitration and full tick loops.

use secbus_bench::bench;
use secbus_bench::timing::observe;
use secbus_bus::{
    AddrRange, Arbiter, BusConfig, FixedPriority, MasterId, Op, RoundRobin, SharedBus, Tdma, Width,
};
use secbus_sim::Cycle;

fn bench_arbiters() {
    let requesting: Vec<MasterId> = (0..8).map(MasterId).collect();
    let mut a = FixedPriority;
    bench("arbiter_grant", "fixed_priority", 0, || {
        observe(a.grant(observe(&requesting), Cycle(0)));
    });
    let mut a = RoundRobin::default();
    bench("arbiter_grant", "round_robin", 0, || {
        observe(a.grant(observe(&requesting), Cycle(0)));
    });
    let mut a = Tdma::new(requesting.clone(), 8);
    bench("arbiter_grant", "tdma", 0, || {
        observe(a.grant(observe(&requesting), Cycle(0)));
    });
}

fn bench_bus_tick() {
    let mut bus = SharedBus::new(BusConfig::default(), Box::new(RoundRobin::default()));
    let masters: Vec<MasterId> = (0..4).map(|_| bus.add_master()).collect();
    let s = bus.add_slave();
    bus.map_range(s, AddrRange::new(0, 0x10000)).unwrap();
    let mut cycle = 0u64;
    bench("bus", "tick_4masters_loaded", 0, || {
        for &m in &masters {
            if bus.pending_requests(m) < 2 {
                bus.issue(m, Op::Read, 0x100, Width::Word, 0, 1, Cycle(cycle));
            }
        }
        bus.tick(Cycle(cycle));
        while let Some(t) = bus.slave_pop(s) {
            bus.slave_complete(
                s,
                secbus_bus::Response {
                    txn: t.id,
                    data: 0,
                    result: Ok(()),
                    completed_at: Cycle(cycle),
                },
            );
        }
        for &m in &masters {
            while bus.poll_response(m).is_some() {}
        }
        cycle += 1;
    });
}

fn main() {
    bench_arbiters();
    bench_bus_tick();
}
