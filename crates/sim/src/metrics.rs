//! The metrics registry: one hierarchical, deterministically-ordered
//! snapshot of every component's counters and histograms.
//!
//! Components keep accounting in their own [`Stats`] bags; the registry
//! collects those bags under stable component names and renders a single
//! JSON document. Both levels are `BTreeMap`-ordered, so the rendered
//! snapshot is key-sorted and byte-identical for identical simulations —
//! the property the soak harnesses assert (serial == parallel, same seed
//! == same bytes).
//!
//! Histograms are summarized (`count`/`sum`/`min`/`max`/`mean`/`p50`/`p99`)
//! rather than dumped bucket-by-bucket; the summaries are computed from
//! exact integer state, so they are as deterministic as the counters.

use std::collections::BTreeMap;

use crate::json::Json;
use crate::stats::{Histogram, Stats};

/// A named collection of component [`Stats`], rendered as one snapshot.
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    components: BTreeMap<String, Stats>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `stats` under `component`. Inserting the same component
    /// twice merges (sums) — useful when one logical component keeps
    /// several bags (e.g. the LCF's firewall + crypto stats).
    pub fn insert(&mut self, component: &str, stats: &Stats) {
        self.components
            .entry(component.to_string())
            .or_default()
            .merge(stats);
    }

    /// The collected stats for `component`, if present.
    pub fn component(&self, component: &str) -> Option<&Stats> {
        self.components.get(component)
    }

    /// Component names in sorted order.
    pub fn components(&self) -> impl Iterator<Item = &str> {
        self.components.keys().map(|k| k.as_str())
    }

    /// Read one counter across the `component.key` hierarchy (0 if absent).
    pub fn counter(&self, component: &str, key: &str) -> u64 {
        self.components.get(component).map_or(0, |s| s.counter(key))
    }

    /// The full snapshot: `{component: {"counters": {...}, "histograms":
    /// {...}}}`, every object key-sorted.
    pub fn to_json(&self) -> Json {
        let components = self
            .components
            .iter()
            .map(|(name, stats)| (name.clone(), stats_json(stats)))
            .collect();
        Json::Obj(components)
    }

    /// Compact rendering of [`MetricsRegistry::to_json`].
    pub fn render(&self) -> String {
        self.to_json().render()
    }
}

/// One component's stats bag as key-sorted JSON.
fn stats_json(stats: &Stats) -> Json {
    let counters = stats
        .counters()
        .map(|(k, v)| (k.to_string(), Json::uint(v)))
        .collect();
    let histograms = stats
        .histograms()
        .map(|(k, h)| (k.to_string(), histogram_json(h)))
        .collect();
    Json::Obj(vec![
        ("counters".to_string(), Json::Obj(counters)),
        ("histograms".to_string(), Json::Obj(histograms)),
    ])
}

/// Histogram summary with alphabetically-ordered keys (the snapshot's
/// key-sorted invariant applies to every nesting level).
fn histogram_json(h: &Histogram) -> Json {
    Json::Obj(vec![
        ("count".to_string(), Json::uint(h.count())),
        ("max".to_string(), Json::uint(h.max().unwrap_or(0))),
        ("mean".to_string(), Json::Num(h.mean().unwrap_or(0.0))),
        ("min".to_string(), Json::uint(h.min().unwrap_or(0))),
        ("p50".to_string(), Json::uint(h.quantile(0.5).unwrap_or(0))),
        ("p99".to_string(), Json::uint(h.quantile(0.99).unwrap_or(0))),
        ("sum".to_string(), Json::uint(h.sum())),
    ])
}

/// Whether every object in `doc` has strictly sorted keys — the invariant
/// the CI observe-smoke asserts on rendered snapshots.
pub fn is_key_sorted(doc: &Json) -> bool {
    match doc {
        Json::Obj(fields) => {
            fields.windows(2).all(|w| w[0].0 < w[1].0)
                && fields.iter().all(|(_, v)| is_key_sorted(v))
        }
        Json::Arr(items) => items.iter().all(is_key_sorted),
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> Stats {
        let mut s = Stats::new();
        s.add("z.last", 3);
        s.incr("a.first");
        s.record("lat", 4);
        s.record("lat", 8);
        s
    }

    #[test]
    fn snapshot_is_key_sorted_and_parses() {
        let mut reg = MetricsRegistry::new();
        reg.insert("soc", &sample_stats());
        reg.insert("bus", &sample_stats());
        let doc = reg.to_json();
        assert!(is_key_sorted(&doc));
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        // Components come out in sorted order regardless of insert order.
        let names: Vec<&str> = reg.components().collect();
        assert_eq!(names, vec!["bus", "soc"]);
    }

    #[test]
    fn duplicate_insert_merges() {
        let mut reg = MetricsRegistry::new();
        reg.insert("lcf", &sample_stats());
        reg.insert("lcf", &sample_stats());
        assert_eq!(reg.counter("lcf", "z.last"), 6);
        let h = reg.component("lcf").unwrap().histogram("lat").unwrap();
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn histogram_summary_fields() {
        let mut reg = MetricsRegistry::new();
        reg.insert("x", &sample_stats());
        let doc = reg.to_json();
        let lat = doc
            .get("x")
            .and_then(|c| c.get("histograms"))
            .and_then(|h| h.get("lat"))
            .unwrap();
        assert_eq!(lat.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(lat.get("min").unwrap().as_u64(), Some(4));
        assert_eq!(lat.get("max").unwrap().as_u64(), Some(8));
        assert_eq!(lat.get("sum").unwrap().as_u64(), Some(12));
        assert!((lat.get("mean").unwrap().as_f64().unwrap() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn is_key_sorted_rejects_unsorted() {
        let bad = Json::Obj(vec![
            ("b".to_string(), Json::uint(1)),
            ("a".to_string(), Json::uint(2)),
        ]);
        assert!(!is_key_sorted(&bad));
        let nested_bad = Json::Obj(vec![("a".to_string(), bad)]);
        assert!(!is_key_sorted(&nested_bad));
        let dup = Json::Obj(vec![
            ("a".to_string(), Json::uint(1)),
            ("a".to_string(), Json::uint(2)),
        ]);
        assert!(!is_key_sorted(&dup), "duplicate keys are not sorted");
    }

    #[test]
    fn identical_inputs_render_identically() {
        let make = || {
            let mut reg = MetricsRegistry::new();
            reg.insert("monitor", &sample_stats());
            reg.insert("fw.cpu0", &sample_stats());
            reg.render()
        };
        assert_eq!(make(), make());
    }
}
