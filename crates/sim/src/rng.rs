//! Deterministic randomness for workloads and adversaries.
//!
//! All stochastic behaviour in the simulator (synthetic traffic mixes,
//! adversary timing, DoS payloads) draws from a [`SimRng`] derived from a
//! single top-level seed, so that a scenario is exactly reproducible from
//! `(seed, configuration)`. Independent components derive independent
//! streams with [`SimRng::derive`] to avoid accidental cross-coupling when
//! a component is added or removed.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded, splittable random-number generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    seed: u64,
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent stream for the component named `label`.
    ///
    /// Mixing uses an FxHash-style multiply-xor of the label bytes into the
    /// base seed; it is stable across runs and platforms.
    pub fn derive(&self, label: &str) -> SimRng {
        let mut h = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        for &b in label.as_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            h = h.rotate_left(23);
        }
        SimRng::new(h)
    }

    /// Uniform `u32`.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    /// Uniform `u64`.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "SimRng::below: bound must be positive");
        self.inner.gen_range(0..bound)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen::<f64>() < p.clamp(0.0, 1.0)
    }

    /// Fill a byte slice with uniform random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.inner.fill_bytes(buf);
    }

    /// Pick a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "SimRng::pick: empty slice");
        &items[self.below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be essentially uncorrelated");
    }

    #[test]
    fn derive_is_stable_and_label_sensitive() {
        let root = SimRng::new(42);
        let mut c1 = root.derive("cpu0");
        let mut c1_again = root.derive("cpu0");
        let mut c2 = root.derive("cpu1");
        assert_eq!(c1.next_u64(), c1_again.next_u64());
        let mut c1b = root.derive("cpu0");
        let _ = c1b.next_u64();
        assert_ne!(c1b.next_u64(), c2.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range probabilities clamp instead of panicking.
        assert!(r.chance(2.5));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn chance_rate_is_plausible() {
        let mut r = SimRng::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn pick_covers_all_elements() {
        let mut r = SimRng::new(13);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*r.pick(&items) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_bound_panics() {
        SimRng::new(0).below(0);
    }
}
