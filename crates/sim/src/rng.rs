//! Deterministic randomness for workloads and adversaries.
//!
//! All stochastic behaviour in the simulator (synthetic traffic mixes,
//! adversary timing, DoS payloads, fault schedules) draws from a [`SimRng`]
//! derived from a single top-level seed, so that a scenario is exactly
//! reproducible from `(seed, configuration)`. Independent components derive
//! independent streams with [`SimRng::derive`] to avoid accidental
//! cross-coupling when a component is added or removed.
//!
//! The generator is a self-contained xoshiro256++ seeded through SplitMix64
//! — no external crates, identical output on every platform, and cheap
//! enough for per-cycle use.

/// A seeded, splittable random-number generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
    seed: u64,
}

/// SplitMix64 step: expands a 64-bit seed into well-mixed state words.
#[inline]
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { state, seed }
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent stream for the component named `label`.
    ///
    /// Mixing uses an FxHash-style multiply-xor of the label bytes into the
    /// base seed; it is stable across runs and platforms.
    pub fn derive(&self, label: &str) -> SimRng {
        let mut h = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        for &b in label.as_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            h = h.rotate_left(23);
        }
        SimRng::new(h)
    }

    /// Uniform `u32`.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `u64` (xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "SimRng::below: bound must be positive");
        // Lemire-style rejection to keep the draw unbiased.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Bernoulli draw with probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits → f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p.clamp(0.0, 1.0)
    }

    /// Fill a byte slice with uniform random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "SimRng::pick: empty slice");
        &items[self.below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be essentially uncorrelated");
    }

    #[test]
    fn derive_is_stable_and_label_sensitive() {
        let root = SimRng::new(42);
        let mut c1 = root.derive("cpu0");
        let mut c1_again = root.derive("cpu0");
        let mut c2 = root.derive("cpu1");
        assert_eq!(c1.next_u64(), c1_again.next_u64());
        let mut c1b = root.derive("cpu0");
        let _ = c1b.next_u64();
        assert_ne!(c1b.next_u64(), c2.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn below_covers_small_range_uniformly() {
        let mut r = SimRng::new(9);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[r.below(4) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((800..1200).contains(&c), "bucket {i} count {c}");
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range probabilities clamp instead of panicking.
        assert!(r.chance(2.5));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn chance_rate_is_plausible() {
        let mut r = SimRng::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn fill_bytes_fills_every_byte() {
        let mut r = SimRng::new(17);
        let mut buf = [0u8; 37];
        // With 37 random bytes the odds that any position is zero in all of
        // eight attempts are negligible.
        let mut ever_nonzero = [false; 37];
        for _ in 0..8 {
            r.fill_bytes(&mut buf);
            for (flag, &b) in ever_nonzero.iter_mut().zip(buf.iter()) {
                *flag |= b != 0;
            }
        }
        assert!(ever_nonzero.iter().all(|&f| f));
    }

    #[test]
    fn pick_covers_all_elements() {
        let mut r = SimRng::new(13);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*r.pick(&items) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_bound_panics() {
        SimRng::new(0).below(0);
    }
}
