//! Bounded event logs with cycle timestamps.
//!
//! Firewalls, the security monitor and the attack scenario runner all need
//! an ordered record of "what happened when". [`EventLog`] is a bounded
//! ring buffer of `(Cycle, T)` entries: old entries are evicted once the
//! capacity is reached, so a long-running simulation cannot grow without
//! bound, while tests and short scenarios see every event.

use std::collections::VecDeque;

use crate::cycle::Cycle;

/// A bounded, timestamped event log.
#[derive(Debug, Clone)]
pub struct EventLog<T> {
    entries: VecDeque<(Cycle, T)>,
    capacity: usize,
    total: u64,
    dropped: u64,
}

impl<T> EventLog<T> {
    /// Create a log holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity` is zero — a log that can hold nothing is a
    /// configuration error, not a useful object.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "EventLog capacity must be positive");
        EventLog {
            entries: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            total: 0,
            dropped: 0,
        }
    }

    /// Append an event at time `at`.
    pub fn push(&mut self, at: Cycle, event: T) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back((at, event));
        self.total += 1;
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log currently holds no events.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total events ever pushed (including evicted ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterate over retained events in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &(Cycle, T)> {
        self.entries.iter()
    }

    /// The most recent event, if any.
    pub fn last(&self) -> Option<&(Cycle, T)> {
        self.entries.back()
    }

    /// The oldest retained event, if any.
    pub fn first(&self) -> Option<&(Cycle, T)> {
        self.entries.front()
    }

    /// First retained event satisfying `pred`, with its timestamp.
    pub fn find<P: FnMut(&T) -> bool>(&self, mut pred: P) -> Option<&(Cycle, T)> {
        self.entries.iter().find(|(_, e)| pred(e))
    }

    /// Drop all retained events (totals are preserved).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate_in_order() {
        let mut log = EventLog::new(8);
        log.push(Cycle(1), "a");
        log.push(Cycle(5), "b");
        let got: Vec<_> = log.iter().cloned().collect();
        assert_eq!(got, vec![(Cycle(1), "a"), (Cycle(5), "b")]);
        assert_eq!(log.first().unwrap().1, "a");
        assert_eq!(log.last().unwrap().1, "b");
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut log = EventLog::new(3);
        for i in 0..5u64 {
            log.push(Cycle(i), i);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.total(), 5);
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.first().unwrap().1, 2);
        assert_eq!(log.last().unwrap().1, 4);
    }

    #[test]
    fn find_scans_retained() {
        let mut log = EventLog::new(4);
        log.push(Cycle(0), 10);
        log.push(Cycle(1), 20);
        assert_eq!(log.find(|&e| e > 15), Some(&(Cycle(1), 20)));
        assert_eq!(log.find(|&e| e > 25), None);
    }

    #[test]
    fn clear_preserves_totals() {
        let mut log = EventLog::new(2);
        log.push(Cycle(0), ());
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.total(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _: EventLog<()> = EventLog::new(0);
    }
}
