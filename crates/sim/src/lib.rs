//! # secbus-sim — deterministic cycle-level simulation kernel
//!
//! The substrate everything else in the `secbus` workspace is built on.
//! The original paper ("Distributed security for communications and memories
//! in a multiprocessor architecture", RAW/IPDPS 2011) evaluates RTL on a
//! Virtex-6 FPGA; this crate provides the software equivalent: a
//! deterministic, cycle-stepped simulation clock plus the bookkeeping
//! (statistics, event logs, reproducible randomness) the higher layers use
//! to measure latency, throughput and attack-detection behaviour.
//!
//! Design rules enforced throughout the workspace:
//!
//! * **Determinism.** Given the same seed, every simulation produces the
//!   same cycle-exact trace. All randomness flows through [`SimRng`].
//! * **No hidden time.** Components only see time as a [`Cycle`] passed to
//!   them; wall-clock time never leaks into simulated behaviour.
//! * **Cheap accounting.** [`Counter`]s and [`Histogram`]s are plain
//!   integers/vectors — no locking on the hot path, per the HPC guides.

pub mod clock;
pub mod cycle;
pub mod json;
pub mod log;
pub mod metrics;
pub mod rng;
pub mod stats;
pub mod trace;
pub mod wheel;

pub use clock::Clock;
pub use cycle::Cycle;
pub use json::{Json, JsonError};
pub use log::EventLog;
pub use metrics::MetricsRegistry;
pub use rng::SimRng;
pub use stats::{Counter, Histogram, Stats};
pub use trace::{TraceBuffer, TraceEvent, Tracer};
pub use wheel::{EventKey, SimCore, TimingWheel, Wake};
