//! Lightweight statistics: counters, latency histograms and a registry.
//!
//! Every component in the simulator accounts for its behaviour through these
//! types. They are deliberately lock-free plain data — the simulator is
//! single-threaded per `Soc` instance (parallelism happens *across*
//! instances in parameter sweeps), so there is no reason to pay for atomics
//! on the per-cycle hot path.

use std::collections::BTreeMap;
use std::fmt;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A fresh counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }
}

/// A histogram of `u64` samples (typically latencies in cycles).
///
/// Keeps exact min/max/sum/count plus power-of-two buckets, which is enough
/// resolution for the latency distributions the benches report while staying
/// allocation-free after construction.
#[derive(Debug, Clone)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    /// `buckets[i]` counts samples in `[2^i, 2^(i+1))`, with bucket 0 also
    /// holding the value 0.
    buckets: [u64; 64],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 64],
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let idx = if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
    }

    /// Number of recorded samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Approximate quantile (`q` in `[0,1]`) from the bucket boundaries.
    ///
    /// Returns the lower bound of the bucket containing the requested rank —
    /// coarse, but monotone and cheap; the benches that need exact values
    /// keep their own sample vectors.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Some(if i == 0 { 0 } else { 1u64 << i });
            }
        }
        Some(self.max)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean() {
            Some(mean) => write!(
                f,
                "n={} min={} mean={:.2} max={}",
                self.count, self.min, mean, self.max
            ),
            None => write!(f, "n=0"),
        }
    }
}

/// A named registry of counters and histograms.
///
/// Components register their metrics under stable string keys so that the
/// bench harness can collect them without knowing the component types.
#[derive(Debug, Default, Clone)]
pub struct Stats {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
}

impl Stats {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment the counter named `key` (creating it on first use).
    pub fn incr(&mut self, key: &str) {
        self.add(key, 1);
    }

    /// Add `n` to the counter named `key` (creating it on first use).
    pub fn add(&mut self, key: &str, n: u64) {
        if let Some(c) = self.counters.get_mut(key) {
            c.add(n);
        } else {
            let mut c = Counter::new();
            c.add(n);
            self.counters.insert(key.to_owned(), c);
        }
    }

    /// Record a histogram sample under `key` (creating it on first use).
    pub fn record(&mut self, key: &str, v: u64) {
        if let Some(h) = self.histograms.get_mut(key) {
            h.record(v);
        } else {
            let mut h = Histogram::new();
            h.record(v);
            self.histograms.insert(key.to_owned(), h);
        }
    }

    /// Read a counter (0 if never touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).map_or(0, |c| c.get())
    }

    /// Read a histogram, if any samples were recorded under `key`.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Iterate over all counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, c)| (k.as_str(), c.get()))
    }

    /// Iterate over all histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// Fold another registry into this one (used when aggregating sweeps).
    pub fn merge(&mut self, other: &Stats) {
        for (k, c) in &other.counters {
            self.add(k, c.get());
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_summary_stats() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 10] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 20);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(10));
        assert!((h.mean().unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_none_everywhere() {
        let h = Histogram::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn histogram_records_zero() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.quantile(0.5), Some(0));
    }

    #[test]
    fn quantile_is_monotone() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let q10 = h.quantile(0.1).unwrap();
        let q50 = h.quantile(0.5).unwrap();
        let q99 = h.quantile(0.99).unwrap();
        assert!(q10 <= q50 && q50 <= q99);
    }

    #[test]
    fn histogram_merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(100));
    }

    #[test]
    fn stats_registry_roundtrip() {
        let mut s = Stats::new();
        s.incr("bus.grants");
        s.add("bus.grants", 9);
        s.record("bus.latency", 12);
        s.record("bus.latency", 14);
        assert_eq!(s.counter("bus.grants"), 10);
        assert_eq!(s.counter("missing"), 0);
        let h = s.histogram("bus.latency").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(s.counters().count(), 1);
        assert_eq!(s.histograms().count(), 1);
    }

    #[test]
    fn stats_merge_sums_counters_and_histograms() {
        let mut a = Stats::new();
        let mut b = Stats::new();
        a.add("x", 3);
        b.add("x", 4);
        b.add("y", 1);
        a.record("h", 5);
        b.record("h", 7);
        a.merge(&b);
        assert_eq!(a.counter("x"), 7);
        assert_eq!(a.counter("y"), 1);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn display_formats() {
        let mut h = Histogram::new();
        assert_eq!(h.to_string(), "n=0");
        h.record(4);
        assert!(h.to_string().contains("n=1"));
    }
}
