//! The observability spine: cycle-stamped structured trace events.
//!
//! The paper's first required security feature is *fast reaction* (§III-C);
//! measuring reaction time means following one transaction from the cycle a
//! master issues it, through the firewall verdict and bus/NoC transport, to
//! the LCF cipher/hash work and final completion. Every layer records
//! [`TraceEvent`]s into one shared, bounded [`TraceBuffer`] via a cloneable
//! [`Tracer`] handle; correlation happens through the ids the layers already
//! use (bus `TxnId`, NoC `PacketId`, firewall ids), carried here as plain
//! integers so this module depends on nothing above `secbus-sim`.
//!
//! Determinism rules:
//!
//! * events are pushed in simulation order (the SoC is single-threaded), so
//!   the buffer is cycle-ordered by construction;
//! * the buffer is bounded ([`EventLog`] ring): overflow evicts the oldest
//!   event and counts it in `dropped` — nothing is silently lost;
//! * tracing is opt-in. A component without a tracer pays one `Option`
//!   check; with one, the cost is an enum copy into a ring buffer.

use std::cell::RefCell;
use std::rc::Rc;

use crate::cycle::Cycle;
use crate::json::Json;
use crate::log::EventLog;

/// One cycle-stamped event on the observability spine.
///
/// Fields are plain integers and `'static` mnemonics so every crate in the
/// workspace can record events without type cycles: `txn` is the bus
/// transaction id, `packet` the NoC packet id, `firewall` the monitor's
/// firewall id, `master` the bus master index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A master port issued a transaction toward the bus.
    TxnIssued {
        /// Bus transaction id.
        txn: u64,
        /// Issuing bus master index.
        master: u8,
        /// Target address.
        addr: u32,
        /// Whether the operation is a write.
        write: bool,
    },
    /// A Local Firewall reached a verdict on a transaction.
    FwVerdict {
        /// Bus transaction id.
        txn: u64,
        /// Firewall id (monitor numbering).
        firewall: u8,
        /// `true` if the transaction passed the check.
        passed: bool,
        /// Cycles charged for the check.
        latency: u64,
    },
    /// The shared bus granted a transaction (its one "hop").
    BusHop {
        /// Bus transaction id.
        txn: u64,
        /// Granted master index.
        master: u8,
        /// Cycles the request waited for the grant.
        wait: u64,
    },
    /// A NoC packet advanced one hop toward its destination.
    NocHop {
        /// NoC packet id.
        packet: u64,
        /// Node the hop departed from.
        node: u16,
        /// Cycles the hop cost (router + link serialization).
        latency: u64,
    },
    /// A retransmission: NoC ack-timeout/CRC nack or SoC bounded retry.
    Retransmit {
        /// Transaction or packet id, per `layer`.
        id: u64,
        /// Which layer retried (`"noc"` or `"soc"`).
        layer: &'static str,
    },
    /// The Confidentiality Core ciphered a protected DDR access.
    CcCipher {
        /// Bus transaction id.
        txn: u64,
        /// `true` for encrypt (write path), `false` for decrypt.
        encrypt: bool,
        /// Cycles charged for the cipher.
        latency: u64,
    },
    /// The Integrity Core verified (or updated) a hash-tree path.
    IcVerify {
        /// Bus transaction id.
        txn: u64,
        /// Cycles charged for the tree walk.
        cycles: u64,
        /// Whether the node cache shortened the walk.
        cache_hit: bool,
    },
    /// A firewall raised a security alert.
    Alert {
        /// Raising firewall id (monitor numbering).
        firewall: u8,
        /// Violation mnemonic (e.g. `"unauth_write"`).
        violation: &'static str,
    },
    /// The Security Monitor reacted to an alert.
    Reaction {
        /// Offending firewall id.
        firewall: u8,
        /// Reaction mnemonic (`"block"` or `"quarantine"`).
        kind: &'static str,
    },
    /// The LCF journal committed a protected write.
    JournalCommit {
        /// Bus transaction id.
        txn: u64,
    },
    /// A quarantine-recovery episode ran (rebuild/rekey/scrub).
    Recovery {
        /// Quarantined firewall id.
        firewall: u8,
        /// Simulated cycles the recovery charged.
        cycles: u64,
    },
    /// A transaction completed back at its issuing master.
    TxnComplete {
        /// Bus transaction id.
        txn: u64,
        /// Issuing bus master index.
        master: u8,
        /// `true` if the response carried no error.
        ok: bool,
        /// Issue-to-completion latency in cycles.
        latency: u64,
    },
    /// DIFT: a master's accumulated taint tag increased (it consumed data
    /// from a less-trusted source than anything it had touched before).
    TaintSpread {
        /// Bus master index that became (more) tainted.
        master: u8,
        /// Address of the read that raised the tag.
        addr: u32,
        /// New tag mnemonic (`"cipher_only"` or `"unprotected"`).
        tag: &'static str,
    },
    /// DIFT: tainted data reached a protected sink (protected-region
    /// write or configuration store).
    TaintSink {
        /// Bus transaction id (0 for config-path sinks).
        txn: u64,
        /// Writing bus master index.
        master: u8,
        /// Sink address.
        addr: u32,
        /// Whether the write was blocked (protected mode) or let through
        /// for damage accounting (bare mode).
        blocked: bool,
    },
    /// A campaign stage crossed a kill-chain phase boundary
    /// (`"foothold"`, `"pivot"`, `"detection"`, `"reaction"`).
    CampaignPhase {
        /// Campaign correlation id (stable per campaign kind + seed).
        campaign: u8,
        /// Stage index within the campaign plan.
        stage: u8,
        /// Phase mnemonic.
        phase: &'static str,
    },
    /// Graceful degradation: sustained overload pushed a protection
    /// region one step down its declared-safe posture lattice (brownout).
    DegradeEnter {
        /// Index of the degraded protection region.
        region: u8,
        /// Posture mnemonic before the step (e.g. `"verify"`).
        from: &'static str,
        /// Posture mnemonic after the step (e.g. `"cipher_only"`).
        to: &'static str,
    },
    /// Graceful degradation ended: pressure stayed below the low
    /// watermark long enough (hysteresis) and the region re-tightened to
    /// its configured posture.
    DegradeExit {
        /// Index of the re-tightened protection region.
        region: u8,
        /// Cycles the region spent degraded.
        cycles: u64,
    },
    /// A multi-firewall policy epoch entered its prepare phase: tables
    /// staged and validated, no firewall modified yet.
    EpochPrepare {
        /// The epoch number the commit is trying to open.
        epoch: u64,
        /// Firewall tables staged in the batch.
        updates: u8,
    },
    /// The epoch committed: every staged firewall swapped atomically.
    EpochCommit {
        /// The now-current epoch.
        epoch: u64,
        /// Firewalls swapped at the commit point.
        updates: u8,
    },
    /// The epoch was refused or a mid-commit fault forced a rollback; no
    /// firewall is left on the new epoch.
    EpochAbort {
        /// The epoch number that failed to open (the counter did not move).
        epoch: u64,
        /// Why: `"validation"`, `"unknown_firewall"`, `"tainted_initiator"`,
        /// `"commit_fault"` or `"verifier"`.
        reason: &'static str,
    },
}

impl TraceEvent {
    /// Stable event-kind mnemonic (Chrome trace `name`).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::TxnIssued { .. } => "txn_issued",
            TraceEvent::FwVerdict { .. } => "fw_verdict",
            TraceEvent::BusHop { .. } => "bus_hop",
            TraceEvent::NocHop { .. } => "noc_hop",
            TraceEvent::Retransmit { .. } => "retransmit",
            TraceEvent::CcCipher { .. } => "cc_cipher",
            TraceEvent::IcVerify { .. } => "ic_verify",
            TraceEvent::Alert { .. } => "alert",
            TraceEvent::Reaction { .. } => "reaction",
            TraceEvent::JournalCommit { .. } => "journal_commit",
            TraceEvent::Recovery { .. } => "recovery",
            TraceEvent::TxnComplete { .. } => "txn_complete",
            TraceEvent::TaintSpread { .. } => "taint_spread",
            TraceEvent::TaintSink { .. } => "taint_sink",
            TraceEvent::CampaignPhase { .. } => "campaign_phase",
            TraceEvent::DegradeEnter { .. } => "degrade_enter",
            TraceEvent::DegradeExit { .. } => "degrade_exit",
            TraceEvent::EpochPrepare { .. } => "epoch_prepare",
            TraceEvent::EpochCommit { .. } => "epoch_commit",
            TraceEvent::EpochAbort { .. } => "epoch_abort",
        }
    }

    /// Chrome trace `tid` lane: one per component so the timeline groups
    /// events by who recorded them. Masters occupy 0..16, firewalls
    /// 16..48, the bus 48, the LCF 49, the monitor 50, the campaign
    /// runner 51, the reconfig controller 52, NoC nodes 64+.
    fn lane(&self) -> u64 {
        match self {
            TraceEvent::TxnIssued { master, .. }
            | TraceEvent::TxnComplete { master, .. }
            | TraceEvent::TaintSpread { master, .. }
            | TraceEvent::TaintSink { master, .. } => u64::from(*master),
            TraceEvent::FwVerdict { firewall, .. }
            | TraceEvent::Alert { firewall, .. }
            | TraceEvent::Reaction { firewall, .. }
            | TraceEvent::Recovery { firewall, .. } => 16 + u64::from(*firewall),
            TraceEvent::BusHop { .. } | TraceEvent::Retransmit { .. } => 48,
            TraceEvent::CcCipher { .. }
            | TraceEvent::IcVerify { .. }
            | TraceEvent::JournalCommit { .. } => 49,
            // Degradation decisions are monitor-driven: monitor lane.
            TraceEvent::DegradeEnter { .. } | TraceEvent::DegradeExit { .. } => 50,
            TraceEvent::CampaignPhase { .. } => 51,
            TraceEvent::EpochPrepare { .. }
            | TraceEvent::EpochCommit { .. }
            | TraceEvent::EpochAbort { .. } => 52,
            TraceEvent::NocHop { node, .. } => 64 + u64::from(*node),
        }
    }

    /// Duration in cycles for events that model work over time; `None`
    /// renders as a Chrome instant event.
    fn duration(&self) -> Option<u64> {
        match self {
            TraceEvent::FwVerdict { latency, .. }
            | TraceEvent::NocHop { latency, .. }
            | TraceEvent::CcCipher { latency, .. }
            | TraceEvent::TxnComplete { latency, .. } => Some(*latency),
            TraceEvent::IcVerify { cycles, .. }
            | TraceEvent::Recovery { cycles, .. }
            | TraceEvent::DegradeExit { cycles, .. } => Some(*cycles),
            _ => None,
        }
    }

    /// Event payload as Chrome trace `args` (insertion order is the
    /// declaration order of the fields, deterministic by construction).
    fn args(&self) -> Json {
        let mut fields: Vec<(String, Json)> = Vec::new();
        let mut put = |k: &str, v: Json| fields.push((k.to_string(), v));
        match *self {
            TraceEvent::TxnIssued {
                txn,
                master,
                addr,
                write,
            } => {
                put("txn", Json::uint(txn));
                put("master", Json::uint(u64::from(master)));
                put("addr", Json::str(format!("{addr:#010x}")));
                put("write", Json::Bool(write));
            }
            TraceEvent::FwVerdict {
                txn,
                firewall,
                passed,
                latency,
            } => {
                put("txn", Json::uint(txn));
                put("firewall", Json::uint(u64::from(firewall)));
                put("passed", Json::Bool(passed));
                put("latency", Json::uint(latency));
            }
            TraceEvent::BusHop { txn, master, wait } => {
                put("txn", Json::uint(txn));
                put("master", Json::uint(u64::from(master)));
                put("wait", Json::uint(wait));
            }
            TraceEvent::NocHop {
                packet,
                node,
                latency,
            } => {
                put("packet", Json::uint(packet));
                put("node", Json::uint(u64::from(node)));
                put("latency", Json::uint(latency));
            }
            TraceEvent::Retransmit { id, layer } => {
                put("id", Json::uint(id));
                put("layer", Json::str(layer));
            }
            TraceEvent::CcCipher {
                txn,
                encrypt,
                latency,
            } => {
                put("txn", Json::uint(txn));
                put("encrypt", Json::Bool(encrypt));
                put("latency", Json::uint(latency));
            }
            TraceEvent::IcVerify {
                txn,
                cycles,
                cache_hit,
            } => {
                put("txn", Json::uint(txn));
                put("cycles", Json::uint(cycles));
                put("cache_hit", Json::Bool(cache_hit));
            }
            TraceEvent::Alert {
                firewall,
                violation,
            } => {
                put("firewall", Json::uint(u64::from(firewall)));
                put("violation", Json::str(violation));
            }
            TraceEvent::Reaction { firewall, kind } => {
                put("firewall", Json::uint(u64::from(firewall)));
                put("kind", Json::str(kind));
            }
            TraceEvent::JournalCommit { txn } => {
                put("txn", Json::uint(txn));
            }
            TraceEvent::Recovery { firewall, cycles } => {
                put("firewall", Json::uint(u64::from(firewall)));
                put("cycles", Json::uint(cycles));
            }
            TraceEvent::TxnComplete {
                txn,
                master,
                ok,
                latency,
            } => {
                put("txn", Json::uint(txn));
                put("master", Json::uint(u64::from(master)));
                put("ok", Json::Bool(ok));
                put("latency", Json::uint(latency));
            }
            TraceEvent::TaintSpread { master, addr, tag } => {
                put("master", Json::uint(u64::from(master)));
                put("addr", Json::str(format!("{addr:#010x}")));
                put("tag", Json::str(tag));
            }
            TraceEvent::TaintSink {
                txn,
                master,
                addr,
                blocked,
            } => {
                put("txn", Json::uint(txn));
                put("master", Json::uint(u64::from(master)));
                put("addr", Json::str(format!("{addr:#010x}")));
                put("blocked", Json::Bool(blocked));
            }
            TraceEvent::CampaignPhase {
                campaign,
                stage,
                phase,
            } => {
                put("campaign", Json::uint(u64::from(campaign)));
                put("stage", Json::uint(u64::from(stage)));
                put("phase", Json::str(phase));
            }
            TraceEvent::DegradeEnter { region, from, to } => {
                put("region", Json::uint(u64::from(region)));
                put("from", Json::str(from));
                put("to", Json::str(to));
            }
            TraceEvent::DegradeExit { region, cycles } => {
                put("region", Json::uint(u64::from(region)));
                put("cycles", Json::uint(cycles));
            }
            TraceEvent::EpochPrepare { epoch, updates }
            | TraceEvent::EpochCommit { epoch, updates } => {
                put("epoch", Json::uint(epoch));
                put("updates", Json::uint(u64::from(updates)));
            }
            TraceEvent::EpochAbort { epoch, reason } => {
                put("epoch", Json::uint(epoch));
                put("reason", Json::str(reason));
            }
        }
        Json::Obj(fields)
    }
}

/// A bounded, cycle-ordered ring of trace events.
///
/// A thin wrapper over [`EventLog`] that adds the Chrome-trace exporter;
/// eviction under bound pressure is counted, never silent.
#[derive(Debug)]
pub struct TraceBuffer {
    log: EventLog<TraceEvent>,
}

impl TraceBuffer {
    /// A buffer retaining at most `capacity` events (capacity must be > 0).
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            log: EventLog::new(capacity),
        }
    }

    /// Record an event at `at`. Callers push in simulation order, so the
    /// retained window stays cycle-sorted.
    pub fn push(&mut self, at: Cycle, event: TraceEvent) {
        self.log.push(at, event);
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &(Cycle, TraceEvent)> {
        self.log.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// Total events ever recorded (retained + dropped).
    pub fn total(&self) -> u64 {
        self.log.total()
    }

    /// Events evicted by the bound.
    pub fn dropped(&self) -> u64 {
        self.log.dropped()
    }

    /// Export the retained window in Chrome `trace_event` JSON format
    /// (load with `chrome://tracing` or Perfetto). `ts` is the simulated
    /// cycle; events with a known duration render as complete (`"X"`)
    /// slices, the rest as thread-scoped instants (`"i"`).
    pub fn chrome_trace(&self) -> Json {
        let events = self
            .log
            .iter()
            .map(|(at, ev)| {
                let mut fields = vec![
                    ("name".to_string(), Json::str(ev.kind())),
                    ("ts".to_string(), Json::uint(at.get())),
                    ("pid".to_string(), Json::uint(0)),
                    ("tid".to_string(), Json::uint(ev.lane())),
                ];
                match ev.duration() {
                    Some(dur) => {
                        fields.push(("ph".to_string(), Json::str("X")));
                        fields.push(("dur".to_string(), Json::uint(dur.max(1))));
                    }
                    None => {
                        fields.push(("ph".to_string(), Json::str("i")));
                        fields.push(("s".to_string(), Json::str("t")));
                    }
                }
                fields.push(("args".to_string(), ev.args()));
                Json::Obj(fields)
            })
            .collect();
        Json::Obj(vec![
            ("traceEvents".to_string(), Json::Arr(events)),
            ("displayTimeUnit".to_string(), Json::str("ns")),
            (
                "otherData".to_string(),
                Json::Obj(vec![
                    ("clock".to_string(), Json::str("simulated cycles")),
                    ("total".to_string(), Json::uint(self.total())),
                    ("dropped".to_string(), Json::uint(self.dropped())),
                ]),
            ),
        ])
    }
}

/// A cloneable handle onto one shared [`TraceBuffer`].
///
/// Every component in a `Soc` holds a clone; they all feed the same ring.
/// `Rc<RefCell<…>>` is deliberate: a `Soc` never crosses threads (sweeps
/// parallelize across instances), so the handle needs no atomics and makes
/// the single-threadedness explicit in the type system.
#[derive(Debug, Clone)]
pub struct Tracer {
    buf: Rc<RefCell<TraceBuffer>>,
}

impl Tracer {
    /// A tracer over a fresh buffer of `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            buf: Rc::new(RefCell::new(TraceBuffer::new(capacity))),
        }
    }

    /// Record one event at `at`.
    #[inline]
    pub fn record(&self, at: Cycle, event: TraceEvent) {
        self.buf.borrow_mut().push(at, event);
    }

    /// Copy out the retained window, oldest first.
    pub fn snapshot(&self) -> Vec<(Cycle, TraceEvent)> {
        self.buf.borrow().iter().copied().collect()
    }

    /// Total events ever recorded through this buffer.
    pub fn total(&self) -> u64 {
        self.buf.borrow().total()
    }

    /// Events evicted by the bound.
    pub fn dropped(&self) -> u64 {
        self.buf.borrow().dropped()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.borrow().len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.borrow().is_empty()
    }

    /// Chrome `trace_event` export of the retained window.
    pub fn chrome_trace(&self) -> Json {
        self.buf.borrow().chrome_trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(txn: u64) -> TraceEvent {
        TraceEvent::TxnIssued {
            txn,
            master: 1,
            addr: 0x2000_0000,
            write: false,
        }
    }

    #[test]
    fn buffer_bounds_and_counts_drops() {
        let mut buf = TraceBuffer::new(4);
        for i in 0..10 {
            buf.push(Cycle(i), ev(i));
        }
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.total(), 10);
        assert_eq!(buf.dropped(), 6);
        let first = buf.iter().next().unwrap();
        assert_eq!(first.0, Cycle(6), "oldest retained is the 7th push");
    }

    #[test]
    fn tracer_clones_share_one_buffer() {
        let t = Tracer::new(16);
        let t2 = t.clone();
        t.record(Cycle(1), ev(1));
        t2.record(Cycle(2), ev(2));
        assert_eq!(t.len(), 2);
        assert_eq!(t2.total(), 2);
        let snap = t.snapshot();
        assert_eq!(snap[0].0, Cycle(1));
        assert_eq!(snap[1].0, Cycle(2));
    }

    #[test]
    fn chrome_trace_shape() {
        let t = Tracer::new(16);
        t.record(Cycle(3), ev(7));
        t.record(
            Cycle(4),
            TraceEvent::FwVerdict {
                txn: 7,
                firewall: 2,
                passed: false,
                latency: 12,
            },
        );
        let doc = t.chrome_trace();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("txn_issued"));
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(events[1].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(events[1].get("dur").unwrap().as_u64(), Some(12));
        assert_eq!(events[1].get("ts").unwrap().as_u64(), Some(4));
        // The whole document round-trips through the in-tree parser.
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn every_event_kind_is_distinct() {
        let kinds = [
            ev(0).kind(),
            TraceEvent::FwVerdict {
                txn: 0,
                firewall: 0,
                passed: true,
                latency: 0,
            }
            .kind(),
            TraceEvent::BusHop {
                txn: 0,
                master: 0,
                wait: 0,
            }
            .kind(),
            TraceEvent::NocHop {
                packet: 0,
                node: 0,
                latency: 0,
            }
            .kind(),
            TraceEvent::Retransmit {
                id: 0,
                layer: "soc",
            }
            .kind(),
            TraceEvent::CcCipher {
                txn: 0,
                encrypt: true,
                latency: 0,
            }
            .kind(),
            TraceEvent::IcVerify {
                txn: 0,
                cycles: 0,
                cache_hit: false,
            }
            .kind(),
            TraceEvent::Alert {
                firewall: 0,
                violation: "no_policy",
            }
            .kind(),
            TraceEvent::Reaction {
                firewall: 0,
                kind: "block",
            }
            .kind(),
            TraceEvent::JournalCommit { txn: 0 }.kind(),
            TraceEvent::Recovery {
                firewall: 0,
                cycles: 0,
            }
            .kind(),
            TraceEvent::TxnComplete {
                txn: 0,
                master: 0,
                ok: true,
                latency: 0,
            }
            .kind(),
            TraceEvent::TaintSpread {
                master: 0,
                addr: 0,
                tag: "unprotected",
            }
            .kind(),
            TraceEvent::TaintSink {
                txn: 0,
                master: 0,
                addr: 0,
                blocked: true,
            }
            .kind(),
            TraceEvent::CampaignPhase {
                campaign: 0,
                stage: 0,
                phase: "foothold",
            }
            .kind(),
            TraceEvent::DegradeEnter {
                region: 0,
                from: "verify",
                to: "cipher_only",
            }
            .kind(),
            TraceEvent::DegradeExit {
                region: 0,
                cycles: 0,
            }
            .kind(),
            TraceEvent::EpochPrepare {
                epoch: 1,
                updates: 0,
            }
            .kind(),
            TraceEvent::EpochCommit {
                epoch: 1,
                updates: 0,
            }
            .kind(),
            TraceEvent::EpochAbort {
                epoch: 1,
                reason: "commit_fault",
            }
            .kind(),
        ];
        let unique: std::collections::BTreeSet<_> = kinds.iter().collect();
        assert_eq!(unique.len(), kinds.len());
    }
}
