//! The system clock: converts between cycles, wall time and throughput.
//!
//! The paper's case study runs MicroBlaze soft cores on a Virtex-6; the
//! firewall evaluation (Table II) reports module latencies in clock cycles
//! and throughputs in Mb/s, so the conversion between the two lives here and
//! nowhere else. The case-study clock used throughout this reproduction is
//! [`Clock::ML605_DEFAULT`] (100 MHz, a standard MicroBlaze system clock on
//! that board).

use crate::cycle::Cycle;

/// A fixed-frequency clock domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Clock {
    freq_hz: u64,
}

impl Clock {
    /// Default case-study clock: 100 MHz system clock on the ML605 board.
    pub const ML605_DEFAULT: Clock = Clock {
        freq_hz: 100_000_000,
    };

    /// Create a clock with the given frequency.
    ///
    /// # Panics
    /// Panics if `freq_hz` is zero.
    pub fn new(freq_hz: u64) -> Self {
        assert!(freq_hz > 0, "clock frequency must be non-zero");
        Clock { freq_hz }
    }

    /// Frequency in Hz.
    #[inline]
    pub const fn freq_hz(self) -> u64 {
        self.freq_hz
    }

    /// Frequency in MHz (possibly fractional).
    #[inline]
    pub fn freq_mhz(self) -> f64 {
        self.freq_hz as f64 / 1e6
    }

    /// Duration of `cycles` cycles, in seconds.
    #[inline]
    pub fn seconds(self, cycles: u64) -> f64 {
        cycles as f64 / self.freq_hz as f64
    }

    /// Duration of `cycles` cycles, in microseconds.
    #[inline]
    pub fn micros(self, cycles: u64) -> f64 {
        self.seconds(cycles) * 1e6
    }

    /// Throughput in Mb/s (decimal megabits, as in the paper) for `bits`
    /// transferred over `cycles` cycles.
    ///
    /// Returns 0.0 for a zero-cycle span: nothing can stream in zero time.
    #[inline]
    pub fn mbps(self, bits: u64, cycles: u64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        (bits as f64 / self.seconds(cycles)) / 1e6
    }

    /// Throughput in Mb/s for `bytes` transferred over `cycles` cycles.
    #[inline]
    pub fn mbps_bytes(self, bytes: u64, cycles: u64) -> f64 {
        self.mbps(bytes * 8, cycles)
    }

    /// Cycles elapsed between two timestamps, as wall time in seconds.
    #[inline]
    pub fn elapsed_seconds(self, from: Cycle, to: Cycle) -> f64 {
        self.seconds(to.saturating_since(from))
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::ML605_DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_100mhz() {
        let c = Clock::default();
        assert_eq!(c.freq_hz(), 100_000_000);
        assert!((c.freq_mhz() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn seconds_per_cycle() {
        let c = Clock::new(100_000_000);
        assert!((c.seconds(100_000_000) - 1.0).abs() < 1e-12);
        assert!((c.micros(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_matches_hand_calc() {
        let c = Clock::new(100_000_000);
        // 4.5 bits per cycle at 100 MHz = 450 Mb/s — the paper's CC rate.
        assert!((c.mbps(4_500, 1_000) - 450.0).abs() < 1e-9);
        // 1.31 bits per cycle at 100 MHz = 131 Mb/s — the paper's IC rate.
        assert!((c.mbps(1_310, 1_000) - 131.0).abs() < 1e-9);
    }

    #[test]
    fn byte_throughput() {
        let c = Clock::new(100_000_000);
        assert!((c.mbps_bytes(1, 8) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn zero_cycles_gives_zero_throughput() {
        assert_eq!(Clock::default().mbps(1234, 0), 0.0);
    }

    #[test]
    fn elapsed_between_timestamps() {
        let c = Clock::new(1_000);
        assert!((c.elapsed_seconds(Cycle(0), Cycle(500)) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_frequency_rejected() {
        let _ = Clock::new(0);
    }
}
