//! Simulated time measured in clock cycles.
//!
//! [`Cycle`] is a newtype over `u64` so that cycle counts cannot be mixed up
//! with byte counts, addresses or other integers floating around the
//! simulator. Arithmetic is saturating-free and will panic on overflow in
//! debug builds, exactly like plain integers — a simulation that runs for
//! 2^64 cycles has other problems.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in simulated time (or a span, when used relatively), in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// Time zero — the first cycle of a simulation.
    pub const ZERO: Cycle = Cycle(0);

    /// The raw cycle count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Span from `earlier` to `self`, or `None` when `earlier` is in the
    /// future. Timestamps legitimately invert across recovery and resume
    /// boundaries (a checkpointed cycle replayed against a rebooted
    /// clock), so trace correlation gets a typed answer instead of an
    /// abort; use [`Cycle::saturating_since`] when 0 is an acceptable
    /// span for a reversed pair.
    #[inline]
    pub fn since(self, earlier: Cycle) -> Option<u64> {
        self.0.checked_sub(earlier.0)
    }

    /// Saturating span from `earlier` to `self` (0 if `earlier` is later).
    #[inline]
    pub fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// The cycle immediately after this one.
    #[inline]
    pub fn next(self) -> Cycle {
        Cycle(self.0 + 1)
    }
}

impl From<u64> for Cycle {
    #[inline]
    fn from(v: u64) -> Self {
        Cycle(v)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn sub(self, rhs: u64) -> Cycle {
        Cycle(self.0 - rhs)
    }
}

impl SubAssign<u64> for Cycle {
    #[inline]
    fn sub_assign(&mut self, rhs: u64) {
        self.0 -= rhs;
    }
}

impl Sum<Cycle> for u64 {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> u64 {
        iter.map(|c| c.0).sum()
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(Cycle::default(), Cycle::ZERO);
        assert_eq!(Cycle::ZERO.get(), 0);
    }

    #[test]
    fn add_and_since_roundtrip() {
        let start = Cycle(100);
        let end = start + 42;
        assert_eq!(end.since(start), Some(42));
        assert_eq!(end.get(), 142);
    }

    #[test]
    fn ordering_matches_raw() {
        assert!(Cycle(3) < Cycle(4));
        assert!(Cycle(4) <= Cycle(4));
        assert_eq!(Cycle(7).next(), Cycle(8));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(Cycle(5).saturating_since(Cycle(9)), 0);
        assert_eq!(Cycle(9).saturating_since(Cycle(5)), 4);
    }

    #[test]
    fn since_is_none_on_reversed_order() {
        // A reversed pair (resume/recovery clock skew) is a typed
        // non-answer, never an abort.
        assert_eq!(Cycle(1).since(Cycle(2)), None);
        assert_eq!(Cycle(2).since(Cycle(2)), Some(0));
    }

    #[test]
    fn add_assign_and_sub() {
        let mut c = Cycle(10);
        c += 5;
        assert_eq!(c, Cycle(15));
        c -= 3;
        assert_eq!(c, Cycle(12));
        assert_eq!(c - 2, Cycle(10));
    }

    #[test]
    fn sum_of_cycles() {
        let total: u64 = [Cycle(1), Cycle(2), Cycle(3)].into_iter().sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Cycle(99).to_string(), "cycle 99");
    }
}
