//! Discrete-event scheduling substrate: the timing wheel and the
//! `Wake` seam.
//!
//! The cycle-stepped core polls every component every cycle, so host
//! cost is O(cycles × components) even when the fabric is idle. The
//! event-driven core inverts the relationship: components *declare*
//! their next interesting cycle through [`Wake`], the declarations are
//! merged through a [`TimingWheel`] whose pop order is the canonical
//! `(cycle, component-id, seq)` order, and the driver fast-forwards
//! simulated `now` to the earliest scheduled event whenever the fabric
//! is provably idle.
//!
//! Two invariants make the skip *equivalence-preserving* rather than
//! merely fast:
//!
//! 1. **Skipped cycles are pure.** A cycle may only be skipped when
//!    every component's tick would be a state no-op on it (modulo
//!    bulk-accounted counters such as `soc.cycles`, which the driver
//!    adds in one `Stats::add` — byte-identical JSON to per-cycle
//!    increments).
//! 2. **Canonical same-cycle order.** When several components schedule
//!    the same cycle, the wheel fires them in component-id order —
//!    exactly the order `Soc::tick` polls them — so the event core
//!    cannot reorder same-cycle effects relative to the stepped core.

use crate::cycle::Cycle;
use std::collections::BinaryHeap;

/// What a component will do on future ticks, as declared by the
/// component itself. The driver uses this to decide whether ticking
/// the component can be skipped.
///
/// The contract is about *purity of `tick`*, not about liveness:
///
/// * [`Wake::Now`] — the component may mutate state on every tick;
///   never skip it. This is the conservative default for components
///   that cannot prove anything stronger.
/// * [`Wake::At`] — every tick strictly before the stated cycle is a
///   state no-op *regardless of inputs*; the component must be ticked
///   again at that cycle.
/// * [`Wake::Waiting`] — the component only reacts to externally
///   delivered input (e.g. a bus response): its tick is a state no-op
///   exactly while its input queue is empty. The driver pairs this
///   with its own knowledge of the input queue.
/// * [`Wake::Never`] — the component is terminally quiescent (halted,
///   drained); its tick is a state no-op forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// May act on any cycle; must be ticked every cycle.
    Now,
    /// Pure until the given cycle; must be ticked at it.
    At(Cycle),
    /// Pure while its input queue is empty; driver checks the queue.
    Waiting,
    /// Pure forever.
    Never,
}

/// Which simulator core drives the run loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimCore {
    /// Legacy loop: tick every component every cycle.
    Stepped,
    /// Discrete-event loop: skip provably idle cycles.
    Event,
}

impl SimCore {
    /// Resolve the core from the `SECBUS_SIM_CORE` environment
    /// variable: `stepped` forces the legacy loop, anything else
    /// (including unset) selects the event-driven core. CI runs every
    /// soak under both values and `cmp`s the JSON as the equivalence
    /// proof (EXPERIMENTS.md S-21).
    pub fn from_env() -> SimCore {
        match std::env::var("SECBUS_SIM_CORE") {
            Ok(v) if v.eq_ignore_ascii_case("stepped") => SimCore::Stepped,
            _ => SimCore::Event,
        }
    }
}

/// A scheduled wake: fires at `at`, tie-broken by the scheduling
/// component's stable id, then by insertion sequence. Component ids
/// are assigned by the driver in its tick order, which is what makes
/// wheel pop order match stepped-core effect order on shared cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey {
    /// Cycle the event fires at.
    pub at: Cycle,
    /// Stable component id in driver tick order.
    pub component: u32,
    /// Monotonic insertion sequence (last tie-break; makes ordering
    /// total even when one component schedules twice for one cycle).
    pub seq: u64,
}

const SLOTS: usize = 64;
const LEVELS: usize = 4;

/// Span (in cycles) covered by one slot at `level`.
const fn slot_span(level: usize) -> u64 {
    // 64^level
    1u64 << (6 * level as u32)
}

/// Total horizon covered by levels `0..=level`.
const fn level_horizon(level: usize) -> u64 {
    // 64^(level+1)
    1u64 << (6 * (level as u32 + 1))
}

/// Hierarchical timing wheel keyed on [`Cycle`].
///
/// Four 64-slot levels cover a ~16.7M-cycle horizon at O(1) schedule
/// cost; events beyond the horizon overflow into a binary heap and are
/// cascaded in as the wheel turns. `pop_next` yields events in
/// canonical [`EventKey`] order: ascending cycle, ties broken by
/// component id then sequence — deterministic regardless of insertion
/// order (the property tests below drive this with shuffled inserts).
#[derive(Debug)]
pub struct TimingWheel {
    now: u64,
    seq: u64,
    len: usize,
    levels: Vec<Vec<Vec<EventKey>>>,
    overflow: BinaryHeap<std::cmp::Reverse<EventKey>>,
    /// Events due at the cycle currently being drained, sorted
    /// descending so `pop` yields canonical ascending order.
    batch: Vec<EventKey>,
}

impl TimingWheel {
    /// An empty wheel whose time origin is `now`. Events must be
    /// scheduled at or after the origin; earlier requests are clamped
    /// to it (the key keeps the requested cycle).
    pub fn new(now: Cycle) -> Self {
        TimingWheel {
            now: now.get(),
            seq: 0,
            len: 0,
            levels: vec![vec![Vec::new(); SLOTS]; LEVELS],
            overflow: BinaryHeap::new(),
            batch: Vec::new(),
        }
    }

    /// Current wheel time: no unpopped event fires before it.
    pub fn now(&self) -> Cycle {
        Cycle(self.now)
    }

    /// Number of scheduled, not-yet-popped events.
    pub fn len(&self) -> usize {
        self.len + self.batch.len()
    }

    /// Whether no events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule a wake for `component` at cycle `at` and return its
    /// key. `component` must be the driver-assigned tick-order id —
    /// same-cycle pop order is defined by it.
    pub fn schedule(&mut self, at: Cycle, component: u32) -> EventKey {
        let key = EventKey {
            at,
            component,
            seq: self.seq,
        };
        self.seq += 1;
        self.insert(key);
        key
    }

    fn insert(&mut self, key: EventKey) {
        let at = key.at.get().max(self.now);
        let delta = at - self.now;
        let mut placed = false;
        for level in 0..LEVELS {
            if delta < level_horizon(level) {
                let slot = (at / slot_span(level)) as usize % SLOTS;
                self.levels[level][slot].push(key);
                placed = true;
                break;
            }
        }
        if !placed {
            self.overflow.push(std::cmp::Reverse(key));
        }
        self.len += 1;
    }

    /// Pop the earliest event in canonical order, advancing wheel time
    /// to its cycle. Returns `None` when the wheel is empty.
    pub fn pop_next(&mut self) -> Option<EventKey> {
        if let Some(key) = self.batch.pop() {
            return Some(key);
        }
        if self.len == 0 {
            return None;
        }
        loop {
            // Drain the level-0 slot for the current cycle. A slot at
            // level 0 spans exactly one cycle, so everything in it is
            // due now.
            let slot = (self.now as usize) % SLOTS;
            if !self.levels[0][slot].is_empty() {
                let mut due = std::mem::take(&mut self.levels[0][slot]);
                self.len -= due.len();
                // Descending sort: Vec::pop then yields canonical
                // ascending (cycle, component, seq) order.
                due.sort_unstable_by(|a, b| b.cmp(a));
                self.batch = due;
                return self.batch.pop();
            }
            self.now += 1;
            // Cascade every level whose slot boundary we just crossed.
            for level in 1..LEVELS {
                if self.now.is_multiple_of(slot_span(level)) {
                    let slot = (self.now / slot_span(level)) as usize % SLOTS;
                    let carried = std::mem::take(&mut self.levels[level][slot]);
                    self.len -= carried.len();
                    for key in carried {
                        self.insert(key);
                    }
                } else {
                    break;
                }
            }
            // Pull overflow events that fell inside the horizon.
            let horizon = self.now + level_horizon(LEVELS - 1);
            while let Some(std::cmp::Reverse(key)) = self.overflow.peek().copied() {
                if key.at.get() >= horizon {
                    break;
                }
                self.overflow.pop();
                self.len -= 1;
                self.insert(key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn pop_order_is_canonical_for_same_cycle_events() {
        // Same-cycle events fire in (component, seq) order no matter
        // the insertion order.
        let mut wheel = TimingWheel::new(Cycle(10));
        wheel.schedule(Cycle(20), 3);
        wheel.schedule(Cycle(20), 1);
        wheel.schedule(Cycle(20), 2);
        wheel.schedule(Cycle(20), 1);
        let order: Vec<(u32, u64)> = std::iter::from_fn(|| wheel.pop_next())
            .map(|k| (k.component, k.seq))
            .collect();
        assert_eq!(order, vec![(1, 1), (1, 3), (2, 2), (3, 0)]);
    }

    #[test]
    fn pop_order_is_sorted_across_random_insertions() {
        // Property: for arbitrary (cycle, component) insertions across
        // all wheel levels and the overflow heap, pop order is exactly
        // the canonical sorted order.
        for seed in 0..8u64 {
            let mut rng = SimRng::new(0x57_4845_454C ^ (seed << 8));
            let mut wheel = TimingWheel::new(Cycle(0));
            let mut keys = Vec::new();
            for _ in 0..500 {
                // Spread cycles across level 0 (<64), mid levels and
                // the overflow horizon (>16.7M).
                let at = match rng.below(4) {
                    0 => rng.below(64),
                    1 => rng.below(4_096),
                    2 => rng.below(1 << 24),
                    _ => (1 << 24) + rng.below(1 << 30),
                };
                let component = rng.below(8) as u32;
                keys.push(wheel.schedule(Cycle(at), component));
            }
            keys.sort_unstable();
            let popped: Vec<EventKey> = std::iter::from_fn(|| wheel.pop_next()).collect();
            assert_eq!(popped, keys, "seed {seed}");
        }
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        // Scheduling between pops (at or after wheel time) never
        // yields an out-of-order pop.
        let mut rng = SimRng::new(0xCA5CADE);
        let mut wheel = TimingWheel::new(Cycle(0));
        for _ in 0..64 {
            wheel.schedule(Cycle(rng.below(100_000)), rng.below(4) as u32);
        }
        let mut last: Option<EventKey> = None;
        while let Some(key) = wheel.pop_next() {
            if let Some(prev) = last {
                assert!(prev < key, "{prev:?} !< {key:?}");
            }
            // Occasionally schedule new work in the future.
            if key.seq % 3 == 0 {
                wheel.schedule(key.at + 1 + rng.below(1_000), rng.below(4) as u32);
            }
            last = Some(key);
            if wheel.len() > 4_096 {
                break;
            }
        }
    }

    #[test]
    fn past_schedules_clamp_to_wheel_time() {
        let mut wheel = TimingWheel::new(Cycle(100));
        wheel.schedule(Cycle(5), 0);
        let key = wheel.pop_next().expect("event");
        // The key keeps the requested cycle; it fires at wheel time.
        assert_eq!(key.at, Cycle(5));
        assert_eq!(wheel.now(), Cycle(100));
    }

    #[test]
    fn empty_wheel_pops_none_and_len_tracks() {
        let mut wheel = TimingWheel::new(Cycle::ZERO);
        assert!(wheel.is_empty());
        assert_eq!(wheel.pop_next(), None);
        wheel.schedule(Cycle(3), 0);
        wheel.schedule(Cycle(3), 1);
        assert_eq!(wheel.len(), 2);
        wheel.pop_next();
        assert_eq!(wheel.len(), 1);
        wheel.pop_next();
        assert!(wheel.is_empty());
        assert_eq!(wheel.pop_next(), None);
    }

    #[test]
    fn sim_core_from_env_defaults_to_event() {
        // Do not mutate the environment (tests run in parallel); just
        // check the unset/garbage default path via the parser contract.
        match std::env::var("SECBUS_SIM_CORE") {
            Ok(v) if v.eq_ignore_ascii_case("stepped") => {
                assert_eq!(SimCore::from_env(), SimCore::Stepped)
            }
            _ => assert_eq!(SimCore::from_env(), SimCore::Event),
        }
    }
}
