//! A minimal, dependency-free JSON value, parser and writer.
//!
//! The simulator runs in hermetic environments where pulling a JSON crate
//! is not an option, yet the CLI reads policy files, the audit path emits
//! machine-readable reports, and the chaos harness must write
//! **byte-identical** reports for identical seeds. This module covers that
//! surface: a [`Json`] value whose objects preserve insertion order (so
//! rendering is deterministic), a strict recursive-descent parser, and
//! compact / pretty writers.
//!
//! Numbers are stored as `f64`; every integer the simulator serializes
//! (addresses, cycle counts, rates) fits exactly below 2^53, and the
//! writer prints integral values without a decimal point so integers
//! round-trip textually.

use std::fmt;

/// A parsed or under-construction JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved and significant for output.
    Obj(Vec<(String, Json)>),
}

/// Error from [`Json::parse`]: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for an unsigned integer.
    pub fn uint(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Convenience constructor for a string value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a whole non-negative
    /// number that fits exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Render compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with 2-space indentation, one field/element per line.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(fields) => write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                let (k, v) = &fields[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                v.write(out, indent, depth + 1);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    n: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if n == 0 {
        out.push(close);
        return;
    }
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    use std::fmt::Write as _;
    if n.is_finite() && n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
        write!(out, "{}", n as i64).unwrap();
    } else if n.is_finite() {
        write!(out, "{n}").unwrap();
    } else {
        // JSON has no NaN/Inf; emit null like serde_json's lossy mode.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(format!("unexpected character {:?}", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Input is valid UTF-8 (it came from &str) and the run
                // stops only at ASCII delimiters, so the slice is valid.
                s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(self.err(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(hex)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            offset: start,
            message: format!("invalid number {text:?}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parse_nested_structure() {
        let v = Json::parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert!(arr[2].get("b").unwrap().is_null());
    }

    #[test]
    fn parse_string_escapes() {
        let v = Json::parse(r#""a\n\t\"\\Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\Aé"));
    }

    #[test]
    fn parse_surrogate_pair() {
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("not json").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{}x").is_err());
        assert!(Json::parse("\"open").is_err());
        let err = Json::parse("[1, nope]").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn render_compact_roundtrips() {
        let src = r#"{"spi":1,"region":{"base":0,"len":32},"key":null,"ks":[1,2,3]}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.render(), src);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn render_pretty_shape() {
        let v = Json::Obj(vec![
            ("a".into(), Json::uint(1)),
            ("b".into(), Json::Arr(vec![Json::Bool(true)])),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        let out = v.render_pretty();
        assert_eq!(
            out,
            "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ],\n  \"empty\": []\n}"
        );
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::Num(4294967295.0).render(), "4294967295");
        assert_eq!(Json::Num(0.5).render(), "0.5");
        assert_eq!(Json::Num(-3.0).render(), "-3");
    }

    #[test]
    fn as_u64_bounds() {
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Str("7".into()).as_u64(), None);
    }

    #[test]
    fn object_field_order_is_preserved() {
        let v = Json::Obj(vec![
            ("z".into(), Json::uint(1)),
            ("a".into(), Json::uint(2)),
        ]);
        assert_eq!(v.render(), r#"{"z":1,"a":2}"#);
    }
}
