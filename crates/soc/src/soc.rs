//! The system container and its cycle loop.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use secbus_bus::{
    AddrRange, Arbiter, BusConfig, BusError, BusQuiet, FixedPriority, MasterId, Op, Response,
    SharedBus, SlaveId, Transaction, TxnId, Width,
};
use secbus_core::{
    verify, Alert, ConfidentialityMode, ConfigMemory, CryptoTiming, EpochError, FirewallId,
    IntegrityMode, LocalCipheringFirewall, LocalFirewall, PolicyProgram, PolicyUpdate, Protection,
    RateLimit, Reaction, ReconfigController, RecoveryReport, SbTiming, SecureCheckpoint,
    SecurityMonitor, SecurityPolicy, TaintEngine, TaintTag, Violation, WriteVerdict,
};
use secbus_cpu::{BusMaster, MasterAccess};
use secbus_fault::{FaultKind, FaultPlan};
use secbus_mem::{Bram, ExternalDdr, MemDevice};
use secbus_sim::{
    Clock, Cycle, Json, MetricsRegistry, SimCore, SimRng, Stats, TimingWheel, TraceEvent, Tracer,
    Wake,
};

use crate::degrade::{DegradeConfig, Hysteresis, Transition};

/// A master waiting to be built: device, optional policies, optional
/// traffic budget.
type MasterSpec = (Box<dyn BusMaster>, Option<ConfigMemory>, Option<RateLimit>);

/// Bounded retry-with-exponential-backoff at the master interfaces: a
/// transaction that comes back with a *transient* bus error
/// ([`BusError::Slave`] or [`BusError::Timeout`]) is silently re-issued by
/// the interface instead of surfacing to the IP, up to `max_attempts`
/// times, with the n-th retry becoming bus-eligible only after
/// `base_backoff << n` cycles.
///
/// Permanent outcomes — [`BusError::Discarded`] (a policy denial),
/// [`BusError::Decode`] (no such slave),
/// [`BusError::IntegrityViolation`] and [`BusError::Overload`] (an
/// admission refusal, which the open-loop source must absorb rather than
/// amplify) — are never retried: repeating them cannot succeed and would
/// re-trigger the very alert that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries allowed beyond the original attempt.
    pub max_attempts: u32,
    /// Backoff of the first retry, in cycles; doubles per attempt.
    pub base_backoff: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: 8,
        }
    }
}

/// What quarantine recovery does beyond releasing the block.
#[derive(Debug, Clone, Copy)]
struct AutoRecover {
    rekey: bool,
}

/// Builder for a [`Soc`].
pub struct SocBuilder {
    clock: Clock,
    bus_config: BusConfig,
    arbiter: Box<dyn Arbiter>,
    sb_timing: SbTiming,
    crypto_timing: CryptoTiming,
    monitor_threshold: u64,
    quarantine_cycles: Option<u64>,
    reconfig_latency: u64,
    watchdog: Option<u64>,
    retry: Option<RetryPolicy>,
    auto_recover: Option<AutoRecover>,
    security: bool,
    masters: Vec<MasterSpec>,
    brams: Vec<(String, AddrRange, Bram, Option<ConfigMemory>)>,
    ddr: Option<(String, AddrRange, ExternalDdr, Option<ConfigMemory>)>,
    journal: Option<(u64, [u8; 16])>,
    resume: Option<SecureCheckpoint>,
    ic_cache: Option<usize>,
    trace_capacity: Option<usize>,
    taint: bool,
    degrade: Option<DegradeConfig>,
}

impl Default for SocBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SocBuilder {
    /// Start a build with the ML605 default clock and a fixed-priority bus.
    pub fn new() -> Self {
        SocBuilder {
            clock: Clock::ML605_DEFAULT,
            bus_config: BusConfig::default(),
            arbiter: Box::new(FixedPriority),
            sb_timing: SbTiming::PAPER,
            crypto_timing: CryptoTiming::PAPER,
            monitor_threshold: 0,
            quarantine_cycles: None,
            reconfig_latency: 32,
            watchdog: None,
            retry: None,
            auto_recover: None,
            security: true,
            masters: Vec::new(),
            brams: Vec::new(),
            ddr: None,
            journal: None,
            resume: None,
            ic_cache: None,
            trace_capacity: None,
            taint: false,
            degrade: None,
        }
    }

    /// Arm the overload brownout controller: when the number of queued
    /// bus requests stays at or above the high watermark for
    /// `enter_after` consecutive cycles, every LCF steps its
    /// integrity-verified regions down the declared-safe posture lattice
    /// ([`secbus_core::brownout_posture`]: verify → cipher-only, never
    /// to bypass) and steps back up only after `exit_after` consecutive
    /// low-pressure cycles. Entry and exit are visible as
    /// [`TraceEvent::DegradeEnter`] / [`TraceEvent::DegradeExit`].
    pub fn degrade(mut self, cfg: DegradeConfig) -> Self {
        self.degrade = Some(cfg);
        self
    }

    /// Arm DIFT-style taint tracking: data entering a master from an
    /// unprotected or cipher-only DDR region (per the LCF policies) tags
    /// the master; tags propagate through shared-memory writes; a tainted
    /// write reaching a confidentiality+integrity region — or a tainted
    /// master initiating a policy-epoch commit — raises
    /// [`Violation::TaintedSink`]. Off by default; the taint layer only
    /// *adds* denials and alerts, it never admits anything new.
    pub fn taint_tracking(mut self) -> Self {
        self.taint = true;
        self
    }

    /// Arm the observability spine: every component (bus, Local
    /// Firewalls, LCF, Security Monitor and the master ports) records
    /// cycle-stamped [`TraceEvent`]s into one shared ring retaining at
    /// most `capacity` events. Off by default — tracing changes no
    /// simulated behaviour, only what is observable afterwards via
    /// [`Soc::tracer`] and [`Soc::chrome_trace`].
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Give every integrity-protected LCF region an AEGIS-style cache of
    /// `entries` trusted hash-tree nodes. Verification stops at the first
    /// cached ancestor; verdicts and alerts are identical to the uncached
    /// walk — only the modeled Integrity-Core cycle cost changes.
    pub fn ic_cache(mut self, entries: usize) -> Self {
        self.ic_cache = Some(entries);
        self
    }

    /// Arm the LCF's crash-consistency layer: every protected write is
    /// journaled (two-phase) and the secure state is checkpointed to the
    /// authenticated [`SecureStateImage`] slot every `interval` commits.
    ///
    /// [`SecureStateImage`]: secbus_crypto::SecureStateImage
    pub fn journal(mut self, interval: u64, state_key: [u8; 16]) -> Self {
        self.journal = Some((interval, state_key));
        self
    }

    /// Boot by *recovering* the supplied checkpoint against the (already
    /// sealed, crash-surviving) DDR contents instead of sealing a fresh
    /// boot image. Requires [`SocBuilder::journal`] with the same state
    /// key that produced the checkpoint. The outcome is reported by
    /// [`Soc::recovery_report`]; a quarantined outcome leaves the LCF
    /// blocked.
    pub fn resume_from(mut self, checkpoint: SecureCheckpoint) -> Self {
        self.resume = Some(checkpoint);
        self
    }

    /// Override the system clock.
    pub fn clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// Override the bus timing parameters.
    pub fn bus_config(mut self, cfg: BusConfig) -> Self {
        self.bus_config = cfg;
        self
    }

    /// Override the arbitration policy.
    pub fn arbiter(mut self, arbiter: Box<dyn Arbiter>) -> Self {
        self.arbiter = arbiter;
        self
    }

    /// Override the Security Builder timing used by every firewall.
    pub fn sb_timing(mut self, timing: SbTiming) -> Self {
        self.sb_timing = timing;
        self
    }

    /// Override the crypto-core timing used by the LCF.
    pub fn crypto_timing(mut self, timing: CryptoTiming) -> Self {
        self.crypto_timing = timing;
        self
    }

    /// Block an IP after this many violations (0 = discard-only).
    pub fn monitor_threshold(mut self, threshold: u64) -> Self {
        self.monitor_threshold = threshold;
        self
    }

    /// Make monitor blocks time-bounded: the IP is released after
    /// `cycles` cycles (quarantine instead of a permanent block).
    pub fn quarantine(mut self, cycles: u64) -> Self {
        self.quarantine_cycles = Some(cycles);
        self
    }

    /// Quiesce window for policy reconfiguration.
    pub fn reconfig_latency(mut self, cycles: u64) -> Self {
        self.reconfig_latency = cycles;
        self
    }

    /// Arm the monitor's watchdog: any bus transaction still outstanding
    /// `timeout` cycles after issue is cancelled everywhere it might live
    /// and replaced by a synthesized [`BusError::Timeout`] response, so a
    /// dropped grant or wedged slave degrades to a reported error instead
    /// of hanging the issuing IP forever.
    ///
    /// # Panics
    /// Panics on a zero timeout.
    pub fn watchdog(mut self, timeout: u64) -> Self {
        self.watchdog = Some(timeout);
        self
    }

    /// Enable bounded retry-with-exponential-backoff at every master
    /// interface (see [`RetryPolicy`]).
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Make quarantines self-healing: when the monitor quarantines the
    /// LCF, its protected regions' integrity trees are rebuilt from the
    /// ciphertext currently in memory (and re-keyed if `rekey` is set);
    /// when it quarantines a Local Firewall, that firewall's
    /// Configuration Memory is parity-scrubbed. Either way the IP comes
    /// back from quarantine with clean security state.
    pub fn auto_recover(mut self, rekey: bool) -> Self {
        self.auto_recover = Some(AutoRecover { rekey });
        self
    }

    /// Build the *generic* system: all firewall configurations are ignored
    /// and every IP talks to the bus directly (the Table I baseline row
    /// and the denominator of every overhead measurement).
    pub fn without_security(mut self) -> Self {
        self.security = false;
        self
    }

    /// Add a bus master with no Local Firewall.
    pub fn add_master(mut self, device: Box<dyn BusMaster>) -> Self {
        self.masters.push((device, None, None));
        self
    }

    /// Add a bus master behind a Local Firewall with the given policies.
    pub fn add_protected_master(
        mut self,
        device: Box<dyn BusMaster>,
        policies: ConfigMemory,
    ) -> Self {
        self.masters.push((device, Some(policies), None));
        self
    }

    /// Add a bus master behind a Local Firewall that also enforces a
    /// traffic budget (the DoS-mitigation extension).
    pub fn add_rate_limited_master(
        mut self,
        device: Box<dyn BusMaster>,
        policies: ConfigMemory,
        limit: RateLimit,
    ) -> Self {
        self.masters.push((device, Some(policies), Some(limit)));
        self
    }

    /// Add an internal BRAM slave, optionally behind a slave-side LF.
    pub fn add_bram(
        mut self,
        label: impl Into<String>,
        range: AddrRange,
        bram: Bram,
        policies: Option<ConfigMemory>,
    ) -> Self {
        self.brams.push((label.into(), range, bram, policies));
        self
    }

    /// Attach the external DDR, optionally behind the LCF whose policies
    /// (with CM/IM modes and keys) are given.
    pub fn set_ddr(
        mut self,
        label: impl Into<String>,
        range: AddrRange,
        ddr: ExternalDdr,
        lcf_policies: Option<ConfigMemory>,
    ) -> Self {
        self.ddr = Some((label.into(), range, ddr, lcf_policies));
        self
    }

    /// Assemble and seal the system, panicking on a misconfigured
    /// builder. Prefer [`SocBuilder::try_build`] where a configuration
    /// error should be handled rather than abort.
    pub fn build(self) -> Soc {
        match self.try_build() {
            Ok(soc) => soc,
            Err(e) => panic!("SocBuilder::build: {e}"),
        }
    }

    /// Assemble and seal the system, reporting configuration errors as
    /// typed values instead of panicking.
    pub fn try_build(self) -> Result<Soc, BuildError> {
        if self.resume.is_some() && self.journal.is_none() {
            return Err(BuildError::ResumeWithoutJournal);
        }
        let mut bus = SharedBus::new(self.bus_config, self.arbiter);
        let tracer = self.trace_capacity.map(Tracer::new);
        let mut next_fw = 0u8;
        let mut alloc_fw = || {
            let id = FirewallId(next_fw);
            next_fw += 1;
            id
        };

        let mut masters: Vec<MasterSlot> = self
            .masters
            .into_iter()
            .map(|(device, policies, limit)| {
                let bus_id = bus.add_master();
                let firewall = if self.security {
                    policies.map(|p| {
                        let fw =
                            LocalFirewall::new(alloc_fw(), format!("LF {}", device.label()), p)
                                .with_timing(self.sb_timing);
                        match limit {
                            Some(l) => fw.with_rate_limit(l),
                            None => fw,
                        }
                    })
                } else {
                    None
                };
                MasterSlot {
                    bus_id,
                    device: Some(device),
                    firewall,
                    outstanding_reads: HashMap::new(),
                    issued: HashMap::new(),
                    retries: HashMap::new(),
                    verdicts: HashMap::new(),
                    inbound: VecDeque::new(),
                    ready: VecDeque::new(),
                }
            })
            .collect();

        let mut slaves: Vec<SlaveSlot> = Vec::new();
        for (label, range, bram, policies) in self.brams {
            let bus_id = bus.add_slave();
            bus.map_range(bus_id, range)
                .expect("overlapping BRAM range");
            let firewall = if self.security {
                policies.map(|p| {
                    LocalFirewall::new(alloc_fw(), format!("LF {label}"), p)
                        .with_timing(self.sb_timing)
                })
            } else {
                None
            };
            slaves.push(SlaveSlot {
                bus_id,
                label,
                base: range.base,
                kind: SlaveKind::Bram(Box::new(bram)),
                firewall,
                pending: None,
                stall_next: 0,
            });
        }
        let mut recovery = None;
        let mut taint = self.taint.then(|| TaintEngine::new(masters.len()));
        if let Some((label, range, mut ddr, lcf_policies)) = self.ddr {
            // Taint sources and sinks come straight from the LCF's policy
            // table: what the paper protects is what DIFT must guard, and
            // what it leaves in the clear is where taint enters. Without
            // an LCF the whole external memory is attacker-reachable.
            if let Some(te) = taint.as_mut() {
                match &lcf_policies {
                    Some(policies) => {
                        for pol in policies.policies() {
                            match (pol.cm, pol.im) {
                                (ConfidentialityMode::Encrypt, IntegrityMode::Verify) => {
                                    te.add_sink(pol.region.base, pol.region.len);
                                }
                                (ConfidentialityMode::Encrypt, IntegrityMode::Bypass) => {
                                    te.add_source(
                                        pol.region.base,
                                        pol.region.len,
                                        TaintTag::CipherOnly,
                                    );
                                }
                                (ConfidentialityMode::Bypass, _) => {
                                    te.add_source(
                                        pol.region.base,
                                        pol.region.len,
                                        TaintTag::Unprotected,
                                    );
                                }
                            }
                        }
                    }
                    None => te.add_source(range.base, range.len, TaintTag::Unprotected),
                }
            }
            let bus_id = bus.add_slave();
            bus.map_range(bus_id, range).expect("overlapping DDR range");
            let lcf = if self.security {
                lcf_policies.map(|p| {
                    let mut lcf = LocalCipheringFirewall::new(
                        alloc_fw(),
                        format!("LCF {label}"),
                        p,
                        range.base,
                        self.crypto_timing,
                    )
                    .with_sb_timing(self.sb_timing);
                    if let Some(entries) = self.ic_cache {
                        lcf.enable_ic_cache(entries);
                    }
                    if let Some((interval, key)) = self.journal {
                        lcf.enable_journal(interval, key);
                    }
                    match &self.resume {
                        Some(cp) => {
                            let (interval, key) =
                                self.journal.expect("checked at the top of try_build");
                            recovery = Some(lcf.recover_from(
                                &mut ddr,
                                &cp.state,
                                key,
                                Some(cp.counter.clone()),
                                interval,
                            ));
                        }
                        None => {
                            lcf.seal(&mut ddr);
                        }
                    }
                    lcf
                })
            } else {
                None
            };
            slaves.push(SlaveSlot {
                bus_id,
                label,
                base: range.base,
                kind: SlaveKind::Ddr {
                    ddr: Box::new(ddr),
                    lcf: lcf.map(Box::new),
                },
                firewall: None,
                pending: None,
                stall_next: 0,
            });
        }

        let mut monitor = SecurityMonitor::new(self.monitor_threshold);
        if let Some(q) = self.quarantine_cycles {
            monitor = monitor.with_quarantine(q);
        }
        if let Some(w) = self.watchdog {
            monitor = monitor.with_watchdog(w);
        }

        if let Some(t) = &tracer {
            bus.set_tracer(t.clone());
            monitor.set_tracer(t.clone());
            for slot in &mut masters {
                if let Some(fw) = slot.firewall.as_mut() {
                    fw.set_tracer(t.clone());
                }
            }
            for slot in &mut slaves {
                if let Some(fw) = slot.firewall.as_mut() {
                    fw.set_tracer(t.clone());
                }
                if let SlaveKind::Ddr { lcf: Some(lcf), .. } = &mut slot.kind {
                    lcf.set_tracer(t.clone());
                }
            }
        }

        let mut reconfig = ReconfigController::new(self.reconfig_latency);
        if let Some(cp) = &self.resume {
            reconfig.resume_epoch(cp.policy_epoch);
        }

        let halted_masters = masters
            .iter()
            .filter(|m| m.device.as_ref().is_some_and(|d| d.halted()))
            .count();

        Ok(Soc {
            clock: self.clock,
            now: Cycle::ZERO,
            bus,
            masters,
            slaves,
            monitor,
            reconfig,
            releases: Vec::new(),
            faults: FaultPlan::empty(),
            retry: self.retry,
            auto_recover: self.auto_recover,
            track_issues: self.watchdog.is_some() || self.retry.is_some(),
            recovery_rng: SimRng::new(0x5ec_b05).derive("soc.recovery"),
            security: self.security,
            stats: Stats::new(),
            tracer,
            powered_off: false,
            torn_seen: 0,
            recovery,
            taint,
            degrade: self.degrade.map(Hysteresis::new),
            core: SimCore::from_env(),
            halted_masters,
            ticks_executed: 0,
        })
    }
}

/// Why [`SocBuilder::try_build`] refused to assemble the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildError {
    /// [`SocBuilder::resume_from`] was given a checkpoint but no
    /// [`SocBuilder::journal`] configuration: recovery replays the
    /// write-ahead journal, so a resume without one cannot be sound.
    ResumeWithoutJournal,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::ResumeWithoutJournal => {
                write!(f, "resume_from requires SocBuilder::journal")
            }
        }
    }
}

impl std::error::Error for BuildError {}

enum SlaveKind {
    Bram(Box<Bram>),
    Ddr {
        ddr: Box<ExternalDdr>,
        lcf: Option<Box<LocalCipheringFirewall>>,
    },
}

struct MasterSlot {
    bus_id: MasterId,
    device: Option<Box<dyn BusMaster>>,
    firewall: Option<LocalFirewall>,
    /// Reads in flight, kept for the inbound ("before reaching the IP")
    /// check, which needs the transaction's address and width.
    outstanding_reads: HashMap<TxnId, Transaction>,
    /// Every transaction this interface put on the bus, kept (only when
    /// the watchdog or retry is armed) until its final response so it can
    /// be re-issued verbatim on a transient error.
    issued: HashMap<TxnId, Transaction>,
    /// Live retries: reissued id -> (original id, attempts so far). The
    /// IP only ever sees the original id.
    retries: HashMap<TxnId, (TxnId, u32)>,
    /// Cycle at which each in-flight transaction's firewall verdict was
    /// rendered (write-path checks happen at issue; read-path verdicts
    /// land on final delivery). Feeds `txn.verdict_to_complete`.
    verdicts: HashMap<TxnId, u64>,
    /// Responses maturing through the inbound check delay.
    inbound: VecDeque<(u64, Response)>,
    /// Responses ready for the device.
    ready: VecDeque<Response>,
}

struct SlaveSlot {
    bus_id: SlaveId,
    label: String,
    base: u32,
    kind: SlaveKind,
    firewall: Option<LocalFirewall>,
    /// The single in-service transaction and its completion time.
    pending: Option<(u64, Response)>,
    /// Stall cycles (from an injected fault) charged to the next service
    /// when none is pending at injection time.
    stall_next: u64,
}

/// The IP-side port: checks writes outbound, records reads for the
/// inbound check, and synthesizes discard responses for violations.
struct PortAdapter<'a> {
    bus: &'a mut SharedBus,
    monitor: &'a mut SecurityMonitor,
    firewall: Option<&'a mut LocalFirewall>,
    master: MasterId,
    outstanding_reads: &'a mut HashMap<TxnId, Transaction>,
    issued: &'a mut HashMap<TxnId, Transaction>,
    /// Verdict cycles for the lifecycle histograms (see [`MasterSlot`]).
    verdicts: &'a mut HashMap<TxnId, u64>,
    inbound: &'a mut VecDeque<(u64, Response)>,
    ready: &'a mut VecDeque<Response>,
    /// System stats, for the txn-lifecycle latency histograms.
    stats: &'a mut Stats,
    tracer: Option<&'a Tracer>,
    /// DIFT taint state, when armed.
    taint: Option<&'a mut TaintEngine>,
    /// Whether to remember issued transactions (watchdog/retry armed).
    track: bool,
    now: Cycle,
}

impl PortAdapter<'_> {
    /// Remember a transaction that actually went on the bus and start its
    /// watchdog timer. Discards synthesized at the interface never come
    /// through here — nothing is outstanding for them.
    fn track_issue(&mut self, txn: Transaction, firewall: Option<FirewallId>) {
        if self.track {
            self.issued.insert(txn.id, txn);
            self.monitor.watch(&txn, firewall, self.now);
        }
    }

    /// DIFT read hook: the master joins the source tag of what it just
    /// asked for. Tagging at issue time (not delivery) is conservative —
    /// a discarded read still taints — which only ever errs toward alerts.
    fn taint_read(&mut self, addr: u32, bytes: u32) {
        let master = self.master.0;
        let Some(te) = self.taint.as_deref_mut() else {
            return;
        };
        let m = usize::from(master);
        let before = te.master_tag(m);
        let after = te.note_read(m, addr, bytes);
        if after > before {
            self.stats.incr("soc.taint.tainted_reads");
            if let Some(t) = self.tracer {
                t.record(
                    self.now,
                    TraceEvent::TaintSpread {
                        master,
                        addr,
                        tag: after.name(),
                    },
                );
            }
        }
    }

    /// DIFT write commit for a write that will land: tainted masters tag
    /// the touched words, clean masters scrub them.
    fn taint_commit_write(&mut self, addr: u32, bytes: u32) {
        let m = usize::from(self.master.0);
        if let Some(te) = self.taint.as_deref_mut() {
            if te.master_tag(m).is_tainted() {
                self.stats.incr("soc.taint.spread_writes");
            }
            te.commit_write(m, addr, bytes);
        }
    }

    /// Refuse an access at admission: the master's bounded request queue
    /// is full, so the access is shed *now* — a synthesized
    /// [`BusError::Overload`] response back to the IP, a per-master shed
    /// counter, and (behind a Local Firewall) a [`Violation::Shed`] alert
    /// to the monitor. Shed is an environment fault at the monitor: it
    /// never burns the master's violation budget, because overload is the
    /// fabric's condition, not the IP's misbehaviour.
    fn shed(&mut self, op: Op, addr: u32, width: Width, data: u32, burst: u16) -> TxnId {
        let id = self.bus.alloc_txn_id();
        self.stats.incr("soc.shed");
        self.stats.incr(shed_key(self.master.0));
        if let Some(fw) = self.firewall.as_deref_mut() {
            let probe = Transaction {
                id,
                master: self.master,
                op,
                addr,
                width,
                data,
                burst: burst.max(1),
                issued_at: self.now,
            };
            fw.raise_alert(&probe, Violation::Shed, self.now);
        }
        if let Some(t) = self.tracer {
            t.record(
                self.now,
                TraceEvent::TxnIssued {
                    txn: id.0,
                    master: self.master.0,
                    addr,
                    write: op == Op::Write,
                },
            );
            t.record(
                self.now,
                TraceEvent::TxnComplete {
                    txn: id.0,
                    master: self.master.0,
                    ok: false,
                    latency: 0,
                },
            );
        }
        self.stats.record("txn.verdict_to_complete", 0);
        self.inbound.push_back((
            self.now.get(),
            Response {
                txn: id,
                data: 0,
                result: Err(BusError::Overload),
                completed_at: self.now,
            },
        ));
        id
    }
}

/// Byte span of one access: width × burst beats.
#[inline]
fn span_bytes(width: Width, burst: u16) -> u32 {
    width.bytes() * u32::from(burst.max(1))
}

/// Per-master shed counters, preallocated so the refusal path does not
/// allocate (stat keys must be `&'static str`).
fn shed_key(master: u8) -> &'static str {
    const KEYS: [&str; 8] = [
        "soc.shed.m0",
        "soc.shed.m1",
        "soc.shed.m2",
        "soc.shed.m3",
        "soc.shed.m4",
        "soc.shed.m5",
        "soc.shed.m6",
        "soc.shed.m7",
    ];
    KEYS.get(usize::from(master))
        .copied()
        .unwrap_or("soc.shed.m_other")
}

impl MasterAccess for PortAdapter<'_> {
    fn issue(&mut self, op: Op, addr: u32, width: Width, data: u32, burst: u16) -> TxnId {
        // Fail-secure admission control: a full request queue refuses the
        // access up front instead of growing without bound (or panicking
        // inside the arbiter). The refusal is typed, counted and alerted
        // — an open-loop source sees every shed access fail loudly.
        if self.bus.master_queue_free(self.master) == 0 {
            return self.shed(op, addr, width, data, burst);
        }
        match (&mut self.firewall, op) {
            // Writes: "before reaching the bus all data are checked".
            (Some(fw), Op::Write) => {
                let id = self.bus.alloc_txn_id();
                let probe = Transaction {
                    id,
                    master: self.master,
                    op,
                    addr,
                    width,
                    data,
                    burst: burst.max(1),
                    issued_at: self.now,
                };
                let decision = fw.check(&probe, self.now);
                self.stats.record("txn.issue_to_verdict", decision.latency);
                // DIFT: the address rules passed — now the information-flow
                // rule. A tainted master writing into a protected sink is
                // denied at the interface exactly like a policy violation.
                let tainted_sink = decision.allowed
                    && self.taint.as_deref_mut().is_some_and(|te| {
                        matches!(
                            te.write_verdict(
                                usize::from(probe.master.0),
                                addr,
                                span_bytes(width, burst)
                            ),
                            WriteVerdict::Sink(_)
                        )
                    });
                if tainted_sink {
                    fw.note_violation(&probe, Violation::TaintedSink, self.now);
                    self.stats.incr("soc.taint.sink_blocked");
                    if let Some(t) = self.tracer {
                        t.record(
                            self.now,
                            TraceEvent::TxnIssued {
                                txn: id.0,
                                master: self.master.0,
                                addr,
                                write: true,
                            },
                        );
                        t.record(
                            self.now,
                            TraceEvent::TaintSink {
                                txn: id.0,
                                master: self.master.0,
                                addr,
                                blocked: true,
                            },
                        );
                        t.record(
                            self.now,
                            TraceEvent::TxnComplete {
                                txn: id.0,
                                master: self.master.0,
                                ok: false,
                                latency: decision.latency,
                            },
                        );
                    }
                    self.stats.record("txn.verdict_to_complete", 0);
                    self.inbound.push_back((
                        self.now.get() + decision.latency,
                        Response {
                            txn: id,
                            data: 0,
                            result: Err(BusError::Discarded),
                            completed_at: self.now,
                        },
                    ));
                    return id;
                }
                if decision.allowed {
                    // Re-issue through the bus with delayed eligibility; we
                    // burn the probe id to keep the id space monotone.
                    let fw_id = fw.id();
                    self.taint_commit_write(addr, span_bytes(width, burst));
                    let real = self.bus.issue_at(
                        self.master,
                        op,
                        addr,
                        width,
                        data,
                        burst,
                        self.now,
                        self.now + decision.latency,
                    );
                    if let Some(t) = self.tracer {
                        t.record(
                            self.now,
                            TraceEvent::TxnIssued {
                                txn: real.0,
                                master: self.master.0,
                                addr,
                                write: true,
                            },
                        );
                    }
                    self.verdicts
                        .insert(real, self.now.get() + decision.latency);
                    self.track_issue(Transaction { id: real, ..probe }, Some(fw_id));
                    real
                } else {
                    // Discarded at the interface: never reaches the bus.
                    if let Some(t) = self.tracer {
                        t.record(
                            self.now,
                            TraceEvent::TxnIssued {
                                txn: id.0,
                                master: self.master.0,
                                addr,
                                write: true,
                            },
                        );
                        t.record(
                            self.now,
                            TraceEvent::TxnComplete {
                                txn: id.0,
                                master: self.master.0,
                                ok: false,
                                latency: decision.latency,
                            },
                        );
                    }
                    self.stats.record("txn.verdict_to_complete", 0);
                    self.inbound.push_back((
                        self.now.get() + decision.latency,
                        Response {
                            txn: id,
                            data: 0,
                            result: Err(BusError::Discarded),
                            completed_at: self.now,
                        },
                    ));
                    id
                }
            }
            // Reads: issued immediately; data checked on the way back.
            (Some(fw), Op::Read) => {
                let fw_id = fw.id();
                let id = self
                    .bus
                    .issue(self.master, op, addr, width, data, burst, self.now);
                let txn = Transaction {
                    id,
                    master: self.master,
                    op,
                    addr,
                    width,
                    data,
                    burst: burst.max(1),
                    issued_at: self.now,
                };
                if let Some(t) = self.tracer {
                    t.record(
                        self.now,
                        TraceEvent::TxnIssued {
                            txn: id.0,
                            master: self.master.0,
                            addr,
                            write: false,
                        },
                    );
                }
                self.taint_read(addr, span_bytes(width, burst));
                self.outstanding_reads.insert(id, txn);
                self.track_issue(txn, Some(fw_id));
                id
            }
            // Unprotected master: straight to the bus.
            (None, _) => {
                let id = self
                    .bus
                    .issue(self.master, op, addr, width, data, burst, self.now);
                let txn = Transaction {
                    id,
                    master: self.master,
                    op,
                    addr,
                    width,
                    data,
                    burst: burst.max(1),
                    issued_at: self.now,
                };
                if let Some(t) = self.tracer {
                    t.record(
                        self.now,
                        TraceEvent::TxnIssued {
                            txn: id.0,
                            master: self.master.0,
                            addr,
                            write: op == Op::Write,
                        },
                    );
                }
                // DIFT without a firewall: taint is still tracked, but
                // there is nothing to raise an alert through and nothing
                // to block with — a sink reach is *counted* and let
                // through, which is exactly the bare-mode damage metric.
                match op {
                    Op::Read => self.taint_read(addr, span_bytes(width, burst)),
                    Op::Write => {
                        let bytes = span_bytes(width, burst);
                        let m = usize::from(self.master.0);
                        let reached_sink = self.taint.as_deref_mut().is_some_and(|te| {
                            matches!(te.write_verdict(m, addr, bytes), WriteVerdict::Sink(_))
                        });
                        if reached_sink {
                            self.stats.incr("soc.taint.unalerted_sinks");
                            if let Some(t) = self.tracer {
                                t.record(
                                    self.now,
                                    TraceEvent::TaintSink {
                                        txn: id.0,
                                        master: self.master.0,
                                        addr,
                                        blocked: false,
                                    },
                                );
                            }
                        }
                        self.taint_commit_write(addr, bytes);
                    }
                }
                self.track_issue(txn, None);
                id
            }
        }
    }

    fn poll(&mut self) -> Option<Response> {
        self.ready.pop_front()
    }
}

/// The assembled system.
pub struct Soc {
    clock: Clock,
    now: Cycle,
    bus: SharedBus,
    masters: Vec<MasterSlot>,
    slaves: Vec<SlaveSlot>,
    monitor: SecurityMonitor,
    reconfig: ReconfigController,
    /// Scheduled quarantine releases: (cycle, firewall).
    releases: Vec<(u64, FirewallId)>,
    /// Cycle-stamped environment faults still waiting to fire.
    faults: FaultPlan,
    retry: Option<RetryPolicy>,
    auto_recover: Option<AutoRecover>,
    /// Whether master interfaces remember issued transactions
    /// (watchdog/retry armed at build time).
    track_issues: bool,
    /// Deterministic key stream for auto-recovery rekeys.
    recovery_rng: SimRng,
    security: bool,
    stats: Stats,
    /// The shared observability spine, when armed via [`SocBuilder::trace`].
    tracer: Option<Tracer>,
    /// Power is gone: the clock still counts (wall time) but no device,
    /// bus or firewall does any work until the system is rebuilt.
    powered_off: bool,
    /// DDR torn-store count already accounted for (edge detection).
    torn_seen: u64,
    /// What boot-time recovery did, when built with
    /// [`SocBuilder::resume_from`].
    recovery: Option<RecoveryReport>,
    /// DIFT taint state, when armed via [`SocBuilder::taint_tracking`].
    taint: Option<TaintEngine>,
    /// Overload brownout controller, when armed via [`SocBuilder::degrade`].
    degrade: Option<Hysteresis>,
    /// Which run-loop drives the system: the legacy stepped loop or the
    /// event-driven core that fast-forwards over provably idle cycles.
    core: SimCore,
    /// Masters currently reporting `halted()`, maintained on transition
    /// in the device-tick step so `run_until_halt` checks O(1) instead
    /// of re-polling every master every cycle.
    halted_masters: usize,
    /// Ticks actually executed (events, on the event core). A plain
    /// field, deliberately outside [`Stats`]: the metrics snapshot must
    /// stay byte-identical between cores, and this counter is the one
    /// thing that legitimately differs.
    ticks_executed: u64,
}

impl Soc {
    /// Advance the whole system by one cycle.
    pub fn tick(&mut self) {
        let now = self.now;
        self.ticks_executed += 1;

        // Power gone: wall time still passes (so bounded runs terminate)
        // but nothing computes. The system stays down until rebuilt via
        // [`SocBuilder::resume_from`].
        if self.powered_off {
            self.now = now.next();
            return;
        }

        // 0. Fire scheduled environment faults.
        if !self.faults.is_empty() {
            for event in self.faults.take_due(now) {
                self.apply_fault(event.kind);
            }
        }

        // 1. Route bus responses through retry handling and the inbound
        //    (read) check.
        for midx in 0..self.masters.len() {
            while let Some(resp) = self.bus.poll_response(self.masters[midx].bus_id) {
                self.route_response(midx, resp, now);
            }
        }

        // 1b. Watchdog: a transaction whose completion never arrived is
        //     cancelled everywhere it might still live (bus queues, slave
        //     service) and a synthesized timeout error takes its place,
        //     so a lost grant or wedged slave degrades to a reported
        //     error instead of hanging the issuing IP forever.
        let expired = self.monitor.expire(now);
        for expiry in expired {
            let Some(midx) = self
                .masters
                .iter()
                .position(|m| m.bus_id == expiry.txn.master)
            else {
                continue;
            };
            self.stats.incr("soc.watchdog_cancels");
            self.bus.cancel_inflight(expiry.txn.id);
            for slave in &mut self.slaves {
                if slave
                    .pending
                    .as_ref()
                    .is_some_and(|(_, r)| r.txn == expiry.txn.id)
                {
                    slave.pending = None;
                }
            }
            if let Some(fw) = self.masters[midx].firewall.as_mut() {
                fw.raise_alert(&expiry.txn, Violation::WatchdogTimeout, now);
            }
            let synth = Response {
                txn: expiry.txn.id,
                data: 0,
                result: Err(BusError::Timeout),
                completed_at: now,
            };
            self.route_response(midx, synth, now);
        }

        // 2. Mature inbound responses.
        for slot in &mut self.masters {
            while let Some(&(ready_at, resp)) = slot.inbound.front() {
                if ready_at <= now.get() {
                    slot.inbound.pop_front();
                    slot.ready.push_back(resp);
                } else {
                    break;
                }
            }
        }

        // 3. Tick the IPs through their port adapters. A missing device
        //    (an invariant break — the slot always holds one between
        //    ticks) is accounted and skipped rather than panicking the
        //    fabric.
        for slot in &mut self.masters {
            let Some(mut device) = slot.device.take() else {
                self.stats.incr("soc.invariant.device_missing");
                continue;
            };
            let was_halted = device.halted();
            {
                let mut port = PortAdapter {
                    bus: &mut self.bus,
                    monitor: &mut self.monitor,
                    firewall: slot.firewall.as_mut(),
                    master: slot.bus_id,
                    outstanding_reads: &mut slot.outstanding_reads,
                    issued: &mut slot.issued,
                    verdicts: &mut slot.verdicts,
                    inbound: &mut slot.inbound,
                    ready: &mut slot.ready,
                    stats: &mut self.stats,
                    tracer: self.tracer.as_ref(),
                    taint: self.taint.as_mut(),
                    track: self.track_issues,
                    now,
                };
                device.tick(&mut port, now);
            }
            // Maintain the halted census on transition (run_until_halt
            // checks a counter instead of re-polling every master).
            let is_halted = device.halted();
            if is_halted != was_halted {
                if is_halted {
                    self.halted_masters += 1;
                } else {
                    self.halted_masters -= 1;
                }
            }
            slot.device = Some(device);
        }

        // 4. Bus arbitration and routing.
        self.bus.tick(now);

        // 5. Slave service.
        for slot in &mut self.slaves {
            if let Some((completes_at, resp)) = slot.pending.take() {
                if completes_at <= now.get() {
                    self.bus.slave_complete(slot.bus_id, resp);
                } else {
                    slot.pending = Some((completes_at, resp));
                    continue;
                }
            }
            if slot.pending.is_none() {
                if let Some(txn) = self.bus.slave_pop(slot.bus_id) {
                    let (mut completes_at, resp) = Self::service(slot, &txn, now);
                    // Charge any injected stall accrued while idle.
                    completes_at += std::mem::take(&mut slot.stall_next);
                    slot.pending = Some((completes_at, resp));
                }
            }
        }

        // 5b. Account for fail-secure-dropped orphan completions (late
        // answers to watchdog-cancelled transactions and the like).
        let orphans = self.bus.drain_orphans();
        if !orphans.is_empty() {
            self.stats
                .add("soc.orphan_completions", orphans.len() as u64);
        }

        // 6. Alert network: firewalls -> monitor -> reactions.
        let mut alerts: Vec<Alert> = Vec::new();
        for slot in &mut self.masters {
            if let Some(fw) = slot.firewall.as_mut() {
                alerts.append(&mut fw.drain_alerts());
            }
        }
        for slot in &mut self.slaves {
            if let Some(fw) = slot.firewall.as_mut() {
                alerts.append(&mut fw.drain_alerts());
            }
            if let SlaveKind::Ddr { lcf: Some(lcf), .. } = &mut slot.kind {
                alerts.append(&mut lcf.drain_alerts());
            }
        }
        for alert in alerts {
            match self.monitor.observe(alert) {
                Reaction::BlockIp(fw_id) => self.block_firewall(fw_id),
                Reaction::Quarantine { firewall, until } => {
                    // Re-escalations while already quarantined (the
                    // blocked IP keeps knocking) extend the block but do
                    // not re-run recovery: one recovery per episode.
                    let already_quarantined = self.releases.iter().any(|(_, f)| *f == firewall);
                    self.block_firewall(firewall);
                    self.releases.push((until.get(), firewall));
                    if !already_quarantined {
                        self.recover(firewall);
                    }
                }
                Reaction::None => {}
            }
        }

        // 6b. Release expired quarantines.
        if !self.releases.is_empty() {
            let due: Vec<FirewallId> = self
                .releases
                .iter()
                .filter(|(at, _)| *at <= now.get())
                .map(|(_, fw)| *fw)
                .collect();
            self.releases.retain(|(at, _)| *at > now.get());
            for fw in due {
                self.unblock_firewall(fw);
            }
        }

        // 6c. Overload brownout: sustained fabric pressure (total queued
        //     bus requests) steps the LCF's verify regions down the safe
        //     posture lattice; a real drain steps them back up. Writes
        //     keep the hash tree current throughout, so re-tightening is
        //     sound and tampering during a brownout is caught by the
        //     first post-brownout verify.
        if let Some(hys) = self.degrade.as_mut() {
            let pressure = self.bus.total_pending_requests() as u64;
            let transition = hys.observe(pressure, now.get());
            if let Some(t) = transition {
                let brownout = matches!(t, Transition::Enter);
                self.stats.incr(if brownout {
                    "soc.degrade_enters"
                } else {
                    "soc.degrade_exits"
                });
                for (idx, slot) in self.slaves.iter_mut().enumerate() {
                    if let SlaveKind::Ddr { lcf: Some(lcf), .. } = &mut slot.kind {
                        lcf.set_brownout(brownout);
                        if let Some(tr) = &self.tracer {
                            tr.record(
                                now,
                                match t {
                                    Transition::Enter => TraceEvent::DegradeEnter {
                                        region: idx as u8,
                                        from: "verify",
                                        to: "cipher_only",
                                    },
                                    Transition::Exit { cycles } => TraceEvent::DegradeExit {
                                        region: idx as u8,
                                        cycles,
                                    },
                                },
                            );
                        }
                    }
                }
            }
        }

        // 7. Apply matured reconfigurations.
        for update in self.reconfig.take_ready(now) {
            self.apply_update(update);
        }

        // 8. A torn DDR burst means the power died mid-store: the moment
        //    the tear lands anywhere (LCF block write or raw store), the
        //    whole system goes dark with it.
        let mut died = false;
        for slot in &self.slaves {
            if let SlaveKind::Ddr { ddr, lcf } = &slot.kind {
                let crashed = lcf.as_ref().is_some_and(|l| l.crashed());
                if crashed || ddr.torn_stores() > self.torn_seen {
                    died = true;
                }
            }
        }
        if died {
            self.torn_seen = self
                .slaves
                .iter()
                .filter_map(|s| match &s.kind {
                    SlaveKind::Ddr { ddr, .. } => Some(ddr.torn_stores()),
                    _ => None,
                })
                .max()
                .unwrap_or(0);
            self.power_cut();
        }

        self.now = now.next();
        self.stats.incr("soc.cycles");
    }

    /// Kill power now: every subsequent cycle is dead time. Volatile
    /// state (tree roots, timestamp tables, in-flight transactions) is
    /// lost; only the DDR ciphertext, the [`PersistentState`] and the
    /// monotonic counter survive for the next boot.
    ///
    /// [`PersistentState`]: secbus_core::PersistentState
    fn power_cut(&mut self) {
        if !self.powered_off {
            self.powered_off = true;
            self.stats.incr("soc.power_cuts");
        }
    }

    /// Deliver one response (from the bus or synthesized by the watchdog)
    /// to master `midx`, applying the retry policy first: a transient
    /// error on a transaction the interface still remembers is re-issued
    /// with exponential backoff instead of surfacing to the IP.
    fn route_response(&mut self, midx: usize, mut resp: Response, now: Cycle) {
        let slot = &mut self.masters[midx];
        let arrived = resp.txn;
        // A reissued transaction completes under its retry id; fold it
        // back onto the original so the IP only ever sees the id it
        // issued (and the inbound check finds its outstanding read).
        let attempts = match slot.retries.remove(&arrived) {
            Some((orig, attempts)) => {
                resp.txn = orig;
                attempts
            }
            None => 0,
        };
        self.monitor.resolve(arrived);
        let transient = matches!(resp.result, Err(BusError::Slave) | Err(BusError::Timeout));
        if transient {
            if let Some(policy) = self.retry {
                if attempts < policy.max_attempts {
                    if let Some(&orig_txn) = slot.issued.get(&resp.txn) {
                        let backoff = policy.base_backoff << attempts.min(32);
                        // A retry must respect admission control like any
                        // other access: a full request queue sheds the
                        // retry (the original error surfaces to the IP)
                        // instead of panicking inside the arbiter.
                        let retry_id = self.bus.try_issue_at(
                            slot.bus_id,
                            orig_txn.op,
                            orig_txn.addr,
                            orig_txn.width,
                            orig_txn.data,
                            orig_txn.burst,
                            now,
                            now + backoff,
                        );
                        if let Some(retry_id) = retry_id {
                            let retry_txn = Transaction {
                                id: retry_id,
                                issued_at: now,
                                ..orig_txn
                            };
                            slot.retries.insert(retry_id, (resp.txn, attempts + 1));
                            let fw = slot.firewall.as_ref().map(|f| f.id());
                            self.monitor.watch(&retry_txn, fw, now);
                            self.stats.incr("soc.retries");
                            if let Some(t) = &self.tracer {
                                t.record(
                                    now,
                                    TraceEvent::Retransmit {
                                        id: resp.txn.0,
                                        layer: "soc",
                                    },
                                );
                            }
                            return;
                        }
                        self.stats.incr("soc.retry_shed");
                    }
                }
            }
        }
        // Final delivery: account the retry outcome, then run the inbound
        // ("before reaching the IP") check as usual.
        let issued = slot.issued.remove(&resp.txn);
        if attempts > 0 {
            if let Some(orig) = issued {
                self.stats
                    .record("soc.retry_latency", now.saturating_since(orig.issued_at));
            }
            if resp.result.is_ok() {
                self.stats.incr("soc.retry_successes");
            }
        }
        let mut verdict_at = slot.verdicts.remove(&resp.txn);
        let outstanding = slot.outstanding_reads.remove(&resp.txn);
        let issued_at = issued.or(outstanding).map(|t| t.issued_at);
        let ready_at = match (slot.firewall.as_mut(), outstanding) {
            (Some(fw), Some(txn)) => {
                // "all data are checked before reaching the IP"
                let decision = fw.check(&txn, now);
                let at = now.get() + decision.latency;
                self.stats.record(
                    "txn.issue_to_verdict",
                    at.saturating_sub(txn.issued_at.get()),
                );
                verdict_at = Some(at);
                if !decision.allowed {
                    resp = Response {
                        txn: resp.txn,
                        data: 0,
                        result: Err(BusError::Discarded),
                        completed_at: resp.completed_at,
                    };
                }
                at
            }
            _ => now.get(),
        };
        if let Some(at) = verdict_at {
            self.stats
                .record("txn.verdict_to_complete", ready_at.saturating_sub(at));
        }
        if let Some(t) = &self.tracer {
            let latency = issued_at.map_or(0, |at| ready_at.saturating_sub(at.get()));
            t.record(
                now,
                TraceEvent::TxnComplete {
                    txn: resp.txn.0,
                    master: slot.bus_id.0,
                    ok: resp.result.is_ok(),
                    latency,
                },
            );
        }
        slot.inbound.push_back((ready_at, resp));
    }

    /// Apply one scheduled fault to the hardware it targets. Selectors
    /// are reduced modulo the matching population, so any generated plan
    /// applies to any topology; a fault class with no possible target in
    /// this system (e.g. a CC glitch without an LCF) fizzles silently.
    fn apply_fault(&mut self, kind: FaultKind) {
        self.stats.incr(&format!("soc.fault.{}", kind.class()));
        match kind {
            FaultKind::DdrBitFlip { offset, bit } => {
                for slot in &mut self.slaves {
                    if let SlaveKind::Ddr { ddr, .. } = &mut slot.kind {
                        if ddr.size() == 0 {
                            return;
                        }
                        let off = offset % ddr.size();
                        let byte = ddr.snoop(off, 1)[0] ^ (1 << (bit % 8));
                        ddr.tamper(off, &[byte]);
                        return;
                    }
                }
            }
            FaultKind::BusLoseGrant => self.bus.inject_lose_grant(),
            FaultKind::SlaveStall {
                slave,
                extra_cycles,
            } => {
                if self.slaves.is_empty() {
                    return;
                }
                let idx = usize::from(slave) % self.slaves.len();
                match &mut self.slaves[idx].pending {
                    Some((completes_at, _)) => *completes_at += extra_cycles,
                    None => self.slaves[idx].stall_next += extra_cycles,
                }
            }
            FaultKind::CorruptResponse { xor } => self.bus.inject_corrupt_response(xor),
            FaultKind::PolicyCorrupt {
                firewall,
                entry,
                bit,
            } => {
                let mut configs: Vec<&mut ConfigMemory> = Vec::new();
                for slot in &mut self.masters {
                    if let Some(fw) = slot.firewall.as_mut() {
                        configs.push(fw.config_mut());
                    }
                }
                for slot in &mut self.slaves {
                    if let Some(fw) = slot.firewall.as_mut() {
                        configs.push(fw.config_mut());
                    }
                    if let SlaveKind::Ddr { lcf: Some(lcf), .. } = &mut slot.kind {
                        configs.push(lcf.firewall_mut().config_mut());
                    }
                }
                if !configs.is_empty() {
                    let idx = usize::from(firewall) % configs.len();
                    configs[idx].corrupt_entry_bit(entry, bit);
                }
            }
            FaultKind::CcGlitch => {
                for slot in &mut self.slaves {
                    if let SlaveKind::Ddr { lcf: Some(lcf), .. } = &mut slot.kind {
                        lcf.inject_cc_glitch();
                    }
                }
            }
            FaultKind::IcGlitch => {
                for slot in &mut self.slaves {
                    if let SlaveKind::Ddr { lcf: Some(lcf), .. } = &mut slot.kind {
                        lcf.inject_ic_glitch();
                    }
                }
            }
            FaultKind::PowerCut => self.power_cut(),
            FaultKind::TornWrite { keep_bytes } => {
                for slot in &mut self.slaves {
                    if let SlaveKind::Ddr { ddr, .. } = &mut slot.kind {
                        ddr.tear_next_store(keep_bytes);
                        return;
                    }
                }
                // No DDR to tear: the power still dies.
                self.power_cut();
            }
            FaultKind::EpochCommitFault { stage } => {
                self.reconfig.arm_commit_fault(stage);
            }
            // NoC-layer faults: this SoC's interconnect is the shared
            // bus, so the mesh classes have no surface to land on here
            // (the `secbus-noc` mesh consumes them via `Mesh::apply_fault`).
            FaultKind::LinkBitFlip { .. }
            | FaultKind::LinkDrop { .. }
            | FaultKind::RouterStuck { .. } => {}
        }
    }

    /// Quarantine recovery (armed via [`SocBuilder::auto_recover`]): a
    /// quarantined LCF rebuilds every protected region's integrity tree
    /// from the ciphertext currently in memory — and re-keys the regions
    /// when configured — so residual fault damage to the tree state does
    /// not outlive the quarantine; a quarantined Local Firewall
    /// parity-scrubs its Configuration Memory.
    fn recover(&mut self, id: FirewallId) {
        let Some(policy) = self.auto_recover else {
            return;
        };
        for slot in &mut self.slaves {
            if let SlaveKind::Ddr {
                ddr,
                lcf: Some(lcf),
            } = &mut slot.kind
            {
                if lcf.firewall().id() != id {
                    continue;
                }
                let mut cycles = 0u64;
                for region in lcf.region_configs() {
                    if region.protection == Protection::None {
                        continue;
                    }
                    if let Ok(c) = lcf.rebuild_region(ddr, region.base) {
                        cycles += c;
                    }
                    if policy.rekey {
                        let mut key = [0u8; 16];
                        key[..8].copy_from_slice(&self.recovery_rng.next_u64().to_le_bytes());
                        key[8..].copy_from_slice(&self.recovery_rng.next_u64().to_le_bytes());
                        if let Ok(c) = lcf.rekey(ddr, region.base, key) {
                            cycles += c;
                        }
                    }
                }
                self.stats.incr("soc.recoveries");
                self.stats.add("soc.recovery_cycles", cycles);
                if let Some(t) = &self.tracer {
                    t.record(
                        self.now,
                        TraceEvent::Recovery {
                            firewall: id.0,
                            cycles,
                        },
                    );
                }
                return;
            }
        }
        for slot in &mut self.masters {
            if let Some(fw) = slot.firewall.as_mut().filter(|f| f.id() == id) {
                let repaired = fw.config_mut().scrub();
                // Recovery reloads the IP from its golden image, so any
                // tainted data it held is gone with the reset.
                if let Some(te) = self.taint.as_mut() {
                    te.scrub_master(usize::from(slot.bus_id.0));
                }
                self.stats.incr("soc.recoveries");
                self.stats.add("soc.recovery_scrubs", repaired as u64);
                if let Some(t) = &self.tracer {
                    t.record(
                        self.now,
                        TraceEvent::Recovery {
                            firewall: id.0,
                            cycles: 0,
                        },
                    );
                }
                return;
            }
        }
        for slot in &mut self.slaves {
            if let Some(fw) = slot.firewall.as_mut().filter(|f| f.id() == id) {
                let repaired = fw.config_mut().scrub();
                self.stats.incr("soc.recoveries");
                self.stats.add("soc.recovery_scrubs", repaired as u64);
                if let Some(t) = &self.tracer {
                    t.record(
                        self.now,
                        TraceEvent::Recovery {
                            firewall: id.0,
                            cycles: 0,
                        },
                    );
                }
                return;
            }
        }
    }

    fn service(slot: &mut SlaveSlot, txn: &Transaction, now: Cycle) -> (u64, Response) {
        // Slave-side firewall: checked before reaching the IP's memory.
        if let Some(fw) = slot.firewall.as_mut() {
            let decision = fw.check(txn, now);
            if !decision.allowed {
                return (
                    now.get() + decision.latency,
                    Response {
                        txn: txn.id,
                        data: 0,
                        result: Err(BusError::Discarded),
                        completed_at: now,
                    },
                );
            }
        }
        match &mut slot.kind {
            SlaveKind::Bram(bram) => {
                let offset = txn.addr - slot.base;
                let latency = bram.latency(offset, txn.op == Op::Write);
                let (data, result) = match txn.op {
                    Op::Read => match bram.read(offset, txn.width) {
                        Ok(v) => (v, Ok(())),
                        Err(_) => (0, Err(BusError::Slave)),
                    },
                    Op::Write => match bram.write(offset, txn.width, txn.data) {
                        Ok(()) => (0, Ok(())),
                        Err(_) => (0, Err(BusError::Slave)),
                    },
                };
                (
                    now.get() + latency,
                    Response {
                        txn: txn.id,
                        data,
                        result,
                        completed_at: now,
                    },
                )
            }
            SlaveKind::Ddr {
                ddr,
                lcf: Some(lcf),
            } => match lcf.handle(ddr, txn, now) {
                Ok(access) => (
                    now.get() + access.latency,
                    Response {
                        txn: txn.id,
                        data: access.data,
                        result: Ok(()),
                        completed_at: now,
                    },
                ),
                Err((violation, latency)) => {
                    let err = match violation {
                        secbus_core::Violation::IntegrityMismatch => BusError::IntegrityViolation,
                        _ => BusError::Discarded,
                    };
                    (
                        now.get() + latency,
                        Response {
                            txn: txn.id,
                            data: 0,
                            result: Err(err),
                            completed_at: now,
                        },
                    )
                }
            },
            SlaveKind::Ddr { ddr, lcf: None } => {
                let offset = txn.addr - slot.base;
                let latency = ddr.latency(offset, txn.op == Op::Write);
                let (data, result) = match txn.op {
                    Op::Read => match ddr.read(offset, txn.width) {
                        Ok(v) => (v, Ok(())),
                        Err(_) => (0, Err(BusError::Slave)),
                    },
                    Op::Write => match ddr.write(offset, txn.width, txn.data) {
                        Ok(()) => (0, Ok(())),
                        Err(_) => (0, Err(BusError::Slave)),
                    },
                };
                (
                    now.get() + latency,
                    Response {
                        txn: txn.id,
                        data,
                        result,
                        completed_at: now,
                    },
                )
            }
        }
    }

    fn block_firewall(&mut self, id: FirewallId) {
        for slot in &mut self.masters {
            if let Some(fw) = slot.firewall.as_mut().filter(|f| f.id() == id) {
                fw.block();
                return;
            }
        }
        for slot in &mut self.slaves {
            if let Some(fw) = slot.firewall.as_mut().filter(|f| f.id() == id) {
                fw.block();
                return;
            }
            if let SlaveKind::Ddr { lcf: Some(lcf), .. } = &mut slot.kind {
                if lcf.firewall().id() == id {
                    lcf.firewall_mut().block();
                    return;
                }
            }
        }
    }

    fn unblock_firewall(&mut self, id: FirewallId) {
        for slot in &mut self.masters {
            if let Some(fw) = slot.firewall.as_mut().filter(|f| f.id() == id) {
                fw.unblock();
                self.stats.incr("soc.quarantine_releases");
                return;
            }
        }
        for slot in &mut self.slaves {
            if let Some(fw) = slot.firewall.as_mut().filter(|f| f.id() == id) {
                fw.unblock();
                self.stats.incr("soc.quarantine_releases");
                return;
            }
            if let SlaveKind::Ddr { lcf: Some(lcf), .. } = &mut slot.kind {
                if lcf.firewall().id() == id {
                    lcf.firewall_mut().unblock();
                    self.stats.incr("soc.quarantine_releases");
                    return;
                }
            }
        }
    }

    fn apply_update(&mut self, update: PolicyUpdate) {
        let target = update.firewall;
        for slot in &mut self.masters {
            if let Some(fw) = slot.firewall.as_mut().filter(|f| f.id() == target) {
                let _ = self.reconfig.apply_to(fw, update);
                return;
            }
        }
        for slot in &mut self.slaves {
            if let Some(fw) = slot.firewall.as_mut().filter(|f| f.id() == target) {
                let _ = self.reconfig.apply_to(fw, update);
                return;
            }
            if let SlaveKind::Ddr { lcf: Some(lcf), .. } = &mut slot.kind {
                if lcf.firewall().id() == target {
                    let _ = self.reconfig.apply_to(lcf.firewall_mut(), update);
                    return;
                }
            }
        }
    }

    /// Run `cycles` cycles.
    pub fn run(&mut self, cycles: u64) {
        let end = self.now + cycles;
        match self.core {
            SimCore::Stepped => {
                while self.now < end {
                    self.tick();
                }
            }
            SimCore::Event => {
                while self.now < end {
                    self.tick();
                    self.fast_forward_idle(end);
                }
            }
        }
    }

    /// Run until every master reports halted, or `max_cycles` elapse.
    /// Returns the cycle count actually simulated.
    pub fn run_until_halt(&mut self, max_cycles: u64) -> u64 {
        let start = self.now;
        let end = start + max_cycles;
        while self.now < end {
            if self.halted_masters == self.masters.len() {
                break;
            }
            self.tick();
            // Don't fast-forward past the halt check: once the last
            // master halts, the stepped loop stops on the next
            // iteration, and the event core must report the same cycle.
            if self.core == SimCore::Event && self.halted_masters != self.masters.len() {
                self.fast_forward_idle(end);
            }
        }
        self.now.get() - start.get()
    }

    /// Which core drives [`Soc::run`] / [`Soc::run_until_halt`].
    pub fn sim_core(&self) -> SimCore {
        self.core
    }

    /// Override the run-loop core (defaults to `SECBUS_SIM_CORE` /
    /// event-driven). Benches and the equivalence tests force both
    /// cores explicitly instead of mutating the process environment.
    pub fn set_sim_core(&mut self, core: SimCore) {
        self.core = core;
    }

    /// Ticks actually executed so far — on the stepped core equal to
    /// the simulated cycle count, on the event core the number of
    /// *events* (non-skipped cycles). Not part of the metrics snapshot.
    pub fn ticks_executed(&self) -> u64 {
        self.ticks_executed
    }

    /// Event-driven fast-forward: when every component's next tick is
    /// provably a state no-op until some future cycle, jump `now`
    /// there, bulk-accounting exactly what the skipped stepped ticks
    /// would have accounted (`soc.cycles`, residual `bus.busy_cycles`,
    /// hysteresis dwell counters). Never jumps past `end`, a scheduled
    /// fault/watchdog/release/epoch/degrade cycle, or any cycle where
    /// a component could act — those all schedule wake events.
    fn fast_forward_idle(&mut self, end: Cycle) {
        if self.now >= end {
            return;
        }
        if self.powered_off {
            // Dead time: stepped ticks only advance the clock (no
            // accounting at all), so the jump is exact.
            self.now = end;
            return;
        }
        let Some(target) = self.next_wake_cycle(end) else {
            return;
        };
        let skipped = target.get() - self.now.get();
        if skipped == 0 {
            return;
        }
        self.bus.fast_forward(self.now, target);
        if let Some(hys) = self.degrade.as_mut() {
            let pressure = self.bus.total_pending_requests() as u64;
            hys.advance(pressure, skipped);
        }
        self.stats.add("soc.cycles", skipped);
        self.now = target;
    }

    /// Allocation-free pre-check: could ticking at `self.now + 1` change
    /// state *immediately*? Runs after every tick on the event core, so
    /// the saturated case (some component always busy) must bail out
    /// here without touching the heap — the wheel pass in
    /// [`Soc::next_wake_cycle`] only runs when a skip is possible.
    fn is_quiescent(&self) -> bool {
        let now = self.now;
        // Undelivered responses or unaudited orphans force a real tick.
        if self.bus.has_queued_responses() || self.bus.has_orphans() {
            return false;
        }
        if self.faults.next_due().is_some_and(|at| at <= now) {
            return false;
        }
        if self
            .monitor
            .next_watchdog_deadline()
            .is_some_and(|at| at <= now)
        {
            return false;
        }
        for slot in &self.masters {
            if let Some(&(ready_at, _)) = slot.inbound.front() {
                if ready_at <= now.get() {
                    return false;
                }
            }
            // Alert queues are empty between ticks; verify, don't assume.
            if slot
                .firewall
                .as_ref()
                .is_some_and(|f| f.has_pending_alerts())
            {
                return false;
            }
            let Some(device) = slot.device.as_deref() else {
                return false;
            };
            match device.next_wake(now) {
                Wake::Now => return false,
                Wake::At(at) => {
                    if at <= now {
                        return false;
                    }
                }
                // Pure while its response queue is empty.
                Wake::Waiting => {
                    if !slot.ready.is_empty() {
                        return false;
                    }
                }
                // Terminally quiescent; undelivered responses are dead
                // letters under both cores.
                Wake::Never => {}
            }
        }
        if matches!(self.bus.quiescence(now), BusQuiet::Active) {
            return false;
        }
        for slot in &self.slaves {
            match slot.pending {
                Some((completes_at, _)) => {
                    if completes_at <= now.get() {
                        return false;
                    }
                }
                None => {
                    if self.bus.slave_peek(slot.bus_id).is_some() {
                        return false;
                    }
                }
            }
            if slot
                .firewall
                .as_ref()
                .is_some_and(|f| f.has_pending_alerts())
            {
                return false;
            }
            if let SlaveKind::Ddr { ddr, lcf } = &slot.kind {
                if let Some(lcf) = lcf {
                    if lcf.has_pending_alerts() || lcf.crashed() {
                        return false;
                    }
                }
                if ddr.torn_stores() > self.torn_seen {
                    return false;
                }
            }
        }
        if self.releases.iter().any(|&(at, _)| at <= now.get()) {
            return false;
        }
        if let Some(hys) = &self.degrade {
            let pressure = self.bus.total_pending_requests() as u64;
            if hys
                .next_transition(pressure, now.get())
                .is_some_and(|at| at <= now.get())
            {
                return false;
            }
        }
        if self.reconfig.next_ready().is_some_and(|at| at <= now) {
            return false;
        }
        true
    }

    /// The earliest cycle at which ticking could change state, found by
    /// scheduling every component's declared wake into a timing wheel
    /// whose pop order is the canonical (cycle, component-id, seq)
    /// order — component ids are assigned in `Soc::tick` polling order.
    /// Returns `None` when some component could act *this* cycle (the
    /// fabric is not idle; no skip).
    fn next_wake_cycle(&self, end: Cycle) -> Option<Cycle> {
        if !self.is_quiescent() {
            return None;
        }
        let now = self.now;
        // The fabric is provably idle this cycle: every wake below is
        // strictly in the future ([`Soc::is_quiescent`] checked), so the
        // wheel only decides *which* future cycle comes first.
        let mut wheel = TimingWheel::new(now);
        let mut component: u32 = 0;
        // Tick step 0: scheduled environment faults.
        if let Some(at) = self.faults.next_due() {
            wheel.schedule(at, component);
        }
        component += 1;
        // Tick step 1b: watchdog expiry deadlines.
        if let Some(at) = self.monitor.next_watchdog_deadline() {
            wheel.schedule(at, component);
        }
        component += 1;
        // Tick steps 2–3 per master: inbound maturation and the device
        // itself, via the `Wake` purity contract.
        for slot in &self.masters {
            if let Some(&(ready_at, _)) = slot.inbound.front() {
                wheel.schedule(Cycle(ready_at), component);
            }
            if let Some(device) = slot.device.as_deref() {
                if let Wake::At(at) = device.next_wake(now) {
                    wheel.schedule(at, component);
                }
            }
            component += 1;
        }
        // Tick step 4: the bus.
        if let BusQuiet::Until(at) = self.bus.quiescence(now) {
            wheel.schedule(at, component);
        }
        component += 1;
        // Tick step 5 per slave: in-service completions.
        for slot in &self.slaves {
            if let Some((completes_at, _)) = slot.pending {
                wheel.schedule(Cycle(completes_at), component);
            }
            component += 1;
        }
        // Tick step 6b: quarantine releases.
        if let Some(at) = self.releases.iter().map(|&(at, _)| at).min() {
            wheel.schedule(Cycle(at), component);
        }
        component += 1;
        // Tick step 6c: degrade hysteresis. Pressure is constant across
        // a skipped span (nothing issues, grants or completes), so the
        // next transition at constant pressure is exact.
        if let Some(hys) = &self.degrade {
            let pressure = self.bus.total_pending_requests() as u64;
            if let Some(at) = hys.next_transition(pressure, now.get()) {
                wheel.schedule(Cycle(at), component);
            }
        }
        component += 1;
        // Tick step 7: matured reconfigurations.
        if let Some(at) = self.reconfig.next_ready() {
            wheel.schedule(at, component);
        }
        component += 1;
        // The run horizon caps every jump.
        wheel.schedule(end, component);
        let target = wheel.pop_next().map_or(end, |k| k.at);
        (target > now).then_some(target)
    }

    /// Attach (replacing any previous plan) the fault plan whose events
    /// fire at the top of each matching cycle. Attaching the same plan to
    /// the same system always replays the same faults — chaos runs stay
    /// seed-reproducible.
    pub fn attach_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// Faults still scheduled to fire.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// The merged stats of every firewall in the system — the Local
    /// Firewalls, the LCF's embedded firewall and the LCF's crypto-side
    /// counters — for fleet-wide metrics (parity repairs, integrity
    /// failures, tree rebuilds, …).
    pub fn firewall_stats(&self) -> Stats {
        let mut merged = Stats::new();
        for slot in &self.masters {
            if let Some(fw) = &slot.firewall {
                merged.merge(fw.stats());
            }
        }
        for slot in &self.slaves {
            if let Some(fw) = &slot.firewall {
                merged.merge(fw.stats());
            }
            if let SlaveKind::Ddr { lcf: Some(lcf), .. } = &slot.kind {
                merged.merge(lcf.firewall().stats());
                merged.merge(lcf.stats());
            }
        }
        merged
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The system clock.
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// Whether firewalls were instantiated.
    pub fn security_enabled(&self) -> bool {
        self.security
    }

    /// The shared bus (trace, stats, address map).
    pub fn bus(&self) -> &SharedBus {
        &self.bus
    }

    /// The security monitor (alert log and counters).
    pub fn monitor(&self) -> &SecurityMonitor {
        &self.monitor
    }

    /// Number of masters.
    pub fn master_count(&self) -> usize {
        self.masters.len()
    }

    /// A master device, for label/stats/halted inspection.
    pub fn master_device(&self, idx: usize) -> &dyn BusMaster {
        self.masters[idx].device.as_deref().expect("device present")
    }

    /// Downcast a master device to its concrete type.
    pub fn master_as<T: 'static>(&self, idx: usize) -> Option<&T> {
        self.master_device(idx).as_any().downcast_ref::<T>()
    }

    /// The firewall id guarding master `idx`, if protected.
    pub fn master_firewall_id(&self, idx: usize) -> Option<FirewallId> {
        self.masters[idx].firewall.as_ref().map(|f| f.id())
    }

    /// The firewall guarding master `idx`, if protected.
    pub fn master_firewall(&self, idx: usize) -> Option<&LocalFirewall> {
        self.masters[idx].firewall.as_ref()
    }

    /// The LCF, if the DDR is protected.
    pub fn lcf(&self) -> Option<&LocalCipheringFirewall> {
        self.slaves.iter().find_map(|s| match &s.kind {
            SlaveKind::Ddr { lcf, .. } => lcf.as_deref(),
            _ => None,
        })
    }

    /// The crypto backend the LCF's Confidentiality Core runs on, when
    /// a DDR-protecting LCF exists. Identity only — never part of the
    /// metrics snapshot, so reports stay byte-identical across backends
    /// (see `LocalCipheringFirewall::cc_backend`).
    pub fn cc_backend(&self) -> Option<secbus_crypto::CryptoBackend> {
        self.lcf().map(LocalCipheringFirewall::cc_backend)
    }

    /// Raw access to the external DDR — the adversary's physical surface.
    /// (`None` if the system has no DDR.)
    pub fn ddr_mut(&mut self) -> Option<&mut ExternalDdr> {
        self.slaves.iter_mut().find_map(|s| match &mut s.kind {
            SlaveKind::Ddr { ddr, .. } => Some(ddr.as_mut()),
            _ => None,
        })
    }

    /// Read-only access to the external DDR.
    pub fn ddr(&self) -> Option<&ExternalDdr> {
        self.slaves.iter().find_map(|s| match &s.kind {
            SlaveKind::Ddr { ddr, .. } => Some(ddr.as_ref()),
            _ => None,
        })
    }

    /// Read the shared BRAM contents (first BRAM slave), for assertions.
    pub fn bram_contents(&self) -> Option<&[u8]> {
        self.slaves.iter().find_map(|s| match &s.kind {
            SlaveKind::Bram(b) => Some(b.contents()),
            _ => None,
        })
    }

    /// Stage a policy reconfiguration; returns when it will apply.
    pub fn schedule_reconfig(&mut self, update: PolicyUpdate) -> Cycle {
        self.reconfig.schedule(update, self.now)
    }

    /// Atomically swap several firewalls' policy tables in one versioned
    /// epoch: every staged table is validated first, and either all of
    /// them take effect or none does (the `Err` names the offender).
    ///
    /// The attempt is visible on the trace spine: `EpochPrepare` when the
    /// batch enters validation, then exactly one of `EpochCommit` /
    /// `EpochAbort` (the abort carries the refusal reason).
    pub fn commit_policy_epoch(&mut self, updates: Vec<PolicyUpdate>) -> Result<u64, EpochError> {
        let attempt = self.reconfig.epoch() + 1;
        let staged = updates.len().min(usize::from(u8::MAX)) as u8;
        if let Some(t) = &self.tracer {
            t.record(
                self.now,
                TraceEvent::EpochPrepare {
                    epoch: attempt,
                    updates: staged,
                },
            );
        }
        let mut fws: Vec<&mut LocalFirewall> = Vec::new();
        for slot in &mut self.masters {
            if let Some(fw) = slot.firewall.as_mut() {
                fws.push(fw);
            }
        }
        for slot in &mut self.slaves {
            if let Some(fw) = slot.firewall.as_mut() {
                fws.push(fw);
            }
            if let SlaveKind::Ddr { lcf: Some(lcf), .. } = &mut slot.kind {
                fws.push(lcf.firewall_mut());
            }
        }
        let result = self.reconfig.commit_epoch(&mut fws, updates);
        if let Some(t) = &self.tracer {
            match &result {
                Ok(epoch) => t.record(
                    self.now,
                    TraceEvent::EpochCommit {
                        epoch: *epoch,
                        updates: staged,
                    },
                ),
                Err(e) => t.record(
                    self.now,
                    TraceEvent::EpochAbort {
                        epoch: attempt,
                        reason: e.reason(),
                    },
                ),
            }
        }
        result
    }

    /// Verifier-gated epoch admission: the staged tables are exhaustively
    /// checked against `program`'s intent *before* any firewall sees
    /// them. `targets` maps each DSL master index to the firewall its
    /// table is staged for; every update's firewall must appear in it. A
    /// verification failure refuses the whole epoch fail-secure
    /// ([`EpochError::Verifier`] wraps the concrete counterexample) and
    /// counts `reconfig.verifier_refusals` — a bad epoch is a refused
    /// epoch, never a staged one.
    pub fn commit_policy_epoch_checked(
        &mut self,
        program: &PolicyProgram,
        targets: &[(u8, FirewallId)],
        updates: Vec<PolicyUpdate>,
    ) -> Result<u64, EpochError> {
        let mut views: Vec<(u8, &[SecurityPolicy])> = Vec::with_capacity(updates.len());
        for update in &updates {
            match targets.iter().find(|(_, fw)| *fw == update.firewall) {
                Some(&(master, _)) => views.push((master, update.policies.as_slice())),
                None => {
                    self.stats.incr("reconfig.verifier_refusals");
                    if let Some(t) = &self.tracer {
                        t.record(
                            self.now,
                            TraceEvent::EpochAbort {
                                epoch: self.reconfig.epoch() + 1,
                                reason: "verifier",
                            },
                        );
                    }
                    return Err(EpochError::UnknownFirewall(update.firewall));
                }
            }
        }
        if let Err(e) = verify(program, &views) {
            self.stats.incr("reconfig.verifier_refusals");
            if let Some(t) = &self.tracer {
                t.record(
                    self.now,
                    TraceEvent::EpochAbort {
                        epoch: self.reconfig.epoch() + 1,
                        reason: "verifier",
                    },
                );
            }
            return Err(EpochError::Verifier(e));
        }
        self.commit_policy_epoch(updates)
    }

    /// Compile `program` and commit the result as one verifier-gated
    /// epoch. `targets` maps DSL master indices to firewalls; masters
    /// without a mapping are an [`EpochError::UnknownFirewall`] refusal.
    pub fn commit_policy_epoch_from(
        &mut self,
        program: &PolicyProgram,
        targets: &[(u8, FirewallId)],
    ) -> Result<u64, EpochError> {
        let compiled = program.compile().map_err(|_| {
            // A program that parses always compiles today; keep the seam
            // total anyway.
            EpochError::Verifier(secbus_core::PolicyVerifyError::MissingTable {
                master: String::new(),
                index: 0,
            })
        })?;
        let mut updates = Vec::with_capacity(compiled.tables.len());
        for table in &compiled.tables {
            let Some(&(_, fw)) = targets.iter().find(|(m, _)| *m == table.master) else {
                self.stats.incr("reconfig.verifier_refusals");
                return Err(EpochError::UnknownFirewall(FirewallId(table.master)));
            };
            updates.push(PolicyUpdate {
                firewall: fw,
                policies: table.policies.clone(),
            });
        }
        self.commit_policy_epoch_checked(program, targets, updates)
    }

    /// Like [`Soc::commit_policy_epoch`], but attributed to the master
    /// (by index) driving the commit — in the case study the runtime
    /// reconfiguration path is software on one of the CPUs. When taint
    /// tracking is armed and that master carries a taint tag, the commit
    /// is refused before validation even starts: the policy configuration
    /// path is a DIFT sink, and tainted data must never decide what the
    /// firewalls enforce. The refusal raises [`Violation::TaintedSink`]
    /// through the initiator's own firewall so the monitor sees it.
    pub fn commit_policy_epoch_as(
        &mut self,
        initiator: usize,
        updates: Vec<PolicyUpdate>,
    ) -> Result<u64, EpochError> {
        let tainted = self
            .taint
            .as_ref()
            .is_some_and(|te| te.master_tag(initiator).is_tainted());
        if tainted {
            let now = self.now;
            self.stats.incr("soc.taint.config_sink_refusals");
            self.stats.incr("reconfig.tainted_refusals");
            let slot = &mut self.masters[initiator];
            let master = slot.bus_id;
            let fw_id = slot
                .firewall
                .as_ref()
                .map(|f| f.id())
                .unwrap_or(FirewallId(u8::MAX));
            if let Some(fw) = slot.firewall.as_mut() {
                let probe = Transaction {
                    id: TxnId(0),
                    master,
                    op: Op::Write,
                    addr: 0,
                    width: Width::Word,
                    data: 0,
                    burst: 1,
                    issued_at: now,
                };
                fw.raise_alert(&probe, Violation::TaintedSink, now);
            }
            if let Some(t) = &self.tracer {
                t.record(
                    now,
                    TraceEvent::TaintSink {
                        txn: 0,
                        master: master.0,
                        addr: 0,
                        blocked: true,
                    },
                );
                t.record(
                    now,
                    TraceEvent::EpochAbort {
                        epoch: self.reconfig.epoch() + 1,
                        reason: "tainted_initiator",
                    },
                );
            }
            return Err(EpochError::TaintedInitiator(fw_id));
        }
        self.commit_policy_epoch(updates)
    }

    /// The DIFT taint state, when armed via [`SocBuilder::taint_tracking`].
    pub fn taint(&self) -> Option<&TaintEngine> {
        self.taint.as_ref()
    }

    /// The policy epoch currently in force.
    pub fn policy_epoch(&self) -> u64 {
        self.reconfig.epoch()
    }

    /// The epoch in which `fw`'s table was last swapped (0 if never) —
    /// after any commit attempt, every firewall the epoch targeted must
    /// report the same value or the fleet is straddling two postures.
    pub fn firewall_epoch(&self, fw: FirewallId) -> u64 {
        self.reconfig.firewall_epoch(fw)
    }

    /// Reconfiguration statistics (scheduled/applied/committed/aborted).
    pub fn reconfig_stats(&self) -> &Stats {
        self.reconfig.stats()
    }

    /// Whether a power cut (scheduled or torn-store-induced) has taken
    /// the system down. A powered-off SoC only counts wall-clock cycles.
    pub fn powered_off(&self) -> bool {
        self.powered_off
    }

    /// Capture the full secure state for a later deterministic resume:
    /// fold the journal into a fresh checkpoint, then hand out the
    /// persisted surface + monotonic counter + policy epoch. `None` when
    /// the LCF is absent or not journaled — there is nothing durable to
    /// capture.
    pub fn checkpoint(&mut self) -> Option<SecureCheckpoint> {
        let epoch = self.reconfig.epoch();
        for slot in &mut self.slaves {
            if let SlaveKind::Ddr { lcf: Some(lcf), .. } = &mut slot.kind {
                if !lcf.journal_enabled() {
                    return None;
                }
                if !self.powered_off {
                    lcf.force_checkpoint();
                }
                return Some(SecureCheckpoint {
                    state: lcf.persistent_state()?,
                    counter: lcf.anti_rollback_counter()?.clone(),
                    policy_epoch: epoch,
                });
            }
        }
        None
    }

    /// What boot-time recovery did (present only on a
    /// [`SocBuilder::resume_from`] boot).
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Descriptions of every slave: (label, base address, protected?).
    pub fn slave_summary(&self) -> Vec<(String, u32, bool)> {
        self.slaves
            .iter()
            .map(|s| {
                let protected =
                    s.firewall.is_some() || matches!(&s.kind, SlaveKind::Ddr { lcf: Some(_), .. });
                (s.label.clone(), s.base, protected)
            })
            .collect()
    }

    /// Whether the overload brownout posture is currently engaged.
    pub fn degraded(&self) -> bool {
        self.degrade.as_ref().is_some_and(Hysteresis::active)
    }

    /// System-level statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The observability spine's tracer, when armed via
    /// [`SocBuilder::trace`].
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Chrome `trace_event` JSON of the retained trace window (load with
    /// `chrome://tracing` or Perfetto). `None` when tracing is off.
    pub fn chrome_trace(&self) -> Option<Json> {
        self.tracer.as_ref().map(|t| t.chrome_trace())
    }

    /// One hierarchical snapshot of every component's counters and
    /// histograms: the SoC's own lifecycle stats, the bus, the monitor,
    /// every Local Firewall (keyed by its label), the LCF (its embedded
    /// firewall merged with its crypto/journal counters) and — when
    /// tracing is armed — the trace buffer's own accounting. Rendering
    /// is key-sorted and byte-identical for identical simulations.
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        let mut registry = MetricsRegistry::new();
        registry.insert("soc", &self.stats);
        registry.insert("bus", self.bus.stats());
        registry.insert("monitor", self.monitor.stats());
        registry.insert("reconfig", self.reconfig.stats());
        for slot in &self.masters {
            if let Some(fw) = &slot.firewall {
                registry.insert(fw.label(), fw.stats());
            }
        }
        for slot in &self.slaves {
            if let Some(fw) = &slot.firewall {
                registry.insert(fw.label(), fw.stats());
            }
            if let SlaveKind::Ddr { lcf: Some(lcf), .. } = &slot.kind {
                registry.insert(lcf.firewall().label(), lcf.firewall().stats());
                registry.insert(lcf.firewall().label(), lcf.stats());
            }
        }
        if let Some(t) = &self.tracer {
            let mut trace = Stats::new();
            trace.add("trace.dropped", t.dropped());
            trace.add("trace.retained", t.len() as u64);
            trace.add("trace.total", t.total());
            registry.insert("trace", &trace);
        }
        registry
    }

    /// Compact key-sorted JSON rendering of [`Soc::metrics_snapshot`].
    pub fn metrics_json(&self) -> String {
        self.metrics_snapshot().render()
    }

    /// Take a security audit snapshot (per-firewall counters + the
    /// monitor's retained alert trail).
    pub fn audit(&self) -> crate::report::AuditReport {
        let mut firewalls = Vec::new();
        let mut push_fw = |fw: &LocalFirewall| {
            firewalls.push(crate::report::FirewallAudit {
                label: fw.label().to_owned(),
                id: fw.id().0,
                checked: fw.stats().counter("fw.checked"),
                passed: fw.stats().counter("fw.passed"),
                discarded: fw.stats().counter("fw.discarded"),
                blocked: fw.is_blocked(),
                generation: fw.config().generation(),
                policies: fw.config().len(),
            });
        };
        for slot in &self.masters {
            if let Some(fw) = slot.firewall.as_ref() {
                push_fw(fw);
            }
        }
        for slot in &self.slaves {
            if let Some(fw) = slot.firewall.as_ref() {
                push_fw(fw);
            }
            if let SlaveKind::Ddr { lcf: Some(lcf), .. } = &slot.kind {
                push_fw(lcf.firewall());
            }
        }
        let trail = self
            .monitor
            .log()
            .iter()
            .map(|(cycle, a)| crate::report::AlertLine {
                cycle: cycle.get(),
                firewall: a.firewall.0,
                violation: a.violation.mnemonic().to_owned(),
                addr: a.txn.addr,
                op: a.txn.op.to_string(),
            })
            .collect();
        crate::report::AuditReport {
            now: self.now.get(),
            alerts: self.monitor.alert_count(),
            blocks: self.monitor.stats().counter("monitor.blocks"),
            firewalls,
            trail,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secbus_core::{AdfSet, Rwa, SecurityPolicy};
    use secbus_cpu::{assemble, Mb32Core, StreamIp};

    const BRAM_BASE: u32 = 0x2000_0000;

    fn rw_policy(spi: u16, base: u32, len: u32) -> SecurityPolicy {
        SecurityPolicy::internal(spi, AddrRange::new(base, len), Rwa::ReadWrite, AdfSet::ALL)
    }

    fn small_soc(policies: Option<Vec<SecurityPolicy>>, program: &str) -> Soc {
        let program = assemble(program).unwrap();
        let core = Mb32Core::with_local_program("cpu0", 0, program);
        let mut b = SocBuilder::new().add_bram(
            "bram",
            AddrRange::new(BRAM_BASE, 0x1000),
            Bram::new(0x1000),
            None,
        );
        b = match policies {
            Some(p) => {
                b.add_protected_master(Box::new(core), ConfigMemory::with_policies(p).unwrap())
            }
            None => b.add_master(Box::new(core)),
        };
        b.build()
    }

    #[test]
    fn unprotected_program_runs_to_halt() {
        let mut soc = small_soc(
            None,
            r"
            li  r1, 0x20000000
            addi r2, r0, 42
            sw  r2, 0(r1)
            lw  r3, 0(r1)
            halt
            ",
        );
        let cycles = soc.run_until_halt(10_000);
        assert!(cycles < 200, "took {cycles}");
        let core = soc.master_as::<Mb32Core>(0).unwrap();
        assert_eq!(core.reg(secbus_cpu::Reg(3)), 42);
        assert_eq!(soc.bram_contents().unwrap()[0], 42);
    }

    #[test]
    fn protected_program_runs_with_added_latency() {
        let src = r"
            li  r1, 0x20000000
            addi r2, r0, 42
            sw  r2, 0(r1)
            lw  r3, 0(r1)
            halt
        ";
        let mut plain = small_soc(None, src);
        let base_cycles = plain.run_until_halt(10_000);

        let mut protected = small_soc(Some(vec![rw_policy(1, BRAM_BASE, 0x1000)]), src);
        let prot_cycles = protected.run_until_halt(10_000);

        let core = protected.master_as::<Mb32Core>(0).unwrap();
        assert_eq!(core.reg(secbus_cpu::Reg(3)), 42, "functionally identical");
        assert!(
            prot_cycles > base_cycles,
            "checking must cost cycles: {prot_cycles} vs {base_cycles}"
        );
        // One checked write + one checked read = 2 × 12 cycles of added
        // latency, serialised with everything else.
        assert!(
            prot_cycles - base_cycles >= 20,
            "delta {}",
            prot_cycles - base_cycles
        );
    }

    #[test]
    fn violating_write_never_reaches_the_bus() {
        // Policy covers only the first 16 bytes; program writes outside.
        let mut soc = small_soc(
            Some(vec![rw_policy(1, BRAM_BASE, 16)]),
            r"
            li  r1, 0x20000000
            addi r2, r0, 7
            sw  r2, 0(r1)     ; allowed
            sw  r2, 64(r1)    ; out of policy -> discarded at the interface
            halt
            ",
        );
        soc.run_until_halt(10_000);
        // The violating write is NOT in the bus trace (containment).
        let writes: Vec<u32> = soc
            .bus()
            .trace()
            .iter()
            .filter(|(_, t)| t.op == Op::Write)
            .map(|(_, t)| t.addr)
            .collect();
        assert_eq!(
            writes,
            vec![BRAM_BASE],
            "only the allowed write was granted"
        );
        // The BRAM was not modified at the forbidden offset.
        assert_eq!(soc.bram_contents().unwrap()[64], 0);
        // And the alert reached the monitor.
        assert_eq!(soc.monitor().alert_count(), 1);
        // The infected core kept running to halt (local containment).
        assert!(soc.master_device(0).halted());
    }

    #[test]
    fn violating_read_is_discarded_before_the_ip() {
        let mut soc = small_soc(
            Some(vec![SecurityPolicy::internal(
                1,
                AddrRange::new(BRAM_BASE, 0x1000),
                Rwa::WriteOnly, // reads forbidden
                AdfSet::ALL,
            )]),
            r"
            li  r1, 0x20000000
            addi r2, r0, 9
            sw  r2, 0(r1)
            lw  r3, 0(r1)   ; read violates RWA -> data never reaches the IP
            halt
            ",
        );
        soc.run_until_halt(10_000);
        let core = soc.master_as::<Mb32Core>(0).unwrap();
        assert_eq!(core.reg(secbus_cpu::Reg(3)), 0, "read data was discarded");
        assert_eq!(core.stats().counter("core.access_errors"), 1);
        assert_eq!(soc.monitor().alert_count(), 1);
    }

    #[test]
    fn monitor_threshold_blocks_repeat_offender() {
        let program = r"
            li  r1, 0x20000000
            addi r2, r0, 1
        loop:
            sw  r2, 256(r1)   ; always violating
            addi r2, r2, 1
            blt r2, r3, loop
            halt
        ";
        let words = assemble(program).unwrap();
        let mut core = Mb32Core::with_local_program("cpu0", 0, words);
        core.set_reg(secbus_cpu::Reg(3), 10);
        let mut soc = SocBuilder::new()
            .monitor_threshold(3)
            .add_protected_master(
                Box::new(core),
                ConfigMemory::with_policies(vec![rw_policy(1, BRAM_BASE, 16)]).unwrap(),
            )
            .add_bram(
                "bram",
                AddrRange::new(BRAM_BASE, 0x1000),
                Bram::new(0x1000),
                None,
            )
            .build();
        soc.run_until_halt(20_000);
        assert!(soc.master_firewall(0).unwrap().is_blocked());
        assert!(soc.monitor().stats().counter("monitor.blocks") > 0);
    }

    #[test]
    fn quarantine_blocks_then_releases() {
        // A master violating forever: quarantined, released, re-quarantined.
        use secbus_cpu::{SyntheticConfig, SyntheticMaster};
        use secbus_sim::SimRng;
        let rogue = SyntheticMaster::new(
            "rogue",
            SyntheticConfig {
                windows: vec![(BRAM_BASE + 0x800, 0x100, 1)], // out of policy
                read_ratio: 0.0,
                widths: vec![secbus_bus::Width::Word],
                burst: 1,
                period: 4,
                total_ops: 0,
            },
            SimRng::new(1),
        );
        let mut soc = SocBuilder::new()
            .monitor_threshold(5)
            .quarantine(200)
            .add_protected_master(
                Box::new(rogue),
                ConfigMemory::with_policies(vec![rw_policy(1, BRAM_BASE, 16)]).unwrap(),
            )
            .add_bram(
                "bram",
                AddrRange::new(BRAM_BASE, 0x1000),
                Bram::new(0x1000),
                None,
            )
            .build();
        soc.run(10_000);
        // Multiple quarantine cycles must have happened: blocked more than
        // once, released more than once.
        assert!(soc.monitor().stats().counter("monitor.blocks") >= 2);
        assert!(soc.stats().counter("soc.quarantine_releases") >= 1);
    }

    #[test]
    fn without_security_ignores_policies() {
        let src = r"
            li  r1, 0x20000000
            addi r2, r0, 5
            sw  r2, 256(r1)
            halt
        ";
        let program = assemble(src).unwrap();
        let core = Mb32Core::with_local_program("cpu0", 0, program);
        let mut soc = SocBuilder::new()
            .without_security()
            .add_protected_master(
                Box::new(core),
                ConfigMemory::with_policies(vec![rw_policy(1, BRAM_BASE, 16)]).unwrap(),
            )
            .add_bram(
                "bram",
                AddrRange::new(BRAM_BASE, 0x1000),
                Bram::new(0x1000),
                None,
            )
            .build();
        soc.run_until_halt(10_000);
        assert!(!soc.security_enabled());
        assert_eq!(
            soc.bram_contents().unwrap()[256],
            5,
            "no firewall: write lands"
        );
        assert_eq!(soc.monitor().alert_count(), 0);
    }

    #[test]
    fn stream_ip_writes_through_its_firewall() {
        let fifo = BRAM_BASE + 0x100;
        let ip = StreamIp::new("ip0", fifo, 8, 4);
        let mut soc = SocBuilder::new()
            .add_protected_master(
                Box::new(ip),
                ConfigMemory::with_policies(vec![SecurityPolicy::internal(
                    1,
                    AddrRange::new(fifo, 16),
                    Rwa::WriteOnly,
                    AdfSet::WORD_ONLY,
                )])
                .unwrap(),
            )
            .add_bram(
                "bram",
                AddrRange::new(BRAM_BASE, 0x1000),
                Bram::new(0x1000),
                None,
            )
            .build();
        soc.run_until_halt(5_000);
        let ip = soc.master_as::<StreamIp>(0).unwrap();
        assert_eq!(ip.sent(), 4);
        assert_eq!(ip.stats().counter("stream.acked"), 4);
        // Last sample (3) landed in the fifo word.
        assert_eq!(soc.bram_contents().unwrap()[0x100], 3);
    }

    #[test]
    fn reconfiguration_applies_after_quiesce() {
        let src = r"
            li  r1, 0x20000000
        wait:
            lw  r2, 0(r1)
            beq r2, r0, wait  ; spin until a read succeeds (non-zero)
            halt
        ";
        // Policy initially forbids reads; after reconfig they succeed.
        let program = assemble(src).unwrap();
        let core = Mb32Core::with_local_program("cpu0", 0, program);
        let mut bram = Bram::new(0x1000);
        bram.load(0, &7u32.to_le_bytes());
        let mut soc = SocBuilder::new()
            .reconfig_latency(100)
            .add_protected_master(
                Box::new(core),
                ConfigMemory::with_policies(vec![SecurityPolicy::internal(
                    1,
                    AddrRange::new(BRAM_BASE, 0x1000),
                    Rwa::WriteOnly,
                    AdfSet::ALL,
                )])
                .unwrap(),
            )
            .add_bram("bram", AddrRange::new(BRAM_BASE, 0x1000), bram, None)
            .build();
        let fw_id = soc.master_firewall_id(0).unwrap();
        soc.run(50); // core spinning against denials
        assert!(soc.monitor().alert_count() > 0);
        soc.schedule_reconfig(PolicyUpdate {
            firewall: fw_id,
            policies: vec![rw_policy(2, BRAM_BASE, 0x1000)],
        });
        let cycles = soc.run_until_halt(20_000);
        assert!(cycles < 20_000, "core escaped the spin after reconfig");
        let core = soc.master_as::<Mb32Core>(0).unwrap();
        assert_eq!(core.reg(secbus_cpu::Reg(2)), 7);
    }

    const STORE_LOAD_SRC: &str = r"
        li  r1, 0x20000000
        addi r2, r0, 42
        sw  r2, 0(r1)
        lw  r3, 0(r1)
        halt
    ";

    fn store_load_soc(b: SocBuilder) -> Soc {
        let program = assemble(STORE_LOAD_SRC).unwrap();
        let core = Mb32Core::with_local_program("cpu0", 0, program);
        b.add_master(Box::new(core))
            .add_bram(
                "bram",
                AddrRange::new(BRAM_BASE, 0x1000),
                Bram::new(0x1000),
                None,
            )
            .build()
    }

    #[test]
    fn watchdog_unwedges_a_lost_grant() {
        use secbus_fault::{FaultEvent, FaultKind};
        let mut soc = store_load_soc(SocBuilder::new().watchdog(50));
        // The first grant the arbiter hands out vanishes (the core's sw):
        // without the watchdog the core would wait for its response
        // forever.
        soc.attach_fault_plan(FaultPlan::new(vec![FaultEvent {
            at: Cycle(1),
            kind: FaultKind::BusLoseGrant,
        }]));
        let cycles = soc.run_until_halt(10_000);
        assert!(cycles < 10_000, "watchdog must unwedge the core");
        assert_eq!(soc.stats().counter("soc.watchdog_cancels"), 1);
        let core = soc.master_as::<Mb32Core>(0).unwrap();
        assert_eq!(
            core.stats().counter("core.access_errors"),
            1,
            "sw surfaced as an error"
        );
        // The store was dropped, so the subsequent load reads zero.
        assert_eq!(core.reg(secbus_cpu::Reg(3)), 0);
    }

    #[test]
    fn retry_masks_a_lost_grant_from_the_ip() {
        use secbus_fault::{FaultEvent, FaultKind};
        let mut soc = store_load_soc(SocBuilder::new().watchdog(50).retry(RetryPolicy::default()));
        soc.attach_fault_plan(FaultPlan::new(vec![FaultEvent {
            at: Cycle(1),
            kind: FaultKind::BusLoseGrant,
        }]));
        let cycles = soc.run_until_halt(10_000);
        assert!(cycles < 10_000);
        // The interface re-issued the timed-out store behind the IP's
        // back: the program completes as if nothing happened.
        let core = soc.master_as::<Mb32Core>(0).unwrap();
        assert_eq!(core.stats().counter("core.access_errors"), 0);
        assert_eq!(core.reg(secbus_cpu::Reg(3)), 42);
        assert_eq!(soc.bram_contents().unwrap()[0], 42);
        assert_eq!(soc.stats().counter("soc.retries"), 1);
        assert_eq!(soc.stats().counter("soc.retry_successes"), 1);
    }

    #[test]
    fn quarantine_triggers_auto_recovery() {
        use secbus_cpu::{SyntheticConfig, SyntheticMaster};
        use secbus_sim::SimRng;
        let rogue = SyntheticMaster::new(
            "rogue",
            SyntheticConfig {
                windows: vec![(BRAM_BASE + 0x800, 0x100, 1)], // out of policy
                read_ratio: 0.0,
                widths: vec![secbus_bus::Width::Word],
                burst: 1,
                period: 4,
                total_ops: 0,
            },
            SimRng::new(1),
        );
        let mut soc = SocBuilder::new()
            .monitor_threshold(3)
            .quarantine(100)
            .auto_recover(false)
            .add_protected_master(
                Box::new(rogue),
                ConfigMemory::with_policies(vec![rw_policy(1, BRAM_BASE, 16)]).unwrap(),
            )
            .add_bram(
                "bram",
                AddrRange::new(BRAM_BASE, 0x1000),
                Bram::new(0x1000),
                None,
            )
            .build();
        soc.run(2_000);
        let blocks = soc.monitor().stats().counter("monitor.blocks");
        let recoveries = soc.stats().counter("soc.recoveries");
        let releases = soc.stats().counter("soc.quarantine_releases");
        assert!(blocks >= 1);
        assert!(
            recoveries >= 1,
            "a quarantine episode ran its recovery hook"
        );
        assert!(
            recoveries <= releases + 1,
            "recovery runs once per episode, not per re-escalation \
             ({recoveries} recoveries, {releases} releases)"
        );
    }

    #[test]
    fn fault_plan_application_is_reproducible() {
        use secbus_cpu::{SyntheticConfig, SyntheticMaster};
        use secbus_fault::{FaultRates, FaultSpec};
        use secbus_sim::SimRng;
        let build = || {
            let ip = SyntheticMaster::new(
                "ip",
                SyntheticConfig {
                    windows: vec![(BRAM_BASE, 0x400, 1)],
                    read_ratio: 0.5,
                    widths: vec![secbus_bus::Width::Word],
                    burst: 1,
                    period: 3,
                    total_ops: 0,
                },
                SimRng::new(9),
            );
            let mut soc = SocBuilder::new()
                .watchdog(64)
                .retry(RetryPolicy::default())
                .add_protected_master(
                    Box::new(ip),
                    ConfigMemory::with_policies(vec![rw_policy(1, BRAM_BASE, 0x400)]).unwrap(),
                )
                .add_bram(
                    "bram",
                    AddrRange::new(BRAM_BASE, 0x1000),
                    Bram::new(0x1000),
                    None,
                )
                .build();
            let spec = FaultSpec {
                duration: 5_000,
                ddr_bytes: 0,
                firewalls: 1,
                slaves: 1,
                noc_nodes: 0,
                rates: FaultRates::uniform(4.0),
            };
            soc.attach_fault_plan(FaultPlan::generate(0xC0FFEE, &spec));
            soc.run(5_000);
            let mut counters: Vec<(String, u64)> = soc
                .stats()
                .counters()
                .chain(soc.bus().stats().counters())
                .chain(soc.monitor().stats().counters())
                .map(|(k, v)| (k.to_string(), v))
                .collect();
            counters.sort();
            counters
        };
        let a = build();
        assert!(
            a.iter().any(|(k, _)| k.starts_with("soc.fault.")),
            "faults actually fired"
        );
        assert_eq!(a, build(), "same seed + same plan => identical counters");
    }

    // ---- crash consistency: power cuts, torn writes, resume ----

    const CRASH_DDR_BASE: u32 = 0x8000_0000;
    const STATE_KEY: [u8; 16] = *b"secbus-statekey!";

    fn crash_lcf_policies() -> ConfigMemory {
        ConfigMemory::with_policies(vec![SecurityPolicy::external(
            7,
            AddrRange::new(CRASH_DDR_BASE, 0x100),
            Rwa::ReadWrite,
            AdfSet::ALL,
            secbus_core::ConfidentialityMode::Encrypt,
            secbus_core::IntegrityMode::Verify,
            Some(*b"secbus-ddr-key!!"),
        )])
        .unwrap()
    }

    /// A journaled DDR SoC running `program`, optionally on surviving
    /// DDR contents + checkpoint from a previous life.
    fn crash_soc(program: &str, previous: Option<(&[u8], SecureCheckpoint)>) -> Soc {
        let program = assemble(program).unwrap();
        let core = Mb32Core::with_local_program("cpu0", 0, program);
        let mut ddr = ExternalDdr::new(0x1000);
        let mut b = SocBuilder::new()
            .add_master(Box::new(core))
            .journal(1024, STATE_KEY);
        if let Some((contents, cp)) = previous {
            ddr.load(0, contents);
            b = b.resume_from(cp);
        }
        b.set_ddr(
            "ddr",
            AddrRange::new(CRASH_DDR_BASE, 0x1000),
            ddr,
            Some(crash_lcf_policies()),
        )
        .build()
    }

    #[test]
    fn power_cut_stops_all_work_but_not_the_clock() {
        use secbus_fault::{FaultEvent, FaultKind};
        let mut soc = crash_soc(
            r"
            li  r1, 0x80000000
            addi r2, r0, 1
        loop:
            sw  r2, 0(r1)
            addi r2, r2, 1
            j loop
            ",
            None,
        );
        soc.attach_fault_plan(FaultPlan::new(vec![FaultEvent {
            at: Cycle(300),
            kind: FaultKind::PowerCut,
        }]));
        soc.run(600);
        assert!(soc.powered_off());
        assert_eq!(soc.stats().counter("soc.power_cuts"), 1);
        assert_eq!(soc.now().get(), 600, "wall clock keeps counting");
        let completed_at_cut = soc.bus().trace().len();
        soc.run(500);
        assert_eq!(
            soc.bus().trace().len(),
            completed_at_cut,
            "no traffic after the cut"
        );
    }

    #[test]
    fn checkpointed_state_survives_a_power_cut_and_resume() {
        use secbus_fault::{FaultEvent, FaultKind};
        let mut soc = crash_soc(
            r"
            li  r1, 0x80000000
            addi r2, r0, 42
            sw  r2, 0(r1)
            halt
            ",
            None,
        );
        soc.run_until_halt(10_000);
        let cp = soc.checkpoint().expect("journaled LCF");
        // Power dies after the checkpoint.
        soc.attach_fault_plan(FaultPlan::new(vec![FaultEvent {
            at: soc.now(),
            kind: FaultKind::PowerCut,
        }]));
        soc.run(10);
        assert!(soc.powered_off());
        let survived = soc.ddr().unwrap().contents().to_vec();

        // Next life: recover instead of sealing, then read the value back.
        let mut next = crash_soc(
            r"
            li  r1, 0x80000000
            lw  r3, 0(r1)
            halt
            ",
            Some((&survived, cp)),
        );
        let report = *next.recovery_report().expect("resume boot recovers");
        assert_eq!(report.outcome, secbus_core::RecoveryOutcome::Clean);
        next.run_until_halt(10_000);
        let core = next.master_as::<Mb32Core>(0).unwrap();
        assert_eq!(core.reg(secbus_cpu::Reg(3)), 42, "pre-crash write survived");
    }

    #[test]
    fn torn_write_kills_power_and_recovery_repairs_it() {
        use secbus_fault::{FaultEvent, FaultKind};
        let mut soc = crash_soc(
            r"
            li  r1, 0x80000000
            addi r2, r0, 1
        loop:
            sw  r2, 0(r1)
            addi r2, r2, 1
            j loop
            ",
            None,
        );
        let cp_early = soc.checkpoint().expect("journaled");
        // Seal checkpointed at seq 1; capturing folds a fresh one.
        assert_eq!(cp_early.state.image.seq, 2);
        assert!(cp_early.state.journal.is_empty());
        soc.attach_fault_plan(FaultPlan::new(vec![FaultEvent {
            at: Cycle(200),
            kind: FaultKind::TornWrite { keep_bytes: 5 },
        }]));
        soc.run(2_000);
        assert!(soc.powered_off(), "a torn store takes the power with it");
        let cp = soc.checkpoint().expect("persistent surface still readable");
        let survived = soc.ddr().unwrap().contents().to_vec();

        let next = crash_soc("halt", Some((&survived, cp)));
        let report = *next.recovery_report().unwrap();
        assert!(
            !report.is_quarantined(),
            "a torn write is a crash, not tampering: {report:?}"
        );
        assert_eq!(report.outcome, secbus_core::RecoveryOutcome::Repaired);
        assert_eq!(
            report.repaired_blocks + report.rolled_back + report.rolled_forward,
            1
        );
    }

    #[test]
    fn epoch_commit_swaps_all_firewalls_or_none() {
        let mut soc = crash_soc("halt", None);
        // The LCF's embedded firewall is the only one in this system.
        let lcf_id = soc.lcf().unwrap().firewall().id();
        let err = soc
            .commit_policy_epoch(vec![PolicyUpdate {
                firewall: FirewallId(99),
                policies: vec![],
            }])
            .unwrap_err();
        assert_eq!(err, EpochError::UnknownFirewall(FirewallId(99)));
        assert_eq!(soc.policy_epoch(), 0);
        let epoch = soc
            .commit_policy_epoch(vec![PolicyUpdate {
                firewall: lcf_id,
                policies: crash_lcf_policies().policies().to_vec(),
            }])
            .unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(soc.policy_epoch(), 1);
    }

    fn traced_soc(policies: Option<Vec<SecurityPolicy>>, program: &str) -> Soc {
        let program = assemble(program).unwrap();
        let core = Mb32Core::with_local_program("cpu0", 0, program);
        let mut b = SocBuilder::new().trace(4096).add_bram(
            "bram",
            AddrRange::new(BRAM_BASE, 0x1000),
            Bram::new(0x1000),
            None,
        );
        b = match policies {
            Some(p) => {
                b.add_protected_master(Box::new(core), ConfigMemory::with_policies(p).unwrap())
            }
            None => b.add_master(Box::new(core)),
        };
        b.build()
    }

    #[test]
    fn trace_spine_follows_a_transaction_lifecycle() {
        let mut soc = traced_soc(
            Some(vec![rw_policy(1, BRAM_BASE, 16)]),
            r"
            li  r1, 0x20000000
            addi r2, r0, 7
            sw  r2, 0(r1)     ; allowed
            sw  r2, 64(r1)    ; out of policy -> alert
            halt
            ",
        );
        soc.run_until_halt(10_000);
        let events = soc.tracer().unwrap().snapshot();
        let kinds: Vec<&str> = events.iter().map(|(_, e)| e.kind()).collect();
        for expected in [
            "txn_issued",
            "fw_verdict",
            "bus_hop",
            "alert",
            "txn_complete",
        ] {
            assert!(kinds.contains(&expected), "missing {expected} in {kinds:?}");
        }
        // The alert appears at the raising firewall's cycle: it must sit
        // between the issue of the violating write and the run's end, and
        // the retained window stays cycle-ordered.
        assert!(events.windows(2).all(|w| w[0].0 <= w[1].0));
        let alert_at = events
            .iter()
            .find(|(_, e)| e.kind() == "alert")
            .map(|(c, _)| *c)
            .unwrap();
        assert!(alert_at > Cycle::ZERO && alert_at < soc.now());
        // The lifecycle histograms saw every issued transaction.
        let snapshot = soc.metrics_snapshot();
        let soc_stats = snapshot.component("soc").unwrap();
        assert!(soc_stats.histogram("txn.issue_to_verdict").is_some());
        assert!(soc_stats.histogram("txn.verdict_to_complete").is_some());
    }

    #[test]
    fn metrics_snapshot_is_key_sorted_and_reproducible() {
        let build = || {
            let mut soc = traced_soc(
                Some(vec![rw_policy(1, BRAM_BASE, 16)]),
                r"
                li  r1, 0x20000000
                addi r2, r0, 7
                sw  r2, 0(r1)
                sw  r2, 64(r1)
                halt
                ",
            );
            soc.run_until_halt(10_000);
            soc.metrics_json()
        };
        let a = build();
        let doc = Json::parse(&a).unwrap();
        assert!(secbus_sim::metrics::is_key_sorted(&doc));
        // Covers the LF (by label), bus, monitor, soc and trace sections.
        for section in ["LF cpu0", "bus", "monitor", "soc", "trace"] {
            assert!(doc.get(section).is_some(), "missing section {section}");
        }
        assert_eq!(a, build(), "identical runs render identical snapshots");
    }

    #[test]
    fn chrome_trace_export_parses_and_places_the_alert() {
        let mut soc = traced_soc(
            Some(vec![rw_policy(1, BRAM_BASE, 16)]),
            r"
            li  r1, 0x20000000
            addi r2, r0, 7
            sw  r2, 64(r1)    ; out of policy -> alert
            halt
            ",
        );
        soc.run_until_halt(10_000);
        let doc = soc.chrome_trace().unwrap();
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let alert = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("alert"))
            .expect("alert event exported");
        // The alert sits on the raising firewall's lane (16 + fw id 0).
        assert_eq!(alert.get("tid").unwrap().as_u64(), Some(16));
        assert!(alert.get("ts").unwrap().as_u64().unwrap() > 0);
    }

    #[test]
    fn untraced_soc_exposes_no_spine() {
        let mut soc = small_soc(None, "halt");
        soc.run_until_halt(1_000);
        assert!(soc.tracer().is_none());
        assert!(soc.chrome_trace().is_none());
        assert!(soc.metrics_snapshot().component("trace").is_none());
    }

    // ---- overload: admission control, shedding, brownout ----

    /// An open-loop source: issues `per_tick` accesses every cycle until
    /// `until`, regardless of completions. The closed-loop IPs above can
    /// never overflow a bounded queue; overload needs one of these.
    struct Flooder {
        stats: Stats,
        addr: u32,
        op: Op,
        per_tick: u32,
        until: u64,
        issued: u64,
        ok: u64,
        shed: u64,
        errs: u64,
    }

    impl Flooder {
        fn new(addr: u32, op: Op, per_tick: u32, until: u64) -> Self {
            Flooder {
                stats: Stats::new(),
                addr,
                op,
                per_tick,
                until,
                issued: 0,
                ok: 0,
                shed: 0,
                errs: 0,
            }
        }
    }

    impl BusMaster for Flooder {
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }

        fn tick(&mut self, mem: &mut dyn MasterAccess, now: Cycle) {
            while let Some(resp) = mem.poll() {
                match resp.result {
                    Ok(()) => self.ok += 1,
                    Err(BusError::Overload) => self.shed += 1,
                    Err(_) => self.errs += 1,
                }
            }
            if now.get() < self.until {
                for _ in 0..self.per_tick {
                    mem.issue(self.op, self.addr, Width::Word, 0xF100D, 1);
                    self.issued += 1;
                }
            }
        }

        fn label(&self) -> &str {
            "flooder"
        }

        fn stats(&self) -> &Stats {
            &self.stats
        }
    }

    #[test]
    fn overload_sheds_at_admission_with_typed_alerts_and_conservation() {
        let flooder = Flooder::new(BRAM_BASE, Op::Write, 2, 200);
        let mut soc = SocBuilder::new()
            .bus_config(BusConfig {
                master_queue_capacity: 4,
                ..BusConfig::default()
            })
            .monitor_threshold(1)
            .add_protected_master(
                Box::new(flooder),
                ConfigMemory::with_policies(vec![rw_policy(1, BRAM_BASE, 0x1000)]).unwrap(),
            )
            .add_bram(
                "bram",
                AddrRange::new(BRAM_BASE, 0x1000),
                Bram::new(0x1000),
                None,
            )
            .build();
        // Flood for 200 cycles, then drain until everything queued resolves.
        soc.run(2_000);

        let shed = soc.stats().counter("soc.shed");
        assert!(shed > 0, "2 writes/cycle into a 4-deep queue must shed");
        assert_eq!(
            soc.stats().counter("soc.shed.m0"),
            shed,
            "sheds are counted per master"
        );
        // Every shed produced a Shed alert through the firewall...
        assert_eq!(soc.monitor().alert_count(), shed, "no silent refusals");
        // ...but Shed is environment pressure, not IP malice: even with a
        // one-violation threshold the master was never blocked, so every
        // admitted access completed fine.
        let f = soc.master_as::<Flooder>(0).unwrap();
        assert_eq!(f.errs, 0, "no discard/decode errors, only Overload");
        assert!(f.ok > 0, "admitted traffic still completes");
        assert_eq!(f.shed, shed, "every refusal surfaced to the IP");
        assert_eq!(
            f.issued,
            f.ok + f.shed,
            "conservation: issued == completed + shed"
        );
    }

    #[test]
    fn bare_master_sheds_are_still_counted_and_surfaced() {
        let flooder = Flooder::new(BRAM_BASE, Op::Write, 2, 200);
        let mut soc = SocBuilder::new()
            .bus_config(BusConfig {
                master_queue_capacity: 4,
                ..BusConfig::default()
            })
            .add_master(Box::new(flooder))
            .add_bram(
                "bram",
                AddrRange::new(BRAM_BASE, 0x1000),
                Bram::new(0x1000),
                None,
            )
            .build();
        soc.run(2_000);
        let shed = soc.stats().counter("soc.shed");
        assert!(shed > 0);
        let f = soc.master_as::<Flooder>(0).unwrap();
        assert_eq!(f.shed, shed, "refusals reach the IP even without an LF");
        assert_eq!(f.issued, f.ok + f.shed);
    }

    #[test]
    fn brownout_engages_under_pressure_and_exits_after_drain() {
        // Open-loop reads against the integrity-verified DDR region: the
        // LCF's verify latency can't keep up, queues back up, and the
        // controller steps the region down to cipher-only until the
        // burst drains.
        let flooder = Flooder::new(CRASH_DDR_BASE, Op::Read, 2, 400);
        let mut soc = SocBuilder::new()
            .add_master(Box::new(flooder))
            .degrade(DegradeConfig {
                high_watermark: 8,
                low_watermark: 0,
                enter_after: 4,
                exit_after: 16,
            })
            .trace(4096)
            .set_ddr(
                "ddr",
                AddrRange::new(CRASH_DDR_BASE, 0x1000),
                ExternalDdr::new(0x1000),
                Some(crash_lcf_policies()),
            )
            .build();
        soc.run(400);
        assert!(soc.degraded(), "sustained pressure engages the brownout");
        assert_eq!(soc.stats().counter("soc.degrade_enters"), 1);
        assert!(
            soc.lcf()
                .unwrap()
                .stats()
                .counter("lcf.brownout_skipped_verifies")
                > 0,
            "degraded reads skip the IC walk"
        );
        // The source stops at 400; the backlog drains and the exit fires.
        soc.run(20_000);
        assert!(!soc.degraded(), "a real drain always releases the brownout");
        assert_eq!(soc.stats().counter("soc.degrade_exits"), 1);
        let events = soc.tracer().unwrap().snapshot();
        let enter = events
            .iter()
            .find(|(_, e)| matches!(e, TraceEvent::DegradeEnter { .. }))
            .expect("DegradeEnter traced");
        let exit = events
            .iter()
            .find(|(_, e)| matches!(e, TraceEvent::DegradeExit { .. }))
            .expect("DegradeExit traced");
        if let (TraceEvent::DegradeEnter { from, to, .. }, TraceEvent::DegradeExit { cycles, .. }) =
            (&enter.1, &exit.1)
        {
            assert_eq!((*from, *to), ("verify", "cipher_only"));
            assert!(*cycles > 0, "exit records the brownout duration");
        }
        // Post-brownout reads verify again at full latency.
        let f = soc.master_as::<Flooder>(0).unwrap();
        assert_eq!(f.errs, 0, "brownout never produced integrity errors");
        assert_eq!(f.issued, f.ok + f.shed);
    }
}
