//! A library of realistic MB32 workloads.
//!
//! The paper's evaluation runs unspecified application code on the three
//! MicroBlazes; these programs are the reproducible stand-ins the tests
//! and benches use: a block copy, a 4×4 integer matrix multiply, a
//! Fletcher-16 checksum and a byte histogram. Each is parameterised over
//! its data addresses so it can be aimed at internal (BRAM) or external
//! (LCF-protected DDR) memory — the axis the paper's overhead discussion
//! turns on.

/// `memcpy(dst, src, words)` followed by halt.
pub fn memcpy(src: u32, dst: u32, words: u32) -> String {
    format!(
        r"
        li   r1, {src}
        li   r2, {dst}
        addi r3, r0, {words}
        addi r4, r0, 0
    copy:
        add  r5, r4, r4
        add  r5, r5, r5
        add  r6, r1, r5
        lw   r7, 0(r6)
        add  r6, r2, r5
        sw   r7, 0(r6)
        addi r4, r4, 1
        blt  r4, r3, copy
        halt
        "
    )
}

/// 4×4 i32 matrix multiply: `C = A × B`, row-major, then halt.
/// A at `a`, B at `b`, C at `c` (64 bytes each).
pub fn matmul4(a: u32, b: u32, c: u32) -> String {
    format!(
        r"
        li   r1, {a}
        li   r2, {b}
        li   r3, {c}
        addi r4, r0, 0        ; i
    row:
        addi r5, r0, 0        ; j
    col:
        addi r6, r0, 0        ; k
        addi r7, r0, 0        ; acc
    dot:
        ; A[i][k] -> r8
        add  r9, r4, r4
        add  r9, r9, r9       ; 4*i
        add  r9, r9, r6       ; 4*i + k
        add  r9, r9, r9
        add  r9, r9, r9       ; 16*i + 4*k
        add  r10, r1, r9
        lw   r8, 0(r10)
        ; B[k][j] -> r11
        add  r9, r6, r6
        add  r9, r9, r9
        add  r9, r9, r5
        add  r9, r9, r9
        add  r9, r9, r9
        add  r10, r2, r9
        lw   r11, 0(r10)
        mul  r12, r8, r11
        add  r7, r7, r12
        addi r6, r6, 1
        addi r13, r0, 4
        blt  r6, r13, dot
        ; C[i][j] = acc
        add  r9, r4, r4
        add  r9, r9, r9
        add  r9, r9, r5
        add  r9, r9, r9
        add  r9, r9, r9
        add  r10, r3, r9
        sw   r7, 0(r10)
        addi r5, r5, 1
        addi r13, r0, 4
        blt  r5, r13, col
        addi r4, r4, 1
        blt  r4, r13, row
        halt
        "
    )
}

/// Fletcher-16 over `words` 32-bit words at `src`; result packed as
/// `(sum2 << 8) | sum1` (mod 255 arithmetic) stored at `out`.
pub fn fletcher16(src: u32, out: u32, words: u32) -> String {
    format!(
        r"
        .equ MOD, 255
        li   r1, {src}
        li   r2, {out}
        addi r3, r0, {words}
        addi r4, r0, 0        ; index
        addi r5, r0, 0        ; sum1
        addi r6, r0, 0        ; sum2
    loop:
        add  r7, r4, r4
        add  r7, r7, r7
        add  r8, r1, r7
        lw   r9, 0(r8)
        andi r9, r9, 0xFF     ; low byte as the stream element
        add  r5, r5, r9
    mod1:
        addi r10, r0, MOD
        blt  r5, r10, m1done
        subi r5, r5, MOD
        j    mod1
    m1done:
        add  r6, r6, r5
    mod2:
        blt  r6, r10, m2done
        subi r6, r6, MOD
        j    mod2
    m2done:
        addi r4, r4, 1
        blt  r4, r3, loop
        ; pack (sum2 << 8) | sum1
        addi r11, r0, 8
        sll  r6, r6, r11
        or   r6, r6, r5
        sw   r6, 0(r2)
        halt
        "
    )
}

/// Byte histogram: counts of the low byte of `words` words at `src` into
/// 256 word-sized bins at `bins`.
pub fn histogram(src: u32, bins: u32, words: u32) -> String {
    format!(
        r"
        li   r1, {src}
        li   r2, {bins}
        addi r3, r0, {words}
        addi r4, r0, 0
    loop:
        add  r5, r4, r4
        add  r5, r5, r5
        add  r6, r1, r5
        lbu  r7, 0(r6)        ; NOTE: byte read of word i's low byte needs 4*i
        add  r8, r7, r7
        add  r8, r8, r8       ; 4 * byte
        add  r9, r2, r8
        lw   r10, 0(r9)
        addi r10, r10, 1
        sw   r10, 0(r9)
        addi r4, r4, 1
        blt  r4, r3, loop
        halt
        "
    )
}

/// Host-side reference for [`fletcher16`], used by tests.
pub fn fletcher16_reference(bytes: &[u8]) -> u16 {
    let (mut s1, mut s2) = (0u32, 0u32);
    for &b in bytes {
        s1 = (s1 + u32::from(b)) % 255;
        s2 = (s2 + s1) % 255;
    }
    ((s2 as u16) << 8) | s1 as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soc::{Soc, SocBuilder};
    use secbus_bus::AddrRange;
    use secbus_core::{AdfSet, ConfigMemory, Rwa, SecurityPolicy};
    use secbus_cpu::{assemble, Mb32Core};
    use secbus_mem::Bram;

    const BRAM_BASE: u32 = 0x2000_0000;

    fn run_on_bram(src: &str, init: &[(u32, Vec<u8>)]) -> Soc {
        let core = Mb32Core::with_local_program("cpu0", 0, assemble(src).expect("assembles"));
        let mut bram = Bram::new(0x4000);
        for (addr, bytes) in init {
            bram.load(addr - BRAM_BASE, bytes);
        }
        let policies = ConfigMemory::with_policies(vec![SecurityPolicy::internal(
            1,
            AddrRange::new(BRAM_BASE, 0x4000),
            Rwa::ReadWrite,
            AdfSet::ALL,
        )])
        .unwrap();
        let mut soc = SocBuilder::new()
            .add_protected_master(Box::new(core), policies)
            .add_bram("bram", AddrRange::new(BRAM_BASE, 0x4000), bram, None)
            .build();
        let cycles = soc.run_until_halt(5_000_000);
        assert!(cycles < 5_000_000, "workload did not halt");
        soc
    }

    fn words(soc: &Soc, addr: u32, n: usize) -> Vec<u32> {
        let bram = soc.bram_contents().unwrap();
        let off = (addr - BRAM_BASE) as usize;
        bram[off..off + 4 * n]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    #[test]
    fn memcpy_moves_every_word() {
        let src: Vec<u8> = (0..64u32).flat_map(|i| (i * 3 + 1).to_le_bytes()).collect();
        let soc = run_on_bram(
            &memcpy(BRAM_BASE, BRAM_BASE + 0x800, 64),
            &[(BRAM_BASE, src.clone())],
        );
        let got = words(&soc, BRAM_BASE + 0x800, 64);
        let expect: Vec<u32> = (0..64).map(|i| i * 3 + 1).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn matmul4_matches_host_reference() {
        let a: Vec<i32> = (1..=16).collect();
        let b: Vec<i32> = (1..=16).map(|x| 17 - x).collect();
        let mut expect = vec![0i32; 16];
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    expect[4 * i + j] += a[4 * i + k] * b[4 * k + j];
                }
            }
        }
        let pack = |m: &[i32]| -> Vec<u8> { m.iter().flat_map(|v| v.to_le_bytes()).collect() };
        let soc = run_on_bram(
            &matmul4(BRAM_BASE, BRAM_BASE + 0x40, BRAM_BASE + 0x80),
            &[(BRAM_BASE, pack(&a)), (BRAM_BASE + 0x40, pack(&b))],
        );
        let got: Vec<i32> = words(&soc, BRAM_BASE + 0x80, 16)
            .iter()
            .map(|&w| w as i32)
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn fletcher16_matches_host_reference() {
        let data: Vec<u8> = (0..32u32)
            .flat_map(|i| [(i * 7 + 3) as u8, 0, 0, 0])
            .collect();
        let stream: Vec<u8> = data.chunks_exact(4).map(|c| c[0]).collect();
        let soc = run_on_bram(
            &fletcher16(BRAM_BASE, BRAM_BASE + 0x800, 32),
            &[(BRAM_BASE, data)],
        );
        let got = words(&soc, BRAM_BASE + 0x800, 1)[0];
        assert_eq!(got as u16, fletcher16_reference(&stream));
    }

    #[test]
    fn histogram_counts_low_bytes() {
        // 16 words whose low bytes repeat 0,1,2,3.
        let data: Vec<u8> = (0..16u32)
            .flat_map(|i| [(i % 4) as u8, 0xAA, 0xBB, 0xCC])
            .collect();
        let soc = run_on_bram(
            &histogram(BRAM_BASE, BRAM_BASE + 0x1000, 16),
            &[(BRAM_BASE, data)],
        );
        let bins = words(&soc, BRAM_BASE + 0x1000, 8);
        assert_eq!(&bins[..4], &[4, 4, 4, 4]);
        assert!(bins[4..].iter().all(|&b| b == 0));
    }

    #[test]
    fn reference_fletcher_known_value() {
        // Classic check value: "abcde" -> 0xC8F0.
        assert_eq!(fletcher16_reference(b"abcde"), 0xC8F0);
    }
}
