//! Live-reconfiguration under fire (the SoC half of S-20).
//!
//! Two [`OpenLoopMaster`]s flood the external DDR at a fixed arrival rate
//! while a storm of multi-firewall **policy epochs** rewrites both Local
//! Firewalls' tables mid-flight — periodic or bursty schedules, with
//! verifier-refused programs and mid-commit faults mixed in. Every epoch
//! keeps the flooded window authorized, so the robustness contract is
//! sharp:
//!
//! * **zero misjudged** — no flood access is ever refused by a firewall
//!   (`errors == 0`): every in-flight transaction is judged under exactly
//!   one epoch, and every epoch authorizes it;
//! * **zero dropped** — open-loop conservation holds across every swap
//!   boundary (`issued == completed + shed + errors` per master);
//! * **no mixed fleet** — after every commit attempt (committed, refused
//!   or faulted) both firewalls report the same epoch;
//! * **fail-secure admission** — shadowed programs are refused by the
//!   exhaustive verifier before any firewall stages a table, and
//!   `EpochCommitFault` plans abort all-or-nothing.
//!
//! The run is a pure function of its config: same seed → identical
//! [`ReconfigSoakReport`].

use secbus_bus::{AddrRange, BusConfig};
use secbus_core::{
    ConfidentialityMode, ConfigMemory, EpochError, FirewallId, IntegrityMode, PolicyProgram,
    SecurityPolicy,
};
use secbus_cpu::{OpenLoopConfig, OpenLoopMaster};
use secbus_fault::{FaultEvent, FaultKind, FaultPlan};
use secbus_mem::ExternalDdr;
use secbus_sim::{Cycle, SimRng};

use crate::degrade::DegradeConfig;
use crate::soc::SocBuilder;

/// Base of the flooded DDR window.
const DDR_BASE: u32 = 0x8000_0000;
/// Bytes of DDR actually flooded (and, protected, integrity-verified).
const WINDOW: u32 = 0x100;

/// When the epoch storm fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapSchedule {
    /// One commit attempt every `every` cycles of the issue window.
    Periodic {
        /// Commit period in cycles (> 0).
        every: u64,
    },
    /// `burst` back-to-back attempts (16 cycles apart) every `every`
    /// cycles — the adversarial shape: swaps landing while the previous
    /// swap's traffic is still in flight.
    Bursty {
        /// Attempts per burst.
        burst: u32,
        /// Burst period in cycles (> 0).
        every: u64,
    },
}

impl SwapSchedule {
    /// The cycles (within the issue window) at which commits are attempted.
    fn commit_cycles(&self, window: u64) -> Vec<u64> {
        let mut out = Vec::new();
        match *self {
            SwapSchedule::Periodic { every } => {
                let every = every.max(1);
                let mut c = every;
                while c < window {
                    out.push(c);
                    c += every;
                }
            }
            SwapSchedule::Bursty { burst, every } => {
                let every = every.max(1);
                let mut start = every;
                while start < window {
                    for k in 0..u64::from(burst.max(1)) {
                        let c = start + 16 * k;
                        if c < window {
                            out.push(c);
                        }
                    }
                    start += every;
                }
            }
        }
        out
    }
}

/// One S-20 cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconfigSoakConfig {
    /// Arrivals per cycle per master during the issue window.
    pub per_tick: u32,
    /// Issue window, in cycles.
    pub cycles: u64,
    /// Grace period for the backlog to resolve after the window closes.
    pub drain_cycles: u64,
    /// Bound on each master's bus request queue (the admission seam).
    pub master_queue_capacity: usize,
    /// Protected: both masters behind LFs, DDR behind a ciphering LCF.
    /// Bare: no enforcement points — every commit is a fail-secure
    /// `UnknownFirewall` refusal and the epoch never moves.
    pub protected: bool,
    /// Brownout controller, when armed (protected runs only).
    pub degrade: Option<DegradeConfig>,
    /// The epoch-storm shape.
    pub schedule: SwapSchedule,
    /// Mix in shadowed programs the verifier must refuse (every 3rd
    /// attempt).
    pub include_bad: bool,
    /// Mix in `EpochCommitFault` plans that interrupt the commit point
    /// (every 4th attempt).
    pub include_faults: bool,
    /// Seed for the flood address/op streams.
    pub seed: u64,
}

impl Default for ReconfigSoakConfig {
    fn default() -> Self {
        ReconfigSoakConfig {
            per_tick: 2,
            cycles: 2_000,
            drain_cycles: 20_000,
            master_queue_capacity: 8,
            protected: true,
            degrade: Some(DegradeConfig::default()),
            schedule: SwapSchedule::Periodic { every: 200 },
            include_bad: true,
            include_faults: true,
            seed: 1,
        }
    }
}

/// What one S-20 cell did. `PartialEq` so the soak can check a parallel
/// sweep against its serial reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconfigSoakReport {
    /// Whether the cell ran protected.
    pub protected: bool,
    /// Open-loop arrivals offered, both masters.
    pub issued: u64,
    /// Arrivals that completed OK.
    pub completed: u64,
    /// Arrivals refused at admission (typed, counted).
    pub shed: u64,
    /// Arrivals refused by a firewall or errored — **misjudged** under
    /// this always-authorized workload; the gate is 0.
    pub errors: u64,
    /// issued == completed + shed + errors for every master.
    pub conservation_ok: bool,
    /// Commit attempts made.
    pub commits_attempted: u64,
    /// Epochs that committed.
    pub commits_ok: u64,
    /// Attempts the exhaustive verifier refused (shadowed programs).
    pub verifier_refusals: u64,
    /// Shadowed programs that committed anyway (the verifier-escape
    /// gate; must be 0).
    pub verifier_escapes: u64,
    /// Attempts aborted by a mid-commit fault (rolled back).
    pub commit_faults: u64,
    /// Attempts refused for any other reason (bare mode: all of them).
    pub other_refusals: u64,
    /// The epoch in force after the drain.
    pub final_epoch: u64,
    /// final_epoch == commits_ok, and every refusal left it unchanged.
    pub epoch_accounting_ok: bool,
    /// Post-attempt checks that found the two firewalls on different
    /// epochs (the mixed-fleet gate; must be 0).
    pub epoch_mismatches: u64,
    /// Brownout engagements / releases.
    pub degrade_enters: u64,
    /// See `degrade_enters`.
    pub degrade_exits: u64,
    /// Whether the brownout was still engaged after the drain (gate:
    /// must be false — a swap storm must not wedge the posture).
    pub still_degraded: bool,
    /// Any gate above failed.
    pub wedged: bool,
    /// Full metrics snapshot (parseable JSON).
    pub metrics_json: String,
}

/// The epoch-`i` policy program: both masters keep full rights over the
/// flooded DDR window in *every* epoch (so any firewall refusal is a
/// misjudgment), while a scratch region nobody accesses moves and
/// changes hands each epoch — the tables genuinely differ per swap.
fn epoch_program(i: u64) -> String {
    let scratch = 0x4000_0000u64 + (i % 64) * 0x1000;
    let grant = if i.is_multiple_of(2) {
        "allow m0 scratch ro word\n"
    } else {
        "allow m1 scratch rw\ndeny m0 scratch\n"
    };
    format!(
        "master m0 = 0\n\
         master m1 = 1\n\
         region ddr = {DDR_BASE:#x} + 0x1000\n\
         region scratch = {scratch:#x} + 0x100\n\
         allow m0 ddr rw\n\
         allow m1 ddr rw\n\
         {grant}"
    )
}

/// A program the verifier must refuse: the second `ddr` rule can never
/// fire.
fn shadowed_program() -> String {
    format!(
        "master m0 = 0\n\
         master m1 = 1\n\
         region ddr = {DDR_BASE:#x} + 0x1000\n\
         allow m0 ddr rw\n\
         allow m0 ddr ro\n\
         allow m1 ddr rw\n"
    )
}

fn flood_master(name: &'static str, cfg: &ReconfigSoakConfig, salt: &str) -> OpenLoopMaster {
    OpenLoopMaster::new(
        name,
        OpenLoopConfig {
            window: (DDR_BASE, WINDOW),
            read_ratio: 0.75,
            per_tick: cfg.per_tick,
            until: cfg.cycles,
        },
        SimRng::new(cfg.seed).derive(salt),
    )
}

/// Attempt index → what kind of commit it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Attempt {
    Normal,
    Bad,
    Faulted,
}

fn attempt_kind(cfg: &ReconfigSoakConfig, idx: u64) -> Attempt {
    if cfg.include_bad && idx % 3 == 2 {
        Attempt::Bad
    } else if cfg.include_faults && idx % 4 == 3 {
        Attempt::Faulted
    } else {
        Attempt::Normal
    }
}

/// Run one S-20 cell.
pub fn run_reconfig_soak(cfg: &ReconfigSoakConfig) -> ReconfigSoakReport {
    let commit_cycles = cfg.schedule.commit_cycles(cfg.cycles);

    // Boot tables come from the epoch-0 program — the same compiler the
    // storm uses, so the baseline is verified too.
    let boot = PolicyProgram::parse(&epoch_program(0)).expect("epoch program parses");
    let compiled = boot.compile().expect("epoch program compiles");
    secbus_core::verify(&boot, &compiled.as_views()).expect("boot tables verify");

    let mut b = SocBuilder::new().bus_config(BusConfig {
        master_queue_capacity: cfg.master_queue_capacity,
        ..BusConfig::default()
    });
    if let Some(d) = cfg.degrade {
        b = b.degrade(d);
    }
    let ddr = ExternalDdr::new(0x1000);
    let range = AddrRange::new(DDR_BASE, 0x1000);
    let mut soc = if cfg.protected {
        let table = |master: u8| {
            ConfigMemory::with_policies(
                compiled
                    .table(master)
                    .expect("both masters compiled")
                    .policies
                    .clone(),
            )
            .expect("compiled tables are disjoint")
        };
        let lcf = ConfigMemory::with_policies(vec![SecurityPolicy::external(
            7,
            AddrRange::new(DDR_BASE, WINDOW),
            secbus_core::Rwa::ReadWrite,
            secbus_core::AdfSet::ALL,
            ConfidentialityMode::Encrypt,
            IntegrityMode::Verify,
            Some(*b"secbus-ddr-key!!"),
        )])
        .expect("one policy cannot overlap");
        b.add_protected_master(
            Box::new(flood_master("flood0", cfg, "reconfig.m0")),
            table(0),
        )
        .add_protected_master(
            Box::new(flood_master("flood1", cfg, "reconfig.m1")),
            table(1),
        )
        .set_ddr("ddr", range, ddr, Some(lcf))
        .build()
    } else {
        b.add_master(Box::new(flood_master("flood0", cfg, "reconfig.m0")))
            .add_master(Box::new(flood_master("flood1", cfg, "reconfig.m1")))
            .set_ddr("ddr", range, ddr, None)
            .build()
    };

    // Mid-commit faults ride the ordinary fault plan: the event at the
    // commit's cycle arms the prepare/commit boundary inside that tick,
    // and the attempt right after it must abort all-or-nothing.
    if cfg.include_faults {
        let events: Vec<FaultEvent> = commit_cycles
            .iter()
            .enumerate()
            .filter(|&(idx, _)| attempt_kind(cfg, idx as u64) == Attempt::Faulted)
            .map(|(_, &c)| FaultEvent {
                at: Cycle(c),
                kind: FaultKind::EpochCommitFault { stage: 1 },
            })
            .collect();
        soc.attach_fault_plan(FaultPlan::new(events));
    }

    // The DSL master index → firewall map. In bare mode the map is empty
    // and every commit must be refused fail-secure.
    let targets: Vec<(u8, FirewallId)> = if cfg.protected {
        (0..2u8)
            .map(|m| {
                (
                    m,
                    soc.master_firewall(usize::from(m))
                        .expect("protected masters have LFs")
                        .id(),
                )
            })
            .collect()
    } else {
        Vec::new()
    };

    let mut commits_ok = 0u64;
    let mut verifier_refusals = 0u64;
    let mut verifier_escapes = 0u64;
    let mut commit_faults = 0u64;
    let mut other_refusals = 0u64;
    let mut epoch_mismatches = 0u64;

    let mut ran = 0u64;
    for (idx, &commit_at) in commit_cycles.iter().enumerate() {
        // Run up to and THROUGH the commit cycle's tick, so an armed
        // fault event at `commit_at` has been applied when we commit.
        soc.run(commit_at + 1 - ran);
        ran = commit_at + 1;

        let epoch_before = soc.policy_epoch();
        let attempt = attempt_kind(cfg, idx as u64);
        let text = match attempt {
            Attempt::Bad => shadowed_program(),
            _ => epoch_program(epoch_before + 1),
        };
        let program = PolicyProgram::parse(&text).expect("storm programs parse");
        let result = soc.commit_policy_epoch_from(&program, &targets);
        match result {
            Ok(epoch) => {
                commits_ok += 1;
                if attempt == Attempt::Bad {
                    verifier_escapes += 1;
                }
                if epoch != epoch_before + 1 {
                    epoch_mismatches += 1;
                }
            }
            Err(EpochError::Verifier(_)) => {
                verifier_refusals += 1;
            }
            Err(EpochError::CommitFault { .. }) => {
                commit_faults += 1;
            }
            Err(_) => {
                other_refusals += 1;
            }
        }
        // The mixed-fleet gate: after EVERY attempt, committed or not,
        // both firewalls must sit on the same epoch, and a failed attempt
        // must not have moved the counter.
        if result.is_err() && soc.policy_epoch() != epoch_before {
            epoch_mismatches += 1;
        }
        if cfg.protected {
            let epochs: Vec<u64> = targets
                .iter()
                .map(|&(_, fw)| soc.firewall_epoch(fw))
                .collect();
            if epochs.windows(2).any(|w| w[0] != w[1]) {
                epoch_mismatches += 1;
            }
        }
    }
    soc.run(cfg.cycles + cfg.drain_cycles - ran);

    let commits_attempted = commit_cycles.len() as u64;
    let final_epoch = soc.policy_epoch();
    let epoch_accounting_ok = final_epoch == commits_ok
        && commits_attempted == commits_ok + verifier_refusals + commit_faults + other_refusals;

    let degrade_enters = soc.stats().counter("soc.degrade_enters");
    let degrade_exits = soc.stats().counter("soc.degrade_exits");
    let still_degraded = soc.degraded();
    let metrics_json = soc.metrics_json();

    let mut issued = 0u64;
    let mut completed = 0u64;
    let mut shed = 0u64;
    let mut errors = 0u64;
    let mut conservation_ok = true;
    for m in 0..2 {
        let f = soc
            .master_as::<OpenLoopMaster>(m)
            .expect("flood sources present");
        issued += f.issued();
        completed += f.completed();
        shed += f.shed();
        errors += f.errors();
        conservation_ok &= f.resolved();
    }

    let wedged = !conservation_ok
        || errors != 0
        || epoch_mismatches != 0
        || verifier_escapes != 0
        || !epoch_accounting_ok
        || still_degraded;
    ReconfigSoakReport {
        protected: cfg.protected,
        issued,
        completed,
        shed,
        errors,
        conservation_ok,
        commits_attempted,
        commits_ok,
        verifier_refusals,
        verifier_escapes,
        commit_faults,
        other_refusals,
        final_epoch,
        epoch_accounting_ok,
        epoch_mismatches,
        degrade_enters,
        degrade_exits,
        still_degraded,
        wedged,
        metrics_json,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protected_swap_storm_loses_and_misjudges_nothing() {
        let r = run_reconfig_soak(&ReconfigSoakConfig::default());
        assert!(r.conservation_ok, "no silent loss: {r:?}");
        assert_eq!(r.errors, 0, "no flood access misjudged across any swap");
        assert_eq!(r.epoch_mismatches, 0, "never a mixed fleet");
        assert!(r.epoch_accounting_ok, "{r:?}");
        assert!(!r.wedged);
        assert!(r.commits_ok > 0, "epochs actually committed");
        assert!(r.verifier_refusals > 0, "shadowed programs were refused");
        assert_eq!(r.verifier_escapes, 0, "no shadowed program committed");
        assert!(r.commit_faults > 0, "mid-commit faults were exercised");
        assert_eq!(r.final_epoch, r.commits_ok);
    }

    #[test]
    fn bursty_storm_holds_the_same_gates() {
        let cfg = ReconfigSoakConfig {
            schedule: SwapSchedule::Bursty {
                burst: 3,
                every: 500,
            },
            ..ReconfigSoakConfig::default()
        };
        let r = run_reconfig_soak(&cfg);
        assert!(!r.wedged, "{r:?}");
        assert_eq!(r.errors, 0);
        assert!(r.commits_ok > 0);
    }

    #[test]
    fn bare_mode_refuses_every_commit_fail_secure() {
        let cfg = ReconfigSoakConfig {
            protected: false,
            degrade: None,
            include_bad: false,
            include_faults: false,
            ..ReconfigSoakConfig::default()
        };
        let r = run_reconfig_soak(&cfg);
        assert!(r.conservation_ok);
        assert_eq!(r.commits_ok, 0, "no enforcement points, no epochs");
        assert_eq!(r.other_refusals, r.commits_attempted);
        assert_eq!(r.final_epoch, 0);
        assert!(!r.wedged, "{r:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ReconfigSoakConfig::default();
        assert_eq!(run_reconfig_soak(&cfg), run_reconfig_soak(&cfg));
        let other = ReconfigSoakConfig { seed: 9, ..cfg };
        assert_ne!(
            run_reconfig_soak(&other).metrics_json,
            run_reconfig_soak(&cfg).metrics_json
        );
    }
}
