//! The paper's case study platform.
//!
//! > "This system contains 3 MicroBlaze softcore microprocessors, One
//! > internal shared memory (BRAM blocks), one external memory (DDR RAM)
//! > and one dedicated IP."
//!
//! Memory map:
//!
//! ```text
//! 0x2000_0000  64 KiB   shared BRAM (internal, trusted)
//! 0x2000_F000           the dedicated IP's FIFO window inside the BRAM
//! 0x8000_0000  256 KiB  DDR "private"  — ciphered + integrity-checked
//! 0x8004_0000  256 KiB  DDR "ciphered" — ciphered only
//! 0x8008_0000  512 KiB  DDR "public"   — unprotected (the deliberate
//!                                        cost-saving hole of §III-B)
//! ```
//!
//! Each of the four masters (3 cores + dedicated IP) sits behind a Local
//! Firewall with its own least-privilege policy set; the DDR sits behind
//! the LCF.

use secbus_bus::AddrRange;
use secbus_core::{AdfSet, ConfidentialityMode, ConfigMemory, IntegrityMode, Rwa, SecurityPolicy};
use secbus_cpu::{assemble, Mb32Core, StreamIp};
use secbus_mem::{Bram, ExternalDdr};

use crate::soc::{RetryPolicy, Soc, SocBuilder};

/// Shared BRAM base address.
pub const SHARED_BRAM_BASE: u32 = 0x2000_0000;
/// Shared BRAM size.
pub const SHARED_BRAM_LEN: u32 = 0x1_0000;
/// The dedicated IP's FIFO window (inside the shared BRAM).
pub const IP_FIFO_ADDR: u32 = 0x2000_F000;

/// External DDR base address.
pub const DDR_BASE: u32 = 0x8000_0000;
/// Total DDR size.
pub const DDR_LEN: u32 = 0x10_0000;
/// Ciphered + integrity-protected region ("private").
pub const DDR_PRIVATE_BASE: u32 = DDR_BASE;
/// Length of the private region.
pub const DDR_PRIVATE_LEN: u32 = 0x4_0000;
/// Cipher-only region.
pub const DDR_CIPHER_BASE: u32 = DDR_BASE + 0x4_0000;
/// Length of the cipher-only region.
pub const DDR_CIPHER_LEN: u32 = 0x4_0000;
/// Unprotected region ("public").
pub const DDR_PUBLIC_BASE: u32 = DDR_BASE + 0x8_0000;
/// Length of the public region.
pub const DDR_PUBLIC_LEN: u32 = 0x8_0000;

/// The LCF's AES-128 key for the private region.
pub const PRIVATE_KEY: [u8; 16] = *b"secbus-priv-key!";
/// The LCF's AES-128 key for the cipher-only region.
pub const CIPHER_KEY: [u8; 16] = *b"secbus-ciph-key!";

/// Knobs for assembling the case study.
#[derive(Debug, Clone)]
pub struct CaseStudyConfig {
    /// Instantiate firewalls (false = the Table I baseline system).
    pub security: bool,
    /// Monitor escalation threshold (0 = discard-only).
    pub monitor_threshold: u64,
    /// Override the three core programs (assembly source).
    pub programs: Option<[String; 3]>,
    /// Samples the dedicated IP streams (0 = forever).
    pub ip_samples: u64,
    /// Fault-resilience stack (watchdog, retry, quarantine recovery);
    /// `None` leaves the platform exactly as the paper describes it.
    pub resilience: Option<CaseResilience>,
    /// Integrity-Core trusted-node cache entries per region (`None` =
    /// the paper's uncached root walk).
    pub ic_cache: Option<usize>,
    /// Observability spine capacity in retained trace events (`None` =
    /// tracing off; behaviour is identical either way).
    pub trace: Option<usize>,
    /// Arm DIFT taint tracking over the firewall fabric (see
    /// [`SocBuilder::taint_tracking`]). Off by default: the benign
    /// case-study programs never move public data into the private
    /// region, so arming it changes nothing for them.
    pub taint: bool,
}

impl Default for CaseStudyConfig {
    fn default() -> Self {
        CaseStudyConfig {
            security: true,
            monitor_threshold: 0,
            programs: None,
            ip_samples: 16,
            resilience: None,
            ic_cache: None,
            trace: None,
            taint: false,
        }
    }
}

/// The resilience stack applied to the case-study platform when
/// [`CaseStudyConfig::resilience`] is set.
#[derive(Debug, Clone, Copy)]
pub struct CaseResilience {
    /// Outstanding-transaction watchdog timeout, in cycles.
    pub watchdog: u64,
    /// Master-interface retry policy.
    pub retry: RetryPolicy,
    /// Monitor blocks become quarantines of this many cycles.
    pub quarantine: u64,
    /// Re-key ciphered regions during quarantine recovery.
    pub rekey: bool,
}

impl Default for CaseResilience {
    fn default() -> Self {
        CaseResilience {
            watchdog: 512,
            retry: RetryPolicy::default(),
            quarantine: 2_048,
            rekey: false,
        }
    }
}

/// Default program for core 0: fill a BRAM buffer, copy it into the
/// *private* (ciphered + integrity) DDR region, read it back and checksum.
pub const CPU0_PROGRAM: &str = r"
    li   r1, 0x20000000    ; bram
    li   r2, 0x80000000    ; ddr private
    addi r3, r0, 16        ; words to move
    addi r4, r0, 0         ; i
fill:
    addi r5, r4, 100       ; value = i + 100
    add  r7, r4, r4
    add  r7, r7, r7        ; r7 = 4*i
    add  r9, r1, r7
    sw   r5, 0(r9)
    addi r4, r4, 1
    blt  r4, r3, fill
    addi r4, r0, 0
copy:
    add  r7, r4, r4
    add  r7, r7, r7
    add  r9, r1, r7
    lw   r5, 0(r9)
    add  r9, r2, r7
    sw   r5, 0(r9)
    addi r4, r4, 1
    blt  r4, r3, copy
    addi r4, r0, 0
    addi r11, r0, 0        ; checksum
check:
    add  r7, r4, r4
    add  r7, r7, r7
    add  r9, r2, r7
    lw   r5, 0(r9)
    add  r11, r11, r5
    addi r4, r4, 1
    blt  r4, r3, check
    ; store checksum to bram[1024]
    li   r9, 0x20001000
    sw   r11, 0(r9)
    halt
";

/// Default program for core 1: iterative Fibonacci, results into the
/// cipher-only DDR region.
pub const CPU1_PROGRAM: &str = r"
    li   r1, 0x80040000    ; ddr cipher-only
    addi r2, r0, 1         ; fib(1)
    addi r3, r0, 1         ; fib(2)
    addi r4, r0, 0         ; i
    addi r5, r0, 12        ; count
loop:
    add  r6, r2, r3
    mv   r2, r3
    mv   r3, r6
    add  r7, r4, r4
    add  r7, r7, r7
    add  r8, r1, r7
    sw   r6, 0(r8)
    addi r4, r4, 1
    blt  r4, r5, loop
    halt
";

/// Default program for core 2: sum a table from the *public* (unprotected)
/// DDR region into the shared BRAM — the kind of task that touches the
/// attacker-writable window.
pub const CPU2_PROGRAM: &str = r"
    li   r1, 0x80080000    ; ddr public table
    addi r2, r0, 0         ; sum
    addi r3, r0, 0         ; i
    addi r4, r0, 32        ; count
loop:
    add  r5, r3, r3
    add  r5, r5, r5
    add  r6, r1, r5
    lw   r7, 0(r6)
    add  r2, r2, r7
    addi r3, r3, 1
    blt  r3, r4, loop
    li   r6, 0x20002000
    sw   r2, 0(r6)
    halt
";

/// Build the LCF policy table (the external policies with CM/IM/CK).
pub fn lcf_policies() -> ConfigMemory {
    ConfigMemory::with_policies(vec![
        SecurityPolicy::external(
            0x10,
            AddrRange::new(DDR_PRIVATE_BASE, DDR_PRIVATE_LEN),
            Rwa::ReadWrite,
            AdfSet::ALL,
            ConfidentialityMode::Encrypt,
            IntegrityMode::Verify,
            Some(PRIVATE_KEY),
        ),
        SecurityPolicy::external(
            0x11,
            AddrRange::new(DDR_CIPHER_BASE, DDR_CIPHER_LEN),
            Rwa::ReadWrite,
            AdfSet::ALL,
            ConfidentialityMode::Encrypt,
            IntegrityMode::Bypass,
            Some(CIPHER_KEY),
        ),
        SecurityPolicy::external(
            0x12,
            AddrRange::new(DDR_PUBLIC_BASE, DDR_PUBLIC_LEN),
            Rwa::ReadWrite,
            AdfSet::ALL,
            ConfidentialityMode::Bypass,
            IntegrityMode::Bypass,
            None,
        ),
    ])
    .expect("case-study LCF policies are disjoint")
}

fn cpu0_policies() -> ConfigMemory {
    ConfigMemory::with_policies(vec![
        SecurityPolicy::internal(
            1,
            AddrRange::new(SHARED_BRAM_BASE, SHARED_BRAM_LEN),
            Rwa::ReadWrite,
            AdfSet::ALL,
        ),
        SecurityPolicy::internal(
            2,
            AddrRange::new(DDR_PRIVATE_BASE, DDR_PRIVATE_LEN),
            Rwa::ReadWrite,
            AdfSet::ALL,
        ),
        SecurityPolicy::internal(
            3,
            AddrRange::new(DDR_PUBLIC_BASE, DDR_PUBLIC_LEN),
            Rwa::ReadOnly,
            AdfSet::ALL,
        ),
    ])
    .expect("cpu0 policies are disjoint")
}

fn cpu1_policies() -> ConfigMemory {
    ConfigMemory::with_policies(vec![
        SecurityPolicy::internal(
            4,
            AddrRange::new(SHARED_BRAM_BASE, 0x8000),
            Rwa::ReadWrite,
            AdfSet::ALL,
        ),
        SecurityPolicy::internal(
            5,
            AddrRange::new(DDR_CIPHER_BASE, DDR_CIPHER_LEN),
            Rwa::ReadWrite,
            AdfSet::ALL,
        ),
        SecurityPolicy::internal(
            6,
            AddrRange::new(DDR_PUBLIC_BASE, DDR_PUBLIC_LEN),
            Rwa::ReadOnly,
            AdfSet::ALL,
        ),
    ])
    .expect("cpu1 policies are disjoint")
}

fn cpu2_policies() -> ConfigMemory {
    ConfigMemory::with_policies(vec![
        SecurityPolicy::internal(
            7,
            AddrRange::new(SHARED_BRAM_BASE, SHARED_BRAM_LEN),
            Rwa::ReadWrite,
            AdfSet::ALL,
        ),
        SecurityPolicy::internal(
            8,
            AddrRange::new(DDR_PUBLIC_BASE, DDR_PUBLIC_LEN),
            Rwa::ReadOnly,
            AdfSet::ALL,
        ),
    ])
    .expect("cpu2 policies are disjoint")
}

fn ip_policies() -> ConfigMemory {
    ConfigMemory::with_policies(vec![SecurityPolicy::internal(
        9,
        AddrRange::new(IP_FIFO_ADDR, 0x100),
        Rwa::WriteOnly,
        AdfSet::WORD_ONLY,
    )])
    .expect("ip policies are disjoint")
}

/// Assemble the case-study SoC.
pub fn case_study(config: CaseStudyConfig) -> Soc {
    let sources = config.programs.unwrap_or_else(|| {
        [
            CPU0_PROGRAM.into(),
            CPU1_PROGRAM.into(),
            CPU2_PROGRAM.into(),
        ]
    });
    let cores: Vec<Mb32Core> = sources
        .iter()
        .enumerate()
        .map(|(i, src)| {
            Mb32Core::with_local_program(
                format!("cpu{i}"),
                0,
                assemble(src).unwrap_or_else(|e| panic!("cpu{i} program: {e}")),
            )
        })
        .collect();

    let mut ddr = ExternalDdr::new(DDR_LEN);
    // Public table the cpu2 program sums: values 1..=32.
    for i in 0..32u32 {
        ddr.load(DDR_PUBLIC_BASE - DDR_BASE + 4 * i, &(i + 1).to_le_bytes());
    }

    let ip = StreamIp::new("ip0", IP_FIFO_ADDR, 8, config.ip_samples);

    let mut builder = SocBuilder::new().monitor_threshold(config.monitor_threshold);
    if !config.security {
        builder = builder.without_security();
    }
    if let Some(r) = config.resilience {
        builder = builder
            .watchdog(r.watchdog)
            .retry(r.retry)
            .quarantine(r.quarantine)
            .auto_recover(r.rekey);
    }
    if let Some(entries) = config.ic_cache {
        builder = builder.ic_cache(entries);
    }
    if let Some(capacity) = config.trace {
        builder = builder.trace(capacity);
    }
    if config.taint {
        builder = builder.taint_tracking();
    }
    let policy_sets = [cpu0_policies(), cpu1_policies(), cpu2_policies()];
    for (core, policies) in cores.into_iter().zip(policy_sets) {
        builder = builder.add_protected_master(Box::new(core), policies);
    }
    builder = builder.add_protected_master(Box::new(ip), ip_policies());
    builder = builder.add_bram(
        "shared-bram",
        AddrRange::new(SHARED_BRAM_BASE, SHARED_BRAM_LEN),
        Bram::new(SHARED_BRAM_LEN),
        None,
    );
    builder = builder.set_ddr(
        "ddr",
        AddrRange::new(DDR_BASE, DDR_LEN),
        ddr,
        Some(lcf_policies()),
    );
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use secbus_cpu::Reg;

    #[test]
    fn case_study_runs_to_completion() {
        let mut soc = case_study(CaseStudyConfig::default());
        let cycles = soc.run_until_halt(2_000_000);
        assert!(cycles < 2_000_000, "did not halt");
        // cpu0's checksum: sum(100..116) = 1720, stored at bram[0x1000].
        let bram = soc.bram_contents().unwrap();
        let checksum = u32::from_le_bytes(bram[0x1000..0x1004].try_into().unwrap());
        assert_eq!(checksum, (100..116).sum::<u32>());
        // cpu2's sum of the public table: 1+…+32 = 528 at bram[0x2000].
        let sum = u32::from_le_bytes(bram[0x2000..0x2004].try_into().unwrap());
        assert_eq!(sum, (1..=32).sum::<u32>());
        // The IP streamed its samples into the FIFO.
        let fifo_off = (IP_FIFO_ADDR - SHARED_BRAM_BASE) as usize;
        let last = u32::from_le_bytes(bram[fifo_off..fifo_off + 4].try_into().unwrap());
        assert_eq!(last, 15, "16 samples, last value 15");
        // No violations in the benign run.
        assert_eq!(soc.monitor().alert_count(), 0);
    }

    #[test]
    fn case_study_private_region_is_ciphertext_at_rest() {
        let mut soc = case_study(CaseStudyConfig::default());
        soc.run_until_halt(2_000_000);
        // cpu0 wrote plaintext values 100..116 into the private region via
        // the LCF; the raw DDR bytes must not contain them.
        let ddr = soc.ddr().unwrap();
        let raw = ddr.snoop(0, 64);
        let plain: Vec<u8> = (0..16u32).flat_map(|i| (i + 100).to_le_bytes()).collect();
        assert_ne!(raw, &plain[..], "private region must be ciphered at rest");
        // But the core *read back* the correct checksum (verified above in
        // case_study_runs_to_completion).
    }

    #[test]
    fn case_study_public_region_is_plaintext_at_rest() {
        let soc = case_study(CaseStudyConfig::default());
        let ddr = soc.ddr().unwrap();
        let raw = ddr.snoop(DDR_PUBLIC_BASE - DDR_BASE, 8);
        assert_eq!(raw, &[1, 0, 0, 0, 2, 0, 0, 0]);
    }

    #[test]
    fn baseline_case_study_matches_functionally() {
        let mut soc = case_study(CaseStudyConfig {
            security: false,
            ..Default::default()
        });
        let cycles = soc.run_until_halt(2_000_000);
        assert!(cycles < 2_000_000);
        let bram = soc.bram_contents().unwrap();
        let checksum = u32::from_le_bytes(bram[0x1000..0x1004].try_into().unwrap());
        assert_eq!(checksum, (100..116).sum::<u32>());
    }

    #[test]
    fn protected_run_is_slower_than_baseline() {
        let mut protected = case_study(CaseStudyConfig::default());
        let protected_cycles = protected.run_until_halt(2_000_000);
        let mut baseline = case_study(CaseStudyConfig {
            security: false,
            ..Default::default()
        });
        let baseline_cycles = baseline.run_until_halt(2_000_000);
        assert!(
            protected_cycles > baseline_cycles,
            "{protected_cycles} vs {baseline_cycles}"
        );
    }

    #[test]
    fn cpu0_cannot_write_public_region() {
        // cpu0's policy marks the public region read-only; a write from its
        // program must be contained.
        let programs = [
            r"
            li  r1, 0x80080000
            addi r2, r0, 99
            sw  r2, 0(r1)   ; violates cpu0's read-only rule
            halt
            "
            .to_string(),
            "halt".to_string(),
            "halt".to_string(),
        ];
        let mut soc = case_study(CaseStudyConfig {
            programs: Some(programs),
            ip_samples: 1,
            ..Default::default()
        });
        soc.run_until_halt(100_000);
        assert_eq!(soc.monitor().alert_count(), 1);
        // The public region still holds the boot value (1).
        let ddr = soc.ddr().unwrap();
        assert_eq!(
            ddr.snoop(DDR_PUBLIC_BASE - DDR_BASE, 4),
            &1u32.to_le_bytes()
        );
    }

    #[test]
    fn ip_firewall_is_write_only_word_only() {
        // Redirect the IP to read — impossible for StreamIp, so instead
        // give cpu0 the IP's narrow policy behaviourally: a byte write into
        // the FIFO window from the IP is a format violation. We emulate by
        // checking the policy table directly.
        let p = ip_policies();
        let pol = p.lookup(IP_FIFO_ADDR).unwrap();
        assert_eq!(pol.rwa, Rwa::WriteOnly);
        assert!(pol.adf.allows(secbus_bus::Width::Word));
        assert!(!pol.adf.allows(secbus_bus::Width::Byte));
    }

    #[test]
    fn registers_after_fib_program() {
        let mut soc = case_study(CaseStudyConfig::default());
        soc.run_until_halt(2_000_000);
        let cpu1 = soc.master_as::<Mb32Core>(1).unwrap();
        // fib sequence: r3 ends at fib(14) = 377 (1,1,2,3,…).
        assert_eq!(cpu1.reg(Reg(3)), 377);
    }
}
