//! Figure 1 regenerated: the architecture as text.
//!
//! The paper's Figure 1 shows IPs connected to the system bus through
//! Local Firewalls, the external memory behind the Local Ciphering
//! Firewall, and the internal structure of an LF (LFCB / SB / FI with the
//! `secpol_req`, `address_bus`, `firewall_id`, `alert_signals` and
//! `check_results` signals). [`render_topology`] reproduces that drawing
//! from a live [`Soc`], so the fig1 bench documents the *actual* system
//! that ran, not a hand-maintained picture.

use crate::soc::Soc;
use secbus_noc::{Mesh, NodeId};

/// Render the architecture diagram of a live system.
pub fn render_topology(soc: &Soc) -> String {
    let mut out = String::new();
    out.push_str("Embedded distributed architecture with security enhancements\n");
    out.push_str("(regenerated Figure 1)\n\n");
    out.push_str("  FPGA (trusted boundary) ─────────────────────────────────────┐\n");

    for idx in 0..soc.master_count() {
        let dev = soc.master_device(idx);
        match soc.master_firewall(idx) {
            Some(fw) => out.push_str(&format!(
                "  │  [IP {:<6}] ── [{}  policies={} rules={} gen={}] ──┐\n",
                dev.label(),
                fw.label(),
                fw.config().len(),
                fw.config().total_rules(),
                fw.config().generation(),
            )),
            None => out.push_str(&format!(
                "  │  [IP {:<6}] ── (no firewall) ──────────────────────────┐\n",
                dev.label()
            )),
        }
    }
    out.push_str("  │                                                     System bus\n");
    out.push_str(&format!(
        "  │                                  (arbitration: {})\n",
        soc.bus().arbiter_name()
    ));
    for (label, base, protected) in soc.slave_summary() {
        if label == "ddr" || label.contains("ddr") {
            continue; // drawn below, behind the LCF
        }
        let guard = if protected { "LF" } else { "direct" };
        out.push_str(&format!(
            "  │  bus ── [{guard}] ── [{label} @ {base:#010x}]\n"
        ));
    }
    match soc.lcf() {
        Some(lcf) => {
            out.push_str(&format!(
                "  │  bus ── [{} policies={}] ── ▶ external memory (untrusted)\n",
                lcf.firewall().label(),
                lcf.firewall().config().len(),
            ));
            out.push_str("  │           ├─ Confidentiality Core (AES-128, addr+timestamp CTR)\n");
            out.push_str("  │           └─ Integrity Core (SHA-256 hash tree, on-chip root)\n");
        }
        None => {
            if let Some((label, base, _)) =
                soc.slave_summary().iter().find(|(l, ..)| l.contains("ddr"))
            {
                out.push_str(&format!(
                    "  │  bus ── (no LCF) ── ▶ [{label} @ {base:#010x}] external memory (untrusted)\n"
                ));
            }
        }
    }
    out.push_str("  └──────────────────────────────────────────────────────────────┘\n\n");

    out.push_str("Local Firewall internals (every LF above):\n");
    out.push_str("  IP ⇄ [FI  Firewall Interface]  ⇄ [LFCB  Communication Block] ⇄ bus\n");
    out.push_str("            ▲ check_results              │ secpol_req, address_bus\n");
    out.push_str("            │                            ▼\n");
    out.push_str("       [SB  Security Builder] ⇄ [Configuration Memory (trusted)]\n");
    out.push_str("            │ alert_signals, firewall_id → security monitor\n");
    out
}

/// Render the NoC alternative's live state: the mesh grid with every
/// *detected* link/router failure crossed out, plus the NI enforcement
/// points. Like [`render_topology`], this documents the actual system
/// that ran — the fault map drawn here is the one the adaptive router
/// consulted, not a hand-maintained picture.
pub fn render_noc_topology(mesh: &Mesh) -> String {
    let t = mesh.topology();
    let map = mesh.fault_map();
    let protected = mesh.config().protected;
    let mut out = String::new();
    out.push_str("NoC alternative: 2D mesh with network-interface firewalls\n");
    out.push_str(&format!(
        "({}x{} mesh, {} transport, {} failed link(s) and {} failed router(s) detected)\n\n",
        t.cols,
        t.rows,
        if protected { "fault-tolerant" } else { "bare" },
        map.failed_link_count(),
        map.failed_router_count(),
    ));
    for y in 0..t.rows {
        let mut row = String::from("  ");
        for x in 0..t.cols {
            let n = NodeId::new(x, y);
            if map.router_ok(n) {
                row.push_str(&format!("[{x},{y}]"));
            } else {
                row.push_str("[✗✗✗]");
            }
            if x + 1 < t.cols {
                let e = NodeId::new(x + 1, y);
                let ok = map.link_ok(n, e) && map.link_ok(e, n);
                row.push_str(if ok { "──" } else { "╳╳" });
            }
        }
        row.push('\n');
        out.push_str(&row);
        if y + 1 < t.rows {
            let mut vrow = String::from("  ");
            for x in 0..t.cols {
                let n = NodeId::new(x, y);
                let s = NodeId::new(x, y + 1);
                let ok = map.link_ok(n, s) && map.link_ok(s, n);
                vrow.push_str(if ok { "  │  " } else { "  ╳  " });
                if x + 1 < t.cols {
                    vrow.push_str("  ");
                }
            }
            vrow.push('\n');
            out.push_str(&vrow);
        }
    }
    out.push_str("\nEvery endpoint attaches through a Network Interface:\n");
    out.push_str("  IP ⇄ [NI  APU egress+ingress checks (Fiorin-style) + probes] ⇄ router\n");
    if protected {
        out.push_str("  link layer: flit CRC-32, ack/nack + bounded retransmission\n");
        out.push_str("  fault handling: heartbeat router detection, consecutive-failure\n");
        out.push_str("  link detection, fault-region-aware rerouting (delivery-or-alert)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::casestudy::{case_study, CaseStudyConfig};

    #[test]
    fn topology_mentions_every_component() {
        let soc = case_study(CaseStudyConfig::default());
        let s = super::render_topology(&soc);
        for needle in [
            "cpu0",
            "cpu1",
            "cpu2",
            "ip0",
            "shared-bram",
            "LCF",
            "Confidentiality Core",
            "Integrity Core",
            "Security Builder",
            "Configuration Memory",
            "alert_signals",
            "secpol_req",
        ] {
            assert!(s.contains(needle), "missing {needle} in topology:\n{s}");
        }
    }

    #[test]
    fn noc_topology_draws_detected_failures() {
        use secbus_fault::FaultKind;
        use secbus_noc::{Mesh, NocConfig, Topology};
        use secbus_sim::Cycle;

        let mut clean = Mesh::new(Topology::new(3, 3), NocConfig::default());
        clean.tick(Cycle(0));
        let s = super::render_noc_topology(&clean);
        assert!(s.contains("3x3 mesh"), "{s}");
        assert!(s.contains("bare"), "{s}");
        assert!(!s.contains('✗'), "clean mesh draws no failures:\n{s}");

        let mut mesh = Mesh::new(Topology::new(3, 3), NocConfig::protected());
        mesh.apply_fault(&FaultKind::RouterStuck { node: 4 }, Cycle(0));
        // Run past the heartbeat timeout so the failure is *detected*.
        for c in 0..60 {
            mesh.tick(Cycle(c));
        }
        let s = super::render_noc_topology(&mesh);
        assert!(s.contains("fault-tolerant"), "{s}");
        assert!(s.contains("[✗✗✗]"), "dead router crossed out:\n{s}");
        assert!(s.contains("1 failed router"), "{s}");
        assert!(s.contains("Network Interface"), "{s}");
    }

    #[test]
    fn baseline_topology_shows_no_firewalls() {
        let soc = case_study(CaseStudyConfig {
            security: false,
            ..Default::default()
        });
        let s = super::render_topology(&soc);
        assert!(s.contains("no firewall"));
        assert!(s.contains("no LCF"));
    }
}
