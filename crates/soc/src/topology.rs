//! Figure 1 regenerated: the architecture as text.
//!
//! The paper's Figure 1 shows IPs connected to the system bus through
//! Local Firewalls, the external memory behind the Local Ciphering
//! Firewall, and the internal structure of an LF (LFCB / SB / FI with the
//! `secpol_req`, `address_bus`, `firewall_id`, `alert_signals` and
//! `check_results` signals). [`render_topology`] reproduces that drawing
//! from a live [`Soc`], so the fig1 bench documents the *actual* system
//! that ran, not a hand-maintained picture.

use crate::soc::Soc;

/// Render the architecture diagram of a live system.
pub fn render_topology(soc: &Soc) -> String {
    let mut out = String::new();
    out.push_str("Embedded distributed architecture with security enhancements\n");
    out.push_str("(regenerated Figure 1)\n\n");
    out.push_str("  FPGA (trusted boundary) ─────────────────────────────────────┐\n");

    for idx in 0..soc.master_count() {
        let dev = soc.master_device(idx);
        match soc.master_firewall(idx) {
            Some(fw) => out.push_str(&format!(
                "  │  [IP {:<6}] ── [{}  policies={} rules={} gen={}] ──┐\n",
                dev.label(),
                fw.label(),
                fw.config().len(),
                fw.config().total_rules(),
                fw.config().generation(),
            )),
            None => out.push_str(&format!(
                "  │  [IP {:<6}] ── (no firewall) ──────────────────────────┐\n",
                dev.label()
            )),
        }
    }
    out.push_str("  │                                                     System bus\n");
    out.push_str(&format!(
        "  │                                  (arbitration: {})\n",
        soc.bus().arbiter_name()
    ));
    for (label, base, protected) in soc.slave_summary() {
        if label == "ddr" || label.contains("ddr") {
            continue; // drawn below, behind the LCF
        }
        let guard = if protected { "LF" } else { "direct" };
        out.push_str(&format!(
            "  │  bus ── [{guard}] ── [{label} @ {base:#010x}]\n"
        ));
    }
    match soc.lcf() {
        Some(lcf) => {
            out.push_str(&format!(
                "  │  bus ── [{} policies={}] ── ▶ external memory (untrusted)\n",
                lcf.firewall().label(),
                lcf.firewall().config().len(),
            ));
            out.push_str("  │           ├─ Confidentiality Core (AES-128, addr+timestamp CTR)\n");
            out.push_str("  │           └─ Integrity Core (SHA-256 hash tree, on-chip root)\n");
        }
        None => {
            if let Some((label, base, _)) =
                soc.slave_summary().iter().find(|(l, ..)| l.contains("ddr"))
            {
                out.push_str(&format!(
                    "  │  bus ── (no LCF) ── ▶ [{label} @ {base:#010x}] external memory (untrusted)\n"
                ));
            }
        }
    }
    out.push_str("  └──────────────────────────────────────────────────────────────┘\n\n");

    out.push_str("Local Firewall internals (every LF above):\n");
    out.push_str("  IP ⇄ [FI  Firewall Interface]  ⇄ [LFCB  Communication Block] ⇄ bus\n");
    out.push_str("            ▲ check_results              │ secpol_req, address_bus\n");
    out.push_str("            │                            ▼\n");
    out.push_str("       [SB  Security Builder] ⇄ [Configuration Memory (trusted)]\n");
    out.push_str("            │ alert_signals, firewall_id → security monitor\n");
    out
}

#[cfg(test)]
mod tests {
    use crate::casestudy::{case_study, CaseStudyConfig};

    #[test]
    fn topology_mentions_every_component() {
        let soc = case_study(CaseStudyConfig::default());
        let s = super::render_topology(&soc);
        for needle in [
            "cpu0",
            "cpu1",
            "cpu2",
            "ip0",
            "shared-bram",
            "LCF",
            "Confidentiality Core",
            "Integrity Core",
            "Security Builder",
            "Configuration Memory",
            "alert_signals",
            "secpol_req",
        ] {
            assert!(s.contains(needle), "missing {needle} in topology:\n{s}");
        }
    }

    #[test]
    fn baseline_topology_shows_no_firewalls() {
        let soc = case_study(CaseStudyConfig {
            security: false,
            ..Default::default()
        });
        let s = super::render_topology(&soc);
        assert!(s.contains("no firewall"));
        assert!(s.contains("no LCF"));
    }
}
