//! Run reports: the numbers the benches and examples print.

use std::fmt;

use crate::soc::Soc;
use secbus_sim::Cycle;

/// A summary of one simulation run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Cycles simulated.
    pub cycles: u64,
    /// Wall time at the system clock, in microseconds.
    pub micros: f64,
    /// Transactions granted the bus.
    pub bus_grants: u64,
    /// Cycles the bus data phase was occupied.
    pub bus_busy_cycles: u64,
    /// Cycles more than one master was waiting.
    pub contended_cycles: u64,
    /// Alerts observed by the monitor.
    pub alerts: u64,
    /// IPs administratively blocked.
    pub blocks: u64,
    /// Per-master lines: (label, instructions-or-ops, errors, mean mem latency).
    pub masters: Vec<MasterLine>,
}

/// One master's row in the report.
#[derive(Debug, Clone)]
pub struct MasterLine {
    /// Device label.
    pub label: String,
    /// `core.instructions` for CPUs, `traffic.issued` for generators.
    pub work: u64,
    /// Access errors seen by the device.
    pub errors: u64,
    /// Mean memory-access latency in cycles, if any accesses completed.
    pub mean_mem_latency: Option<f64>,
}

impl Report {
    /// Collect a report from a system that ran `since` until now.
    pub fn collect(soc: &Soc, since: Cycle) -> Report {
        let cycles = soc.now().saturating_since(since);
        let masters = (0..soc.master_count())
            .map(|i| {
                let dev = soc.master_device(i);
                let st = dev.stats();
                let work = st
                    .counter("core.instructions")
                    .max(st.counter("traffic.issued"))
                    .max(st.counter("stream.acked"));
                let errors = st.counter("core.access_errors")
                    + st.counter("traffic.err")
                    + st.counter("stream.rejected");
                let mean_mem_latency = st
                    .histogram("core.mem_latency")
                    .or_else(|| st.histogram("traffic.latency"))
                    .and_then(|h| h.mean());
                MasterLine {
                    label: dev.label().to_owned(),
                    work,
                    errors,
                    mean_mem_latency,
                }
            })
            .collect();
        Report {
            cycles,
            micros: soc.clock().micros(cycles),
            bus_grants: soc.bus().stats().counter("bus.grants"),
            bus_busy_cycles: soc.bus().stats().counter("bus.busy_cycles"),
            contended_cycles: soc.bus().stats().counter("bus.contended_cycles"),
            alerts: soc.monitor().alert_count(),
            blocks: soc.monitor().stats().counter("monitor.blocks"),
            masters,
        }
    }

    /// Bus utilisation (busy cycles / simulated cycles).
    pub fn bus_utilisation(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.bus_busy_cycles as f64 / self.cycles as f64
        }
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ran {} cycles ({:.1} µs @ clock) | bus: {} grants, {:.1}% utilised, {} contended cycles",
            self.cycles,
            self.micros,
            self.bus_grants,
            self.bus_utilisation() * 100.0,
            self.contended_cycles
        )?;
        writeln!(
            f,
            "security: {} alerts, {} IP blocks",
            self.alerts, self.blocks
        )?;
        for m in &self.masters {
            match m.mean_mem_latency {
                Some(lat) => writeln!(
                    f,
                    "  {:<8} work={:<8} errors={:<4} mean-mem-latency={lat:.1} cycles",
                    m.label, m.work, m.errors
                )?,
                None => writeln!(f, "  {:<8} work={:<8} errors={}", m.label, m.work, m.errors)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::casestudy::{case_study, CaseStudyConfig};

    #[test]
    fn report_reflects_a_run() {
        let mut soc = case_study(CaseStudyConfig::default());
        let start = soc.now();
        soc.run_until_halt(2_000_000);
        let r = Report::collect(&soc, start);
        assert!(r.cycles > 0);
        assert!(r.bus_grants > 0);
        assert_eq!(r.alerts, 0);
        assert_eq!(r.masters.len(), 4);
        assert!(r.masters[0].work > 0, "cpu0 executed instructions");
        assert!(r.bus_utilisation() > 0.0 && r.bus_utilisation() <= 1.0);
        let s = r.to_string();
        assert!(s.contains("cpu0") && s.contains("alerts"));
    }
}

/// One firewall's security-relevant counters.
#[derive(Debug, Clone)]
pub struct FirewallAudit {
    /// Display label.
    pub label: String,
    /// Firewall id.
    pub id: u8,
    /// Transactions examined.
    pub checked: u64,
    /// Transactions admitted.
    pub passed: u64,
    /// Transactions discarded.
    pub discarded: u64,
    /// Whether the IP is currently blocked.
    pub blocked: bool,
    /// Configuration Memory generation (bumps on reconfiguration).
    pub generation: u64,
    /// Number of policies in force.
    pub policies: usize,
}

/// One alert line of the audit trail.
#[derive(Debug, Clone)]
pub struct AlertLine {
    /// Detection cycle.
    pub cycle: u64,
    /// Raising firewall.
    pub firewall: u8,
    /// Violation mnemonic.
    pub violation: String,
    /// Offending address.
    pub addr: u32,
    /// "R" or "W".
    pub op: String,
}

/// A serializable security audit of a run.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Cycles simulated when the audit was taken.
    pub now: u64,
    /// Total alerts observed by the monitor.
    pub alerts: u64,
    /// Escalations to a block/quarantine.
    pub blocks: u64,
    /// Per-firewall counters.
    pub firewalls: Vec<FirewallAudit>,
    /// The retained alert trail (most recent last).
    pub trail: Vec<AlertLine>,
}

impl AuditReport {
    /// Render as a JSON value (the `--audit-json` machine interface).
    pub fn to_json(&self) -> secbus_sim::Json {
        use secbus_sim::Json;
        Json::Obj(vec![
            ("now".into(), Json::uint(self.now)),
            ("alerts".into(), Json::uint(self.alerts)),
            ("blocks".into(), Json::uint(self.blocks)),
            (
                "firewalls".into(),
                Json::Arr(
                    self.firewalls
                        .iter()
                        .map(|fw| {
                            Json::Obj(vec![
                                ("label".into(), Json::str(fw.label.clone())),
                                ("id".into(), Json::uint(u64::from(fw.id))),
                                ("checked".into(), Json::uint(fw.checked)),
                                ("passed".into(), Json::uint(fw.passed)),
                                ("discarded".into(), Json::uint(fw.discarded)),
                                ("blocked".into(), Json::Bool(fw.blocked)),
                                ("generation".into(), Json::uint(fw.generation)),
                                ("policies".into(), Json::uint(fw.policies as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "trail".into(),
                Json::Arr(
                    self.trail
                        .iter()
                        .map(|a| {
                            Json::Obj(vec![
                                ("cycle".into(), Json::uint(a.cycle)),
                                ("firewall".into(), Json::uint(u64::from(a.firewall))),
                                ("violation".into(), Json::str(a.violation.clone())),
                                ("addr".into(), Json::uint(u64::from(a.addr))),
                                ("op".into(), Json::str(a.op.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Render as indented text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        use std::fmt::Write as _;
        writeln!(out, "security audit at cycle {}", self.now).unwrap();
        writeln!(
            out,
            "  alerts: {}  escalations: {}",
            self.alerts, self.blocks
        )
        .unwrap();
        for fw in &self.firewalls {
            writeln!(
                out,
                "  [{}] {:<16} checked={:<7} passed={:<7} discarded={:<6} blocked={} gen={} policies={}",
                fw.id, fw.label, fw.checked, fw.passed, fw.discarded, fw.blocked, fw.generation,
                fw.policies
            )
            .unwrap();
        }
        if !self.trail.is_empty() {
            writeln!(out, "  alert trail (up to last {}):", self.trail.len()).unwrap();
            for a in &self.trail {
                writeln!(
                    out,
                    "    cycle {:>8}  fw {}  {}  {} {:#010x}",
                    a.cycle, a.firewall, a.violation, a.op, a.addr
                )
                .unwrap();
            }
        }
        out
    }
}
