//! Open-loop overload for the assembled SoC (the bus half of S-19).
//!
//! An [`OpenLoopMaster`] floods the external DDR with a fixed arrival
//! rate that does not slow down when the fabric does — the scenario
//! closed-loop IPs can never produce. Three robustness mechanisms are
//! exercised at once:
//!
//! * **admission control** — the master's bounded bus request queue
//!   refuses excess arrivals with a typed [`BusError::Overload`] response
//!   and a counted [`Violation::Shed`] alert;
//! * **graceful degradation** — sustained queue pressure steps the LCF's
//!   verify regions down the safe posture lattice (verify → cipher-only)
//!   until the burst drains;
//! * **conservation** — every issued access resolves as completed, shed
//!   or errored; nothing is silently lost and the drain is bounded.
//!
//! The run is a pure function of its config: same seed → identical
//! [`SocOverloadReport`] (the byte-identical-JSON seam the soak leans on).
//!
//! [`BusError::Overload`]: secbus_bus::BusError::Overload
//! [`Violation::Shed`]: secbus_core::Violation::Shed

use secbus_bus::{AddrRange, BusConfig};
use secbus_core::{AdfSet, ConfidentialityMode, ConfigMemory, IntegrityMode, Rwa, SecurityPolicy};
use secbus_cpu::{OpenLoopConfig, OpenLoopMaster};
use secbus_mem::ExternalDdr;
use secbus_sim::{SimCore, SimRng};

use crate::degrade::DegradeConfig;
use crate::soc::SocBuilder;

/// Base of the flooded DDR window.
const DDR_BASE: u32 = 0x8000_0000;
/// Bytes of DDR actually targeted (and, protected, integrity-verified).
const WINDOW: u32 = 0x100;

/// One SoC overload cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SocOverloadConfig {
    /// Arrivals per cycle during the issue window.
    pub per_tick: u32,
    /// Issue window, in cycles.
    pub cycles: u64,
    /// Grace period for the backlog to resolve after the window closes.
    pub drain_cycles: u64,
    /// Bound on the master's bus request queue — the admission seam.
    pub master_queue_capacity: usize,
    /// Protected: LF on the source, ciphering+integrity LCF on the DDR.
    /// Bare: straight to the bus (refusals are still typed and counted).
    pub protected: bool,
    /// Brownout controller, when armed (protected runs only — without an
    /// LCF there is no posture to degrade).
    pub degrade: Option<DegradeConfig>,
    /// Seed for the source's address/op stream.
    pub seed: u64,
}

impl Default for SocOverloadConfig {
    fn default() -> Self {
        SocOverloadConfig {
            per_tick: 2,
            cycles: 2_000,
            drain_cycles: 20_000,
            master_queue_capacity: 8,
            protected: true,
            degrade: Some(DegradeConfig::default()),
            seed: 1,
        }
    }
}

/// What one SoC overload cell did. `PartialEq` so the soak can check a
/// parallel sweep against its serial reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocOverloadReport {
    /// Whether the cell ran protected.
    pub protected: bool,
    /// Open-loop arrivals offered to the port.
    pub issued: u64,
    /// Arrivals that completed OK.
    pub completed: u64,
    /// Arrivals refused at admission (typed, counted, alerted).
    pub shed: u64,
    /// Any other error outcome (should be zero in this workload).
    pub errors: u64,
    /// Shed alerts the Security Monitor observed (protected runs).
    pub shed_alerts: u64,
    /// Brownout engagements / releases.
    pub degrade_enters: u64,
    /// See `degrade_enters`.
    pub degrade_exits: u64,
    /// Reads that skipped the IC walk while degraded.
    pub brownout_skipped_verifies: u64,
    /// Whether the brownout was still engaged after the drain (a gate:
    /// must be false — degradation must recover).
    pub still_degraded: bool,
    /// issued == completed + shed + errors (zero silent loss).
    pub conservation_ok: bool,
    /// Conservation failed or the backlog never resolved.
    pub wedged: bool,
    /// Full metrics snapshot (parseable JSON).
    pub metrics_json: String,
}

/// Run one SoC overload cell.
pub fn run_soc_overload(cfg: &SocOverloadConfig) -> SocOverloadReport {
    run_soc_overload_with_core(cfg, SimCore::from_env())
}

/// [`run_soc_overload`] with an explicit simulator core, so equivalence
/// tests can compare both cores without mutating process environment.
pub fn run_soc_overload_with_core(cfg: &SocOverloadConfig, core: SimCore) -> SocOverloadReport {
    let rng = SimRng::new(cfg.seed).derive("soc.overload");
    let source = OpenLoopMaster::new(
        "flood",
        OpenLoopConfig {
            window: (DDR_BASE, WINDOW),
            // Read-heavy: reads exercise the LCF verify path the
            // brownout relieves.
            read_ratio: 0.75,
            per_tick: cfg.per_tick,
            until: cfg.cycles,
        },
        rng,
    );
    let mut b = SocBuilder::new().bus_config(BusConfig {
        master_queue_capacity: cfg.master_queue_capacity,
        ..BusConfig::default()
    });
    if let Some(d) = cfg.degrade {
        b = b.degrade(d);
    }
    let ddr = ExternalDdr::new(0x1000);
    let range = AddrRange::new(DDR_BASE, 0x1000);
    let mut soc = if cfg.protected {
        let lf = ConfigMemory::with_policies(vec![SecurityPolicy::internal(
            1,
            range,
            Rwa::ReadWrite,
            AdfSet::ALL,
        )])
        .expect("one policy cannot overlap");
        let lcf = ConfigMemory::with_policies(vec![SecurityPolicy::external(
            7,
            AddrRange::new(DDR_BASE, WINDOW),
            Rwa::ReadWrite,
            AdfSet::ALL,
            ConfidentialityMode::Encrypt,
            IntegrityMode::Verify,
            Some(*b"secbus-ddr-key!!"),
        )])
        .expect("one policy cannot overlap");
        b.add_protected_master(Box::new(source), lf)
            .set_ddr("ddr", range, ddr, Some(lcf))
            .build()
    } else {
        b.add_master(Box::new(source))
            .set_ddr("ddr", range, ddr, None)
            .build()
    };
    soc.set_sim_core(core);
    soc.run(cfg.cycles + cfg.drain_cycles);

    let skipped = soc
        .lcf()
        .map(|l| l.stats().counter("lcf.brownout_skipped_verifies"))
        .unwrap_or(0);
    let still_degraded = soc.degraded();
    let degrade_enters = soc.stats().counter("soc.degrade_enters");
    let degrade_exits = soc.stats().counter("soc.degrade_exits");
    let shed_alerts = soc
        .master_firewall(0)
        .map(|f| f.stats().counter("fw.violation.shed"))
        .unwrap_or(0);
    let metrics_json = soc.metrics_json();
    let f = soc
        .master_as::<OpenLoopMaster>(0)
        .expect("flood source present");
    let conservation_ok = f.resolved();
    SocOverloadReport {
        protected: cfg.protected,
        issued: f.issued(),
        completed: f.completed(),
        shed: f.shed(),
        errors: f.errors(),
        shed_alerts,
        degrade_enters,
        degrade_exits,
        brownout_skipped_verifies: skipped,
        still_degraded,
        conservation_ok,
        wedged: !conservation_ok || still_degraded,
        metrics_json,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protected_overload_sheds_alerts_degrades_and_recovers() {
        let cfg = SocOverloadConfig {
            degrade: Some(DegradeConfig {
                high_watermark: 6,
                low_watermark: 0,
                enter_after: 4,
                exit_after: 16,
            }),
            ..SocOverloadConfig::default()
        };
        let r = run_soc_overload(&cfg);
        assert!(r.conservation_ok, "no silent loss: {r:?}");
        assert!(!r.wedged);
        assert!(r.shed > 0, "2/cycle into an 8-deep queue must shed");
        assert_eq!(r.shed_alerts, r.shed, "every shed raised an alert");
        assert_eq!(r.degrade_enters, 1);
        assert_eq!(r.degrade_exits, 1);
        assert!(r.brownout_skipped_verifies > 0);
        assert!(!r.still_degraded, "drain must release the brownout");
        assert_eq!(r.errors, 0);
    }

    #[test]
    fn bare_overload_still_counts_every_refusal() {
        let cfg = SocOverloadConfig {
            protected: false,
            degrade: None,
            ..SocOverloadConfig::default()
        };
        let r = run_soc_overload(&cfg);
        assert!(r.conservation_ok);
        assert!(r.shed > 0);
        assert_eq!(r.shed_alerts, 0, "no LF, no alert channel");
        assert_eq!(r.degrade_enters, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SocOverloadConfig::default();
        assert_eq!(run_soc_overload(&cfg), run_soc_overload(&cfg));
        let other = SocOverloadConfig { seed: 9, ..cfg };
        assert_ne!(
            run_soc_overload(&other).metrics_json,
            run_soc_overload(&cfg).metrics_json
        );
    }

    #[test]
    fn a_queue_deep_enough_never_sheds() {
        let cfg = SocOverloadConfig {
            per_tick: 1,
            cycles: 200,
            master_queue_capacity: 4_096,
            degrade: None,
            ..SocOverloadConfig::default()
        };
        let r = run_soc_overload(&cfg);
        assert_eq!(r.shed, 0, "capacity above the backlog never refuses");
        assert!(r.conservation_ok);
    }
}
