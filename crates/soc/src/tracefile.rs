//! Human-readable bus-trace listings.
//!
//! The bus trace (every transaction *granted* the shared medium) is the
//! system's flight recorder: the containment tests assert against it, and
//! `secbus run --trace` prints it for debugging workloads and attacks.

use std::fmt::Write as _;

use secbus_bus::Op;

use crate::soc::Soc;

/// Render the retained bus trace, one granted transaction per line.
pub fn render_trace(soc: &Soc) -> String {
    let trace = soc.bus().trace();
    let mut out = String::new();
    writeln!(
        out,
        "bus trace: {} retained of {} granted ({} evicted)",
        trace.len(),
        trace.total(),
        trace.dropped()
    )
    .unwrap();
    writeln!(
        out,
        "{:>10} {:>3} {:>2} {:>12} {:>5} {:>5} {:>10}",
        "cycle", "mst", "op", "addr", "width", "burst", "data"
    )
    .unwrap();
    for (cycle, t) in trace.iter() {
        writeln!(
            out,
            "{:>10} {:>3} {:>2} {:#012x} {:>5} {:>5} {:#010x}",
            cycle.get(),
            t.master.0,
            match t.op {
                Op::Read => "R",
                Op::Write => "W",
            },
            t.addr,
            t.width.bits(),
            t.burst,
            t.data
        )
        .unwrap();
    }
    out
}

/// Summarise the trace: per-master grant counts and read/write mix.
pub fn trace_summary(soc: &Soc) -> String {
    let trace = soc.bus().trace();
    let mut per_master: Vec<(u64, u64)> = vec![(0, 0); soc.master_count()];
    for (_, t) in trace.iter() {
        let slot = &mut per_master[t.master.0 as usize];
        match t.op {
            Op::Read => slot.0 += 1,
            Op::Write => slot.1 += 1,
        }
    }
    let mut out = String::new();
    writeln!(out, "{:<10} {:>8} {:>8}", "master", "reads", "writes").unwrap();
    for (i, (r, w)) in per_master.iter().enumerate() {
        writeln!(
            out,
            "{:<10} {:>8} {:>8}",
            soc.master_device(i).label(),
            r,
            w
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::casestudy::{case_study, CaseStudyConfig};

    #[test]
    fn trace_lists_granted_transactions() {
        let mut soc = case_study(CaseStudyConfig::default());
        soc.run(2_000);
        let s = super::render_trace(&soc);
        assert!(s.contains("bus trace:"));
        assert!(s.contains(" W "), "writes appear:\n{s}");
        // Addresses belong to the case-study map.
        assert!(s.contains("0x0020") || s.contains("0x0080"), "{s}");
    }

    #[test]
    fn summary_accounts_every_master() {
        let mut soc = case_study(CaseStudyConfig::default());
        soc.run_until_halt(5_000_000);
        let s = super::trace_summary(&soc);
        for label in ["cpu0", "cpu1", "cpu2", "ip0"] {
            assert!(s.contains(label), "{s}");
        }
    }
}
