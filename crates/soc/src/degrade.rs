//! Overload hysteresis for graceful degradation ("brownout").
//!
//! The SecurityMonitor watches a fabric-pressure signal (total queued bus
//! requests) and, under *sustained* pressure, steps protected regions
//! down the declared-safe posture lattice
//! ([`secbus_core::brownout_posture`]: integrity-verify → cipher-only,
//! never to bypass). Two-sided hysteresis keeps the controller from
//! flapping: entry requires `enter_after` consecutive cycles at or above
//! the high watermark, exit requires `exit_after` consecutive cycles at
//! or below the low watermark — so a burst must really drain before the
//! full posture resumes, and a single spike never triggers a brownout.
//!
//! The state machine is a plain pure struct so the "degrade mode always
//! exits after drain" property is testable without building a SoC.

/// Watermarks and dwell times for the brownout controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradeConfig {
    /// Pressure at or above this arms/holds the entry counter.
    pub high_watermark: u64,
    /// Pressure at or below this arms/holds the exit counter.
    pub low_watermark: u64,
    /// Consecutive high-pressure cycles before the brownout engages.
    pub enter_after: u64,
    /// Consecutive low-pressure cycles before it releases.
    pub exit_after: u64,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        DegradeConfig {
            high_watermark: 48,
            low_watermark: 4,
            enter_after: 16,
            exit_after: 64,
        }
    }
}

/// A posture change the controller decided this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// Engage the cheaper posture.
    Enter,
    /// Restore the full posture; `cycles` is how long the brownout held.
    Exit {
        /// Brownout duration in cycles.
        cycles: u64,
    },
}

/// Two-sided hysteresis over a scalar pressure signal.
#[derive(Debug, Clone)]
pub struct Hysteresis {
    cfg: DegradeConfig,
    above: u64,
    below: u64,
    /// Cycle the active brownout began, if one is active.
    since: Option<u64>,
}

impl Hysteresis {
    /// A released controller with the given thresholds. Watermarks are
    /// normalized so `low <= high` (a config with low > high would
    /// otherwise oscillate every cycle).
    pub fn new(cfg: DegradeConfig) -> Self {
        let cfg = DegradeConfig {
            low_watermark: cfg.low_watermark.min(cfg.high_watermark),
            ..cfg
        };
        Hysteresis {
            cfg,
            above: 0,
            below: 0,
            since: None,
        }
    }

    /// Whether the brownout posture is currently engaged.
    pub fn active(&self) -> bool {
        self.since.is_some()
    }

    /// Feed one cycle's pressure reading; returns the transition to
    /// apply, if any. `now` must be non-decreasing across calls.
    pub fn observe(&mut self, pressure: u64, now: u64) -> Option<Transition> {
        match self.since {
            None => {
                if pressure >= self.cfg.high_watermark {
                    self.above += 1;
                    if self.above >= self.cfg.enter_after.max(1) {
                        self.above = 0;
                        self.since = Some(now);
                        return Some(Transition::Enter);
                    }
                } else {
                    self.above = 0;
                }
                None
            }
            Some(since) => {
                if pressure <= self.cfg.low_watermark {
                    self.below += 1;
                    if self.below >= self.cfg.exit_after.max(1) {
                        self.below = 0;
                        self.since = None;
                        return Some(Transition::Exit {
                            cycles: now.saturating_sub(since),
                        });
                    }
                } else {
                    self.below = 0;
                }
                None
            }
        }
    }

    /// Event-core seam: the cycle at which [`Hysteresis::observe`]
    /// would first return a transition if the pressure reading stayed
    /// exactly `pressure` from cycle `now` onward, or `None` if no
    /// transition would ever fire at that constant reading. The
    /// fast-forward path may only skip while pressure is provably
    /// constant (nothing issues, grants or completes), and must stop
    /// at this cycle so the transition fires on a real tick.
    pub fn next_transition(&self, pressure: u64, now: u64) -> Option<u64> {
        match self.since {
            None if pressure >= self.cfg.high_watermark => {
                let needed = self.cfg.enter_after.max(1) - self.above;
                Some(now + needed - 1)
            }
            Some(_) if pressure <= self.cfg.low_watermark => {
                let needed = self.cfg.exit_after.max(1) - self.below;
                Some(now + needed - 1)
            }
            _ => None,
        }
    }

    /// Event-core seam: apply `k` cycles of [`Hysteresis::observe`] at
    /// a constant `pressure` reading in one step. The caller must have
    /// checked [`Hysteresis::next_transition`] first — the span must
    /// not contain a transition (debug-asserted). State afterwards is
    /// identical to `k` individual `observe` calls.
    pub fn advance(&mut self, pressure: u64, k: u64) {
        if k == 0 {
            return;
        }
        match self.since {
            None => {
                if pressure >= self.cfg.high_watermark {
                    self.above += k;
                    debug_assert!(
                        self.above < self.cfg.enter_after.max(1),
                        "advance skipped an Enter transition"
                    );
                } else {
                    self.above = 0;
                }
            }
            Some(_) => {
                if pressure <= self.cfg.low_watermark {
                    self.below += k;
                    debug_assert!(
                        self.below < self.cfg.exit_after.max(1),
                        "advance skipped an Exit transition"
                    );
                } else {
                    self.below = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DegradeConfig {
        DegradeConfig {
            high_watermark: 10,
            low_watermark: 2,
            enter_after: 3,
            exit_after: 5,
        }
    }

    #[test]
    fn a_single_spike_does_not_enter() {
        let mut h = Hysteresis::new(cfg());
        assert_eq!(h.observe(100, 0), None);
        assert_eq!(h.observe(0, 1), None);
        assert_eq!(h.observe(100, 2), None, "counter must reset on the dip");
        assert!(!h.active());
    }

    #[test]
    fn sustained_pressure_enters_and_drain_exits_with_duration() {
        let mut h = Hysteresis::new(cfg());
        assert_eq!(h.observe(20, 0), None);
        assert_eq!(h.observe(20, 1), None);
        assert_eq!(h.observe(20, 2), Some(Transition::Enter));
        assert!(h.active());
        // Pressure between the watermarks holds the brownout.
        assert_eq!(h.observe(5, 3), None);
        // Five consecutive low readings release it.
        for c in 4..8 {
            assert_eq!(h.observe(0, c), None);
        }
        assert_eq!(h.observe(0, 8), Some(Transition::Exit { cycles: 6 }));
        assert!(!h.active());
    }

    #[test]
    fn exit_counter_resets_on_a_mid_drain_burst() {
        let mut h = Hysteresis::new(cfg());
        for c in 0..3 {
            h.observe(20, c);
        }
        assert!(h.active());
        for c in 3..7 {
            assert_eq!(h.observe(0, c), None);
        }
        // One more high reading wipes the progress toward exit...
        assert_eq!(h.observe(20, 7), None);
        assert!(h.active());
        // ...so five fresh low cycles are needed again.
        for c in 8..12 {
            assert_eq!(h.observe(0, c), None);
        }
        assert!(matches!(h.observe(0, 12), Some(Transition::Exit { .. })));
    }

    #[test]
    fn advance_matches_repeated_observe_at_constant_pressure() {
        // Property: from any reachable state, `advance(p, k)` over a
        // transition-free span leaves the same state as k `observe(p)`
        // calls — the bulk replay the event core uses when skipping.
        for seed in 0..100u64 {
            let mut h = Hysteresis::new(cfg());
            let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            let mut now = 0u64;
            // Scramble into an arbitrary reachable state.
            for _ in 0..(seed % 20) {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                h.observe(x % 40, now);
                now += 1;
            }
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let pressure = x % 40;
            // The largest transition-free span at this constant reading.
            let k = match h.next_transition(pressure, now) {
                Some(at) => at - now, // stop one cycle short of the transition
                None => 1 + x % 32,
            };
            let mut bulk = h.clone();
            bulk.advance(pressure, k);
            for c in now..now + k {
                assert_eq!(
                    h.observe(pressure, c),
                    None,
                    "seed {seed} span had a transition"
                );
            }
            assert_eq!(h.above, bulk.above, "seed {seed}");
            assert_eq!(h.below, bulk.below, "seed {seed}");
            assert_eq!(h.since, bulk.since, "seed {seed}");
            // And the predicted transition cycle is exactly when observe
            // fires one.
            if let Some(at) = h.next_transition(pressure, now + k) {
                for c in now + k..at {
                    assert_eq!(h.observe(pressure, c), None);
                }
                assert!(h.observe(pressure, at).is_some(), "seed {seed}");
            }
        }
    }

    #[test]
    fn always_exits_after_a_real_drain() {
        // Property: whatever pressure history happened before, exit_after
        // cycles of zero pressure always release the brownout.
        for seed in 0..50u64 {
            let mut h = Hysteresis::new(cfg());
            let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            for c in 0..200u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                h.observe(x % 40, c);
            }
            for c in 200..(200 + cfg().exit_after) {
                h.observe(0, c);
            }
            assert!(!h.active(), "seed {seed} left the brownout stuck");
        }
    }
}
