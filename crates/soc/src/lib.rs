//! # secbus-soc — the assembled MPSoC
//!
//! Glues the substrates into the paper's architecture (Figure 1): IPs
//! behind Local Firewalls on a shared bus, the external DDR behind the
//! Local Ciphering Firewall, alert signals into a security monitor, and a
//! reconfiguration controller on the side.
//!
//! * [`SocBuilder`] / [`Soc`] — construction and the cycle loop.
//! * [`case_study`] — the paper's evaluation platform: 3 MB32 cores, one
//!   shared BRAM, one external DDR, one dedicated IP.
//! * [`topology`] — renders Figure 1 as text from a live system.
//! * [`report`] — collects the numbers the benches print.
//!
//! The enforcement semantics follow the paper §IV-B-1 exactly:
//! **writes are checked before reaching the bus** (the request only
//! becomes eligible for arbitration after the 12-cycle Security Builder
//! pass, and a violating write never appears on the bus), while **read
//! data is checked before reaching the IP** (the response is held for the
//! check and replaced by a discard on violation).

pub mod casestudy;
pub mod degrade;
pub mod overload;
pub mod reconfig_run;
pub mod report;
pub mod soc;
pub mod topology;
pub mod tracefile;
pub mod workloads;

pub use casestudy::{
    case_study, CaseResilience, CaseStudyConfig, DDR_BASE, DDR_CIPHER_BASE, DDR_PRIVATE_BASE,
    DDR_PUBLIC_BASE, IP_FIFO_ADDR, SHARED_BRAM_BASE,
};
pub use degrade::{DegradeConfig, Hysteresis, Transition};
pub use overload::{
    run_soc_overload, run_soc_overload_with_core, SocOverloadConfig, SocOverloadReport,
};
pub use reconfig_run::{run_reconfig_soak, ReconfigSoakConfig, ReconfigSoakReport, SwapSchedule};
pub use report::{AlertLine, AuditReport, FirewallAudit, Report};
pub use soc::{BuildError, RetryPolicy, Soc, SocBuilder};
pub use topology::{render_noc_topology, render_topology};
pub use tracefile::{render_trace, trace_summary};
