//! Stepped-vs-event core state identity at the full-SoC level.
//!
//! The event core is an optimisation, not a model change: for any seed,
//! workload and fault plan the two cores must leave the SoC in the same
//! state — same cycle count, same metrics snapshot (every counter and
//! histogram, rendered byte-for-byte), same memory contents. These tests
//! pin that contract across the interesting regimes: fault storms with
//! the full resilience stack, idle-heavy halting runs (where the
//! fast-forward does the most work), scheduled reconfiguration epochs,
//! and brownout hysteresis under open-loop flood.

use secbus_bus::AddrRange;
use secbus_core::{AdfSet, PolicyUpdate, Rwa, SecurityPolicy};
use secbus_fault::{FaultPlan, FaultRates, FaultSpec};
use secbus_sim::SimCore;
use secbus_soc::casestudy::{CPU0_PROGRAM, CPU1_PROGRAM, CPU2_PROGRAM};
use secbus_soc::{
    case_study, run_soc_overload_with_core, CaseResilience, CaseStudyConfig, DegradeConfig, Soc,
    SocOverloadConfig, DDR_PUBLIC_BASE, SHARED_BRAM_BASE,
};

/// Rewrite a core program to loop forever instead of halting, so memory
/// traffic (and therefore fault exposure) persists for the whole run.
fn looping(src: &str) -> String {
    format!("top:\n{}", src.replace("halt", "beq  r0, r0, top"))
}

/// The chaos-soak platform: looping cores, streaming IPs, the full
/// resilience stack.
fn chaos_soc() -> Soc {
    case_study(CaseStudyConfig {
        programs: Some([
            looping(CPU0_PROGRAM),
            looping(CPU1_PROGRAM),
            looping(CPU2_PROGRAM),
        ]),
        monitor_threshold: 8,
        ip_samples: 0,
        resilience: Some(CaseResilience {
            rekey: true,
            ..CaseResilience::default()
        }),
        ..CaseStudyConfig::default()
    })
}

/// Run `soc` for `cycles` under `core` and return the comparable state:
/// (final cycle, rendered metrics, BRAM contents).
fn run_state(mut soc: Soc, plan: FaultPlan, core: SimCore, cycles: u64) -> (u64, String, Vec<u8>) {
    soc.set_sim_core(core);
    soc.attach_fault_plan(plan);
    soc.run(cycles);
    (
        soc.now().get(),
        soc.metrics_json(),
        soc.bram_contents().map(<[u8]>::to_vec).unwrap_or_default(),
    )
}

#[test]
fn chaos_soak_state_is_identical_across_cores_and_seeds() {
    const CYCLES: u64 = 30_000;
    let spec = FaultSpec {
        duration: CYCLES,
        ddr_bytes: 0x10_0000,
        firewalls: 5,
        slaves: 2,
        noc_nodes: 0,
        rates: FaultRates::uniform(12.0),
    };
    for seed in [3u64, 11, 0xC4A05] {
        let plan = FaultPlan::generate(seed, &spec);
        let stepped = run_state(chaos_soc(), plan.clone(), SimCore::Stepped, CYCLES);
        let event = run_state(chaos_soc(), plan, SimCore::Event, CYCLES);
        assert_eq!(stepped, event, "seed {seed}");
    }
}

#[test]
fn idle_heavy_halting_run_matches_and_halts_at_the_same_cycle() {
    // Halting programs + finite IP streams: the tail of the run is pure
    // idle, which the event core must skip without disturbing anything.
    let build = || case_study(CaseStudyConfig::default());
    let mut stepped = build();
    let mut event = build();
    stepped.set_sim_core(SimCore::Stepped);
    event.set_sim_core(SimCore::Event);
    let used_s = stepped.run_until_halt(200_000);
    let used_e = event.run_until_halt(200_000);
    assert_eq!(used_s, used_e, "halt detected at the same cycle");
    assert_eq!(stepped.now(), event.now());
    assert_eq!(stepped.metrics_json(), event.metrics_json());
    assert_eq!(stepped.bram_contents(), event.bram_contents());
}

#[test]
fn fast_forward_never_skips_scheduled_fault_epoch_or_watchdog_cycles() {
    // A sparse fault plan and a scheduled policy epoch land in the
    // middle of long idle stretches; the watchdog stack is armed. The
    // event core must stop at every one of those cycles.
    use secbus_fault::{FaultEvent, FaultKind};
    let sparse = FaultPlan::new(vec![
        FaultEvent {
            at: secbus_sim::Cycle(40_000),
            kind: FaultKind::DdrBitFlip {
                offset: 0x10,
                bit: 3,
            },
        },
        FaultEvent {
            at: secbus_sim::Cycle(90_000),
            kind: FaultKind::DdrBitFlip {
                offset: 0x20,
                bit: 5,
            },
        },
    ]);
    let build = || {
        case_study(CaseStudyConfig {
            resilience: Some(CaseResilience::default()),
            ..CaseStudyConfig::default()
        })
    };
    let run = |core: SimCore| {
        let mut soc = build();
        soc.set_sim_core(core);
        soc.attach_fault_plan(sparse.clone());
        let fw = soc
            .master_firewall_id(0)
            .expect("case study master 0 has a firewall");
        let commit_at = soc.schedule_reconfig(PolicyUpdate {
            firewall: fw,
            policies: vec![
                SecurityPolicy::internal(
                    1,
                    AddrRange::new(SHARED_BRAM_BASE, 0x100),
                    Rwa::ReadWrite,
                    AdfSet::ALL,
                ),
                SecurityPolicy::internal(
                    2,
                    AddrRange::new(DDR_PUBLIC_BASE, 0x1000),
                    Rwa::ReadOnly,
                    AdfSet::ALL,
                ),
            ],
        });
        soc.run(120_000);
        assert_eq!(
            soc.fault_plan().remaining(),
            0,
            "every planned fault cycle was reached"
        );
        assert!(commit_at.get() < 120_000);
        (soc.now().get(), soc.metrics_json())
    };
    assert_eq!(run(SimCore::Stepped), run(SimCore::Event));
}

#[test]
fn brownout_hysteresis_is_identical_across_cores() {
    // The degrade controller observes bus pressure every cycle; the
    // event core replays skipped observations in bulk. Enter/exit
    // transitions must land on the same cycles.
    let cfg = SocOverloadConfig {
        degrade: Some(DegradeConfig {
            high_watermark: 6,
            low_watermark: 0,
            enter_after: 4,
            exit_after: 16,
        }),
        ..SocOverloadConfig::default()
    };
    let stepped = run_soc_overload_with_core(&cfg, SimCore::Stepped);
    let event = run_soc_overload_with_core(&cfg, SimCore::Event);
    assert_eq!(stepped, event);
    assert_eq!(event.degrade_enters, 1);
    assert_eq!(event.degrade_exits, 1);
}
