//! # secbus-baseline — the centralized comparator (SECA-style)
//!
//! The paper positions its contribution against centralized schemes
//! (§II): Coburn et al.'s SECA puts a thin Security Enforcement Interface
//! (SEI) at each IP and a single Security Enforcement Module (SEM) that
//! "manages the security of the system and controls all SEIs". To measure
//! the claim that *distributed beats centralized on latency and
//! containment*, this crate implements the centralized architecture at
//! the same level of abstraction as the rest of the workspace:
//!
//! * [`sem::CentralManager`] — a serialized checker: every access request
//!   from every IP must travel to the SEM (a bus round trip), wait in its
//!   FIFO, be evaluated, and travel back. Under load the queue grows;
//!   with one IP misbehaving, *everyone's* checks queue behind the junk.
//! * [`compare`] — drives the distributed and centralized models with the
//!   *same* arrival process and reports mean/percentile verdict latency
//!   and the interconnect traffic each scheme adds.
//! * [`sem::centralized_area`] — the area counterpart: one big SEM that
//!   stores every IP's rules, plus thin SEIs.

pub mod compare;
pub mod sem;

pub use compare::{compare_check_latency, ComparisonRow};
pub use sem::{centralized_area, CentralManager, SemConfig};
