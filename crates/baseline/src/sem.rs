//! The centralized Security Enforcement Module.

use std::collections::VecDeque;

use secbus_area::model::PER_RULE;
use secbus_area::{Resources, DEFAULT_RULES_PER_FIREWALL};
use secbus_sim::{Cycle, Stats};

/// Timing of the centralized scheme.
#[derive(Debug, Clone, Copy)]
pub struct SemConfig {
    /// Cycles to evaluate one request at the SEM (same rule engine as a
    /// Security Builder: 12).
    pub check_cycles: u64,
    /// One-way interconnect trip between an SEI and the SEM (grant +
    /// transfer on the shared medium).
    pub bus_trip_cycles: u64,
    /// FIFO capacity (requests beyond this are stalled at the SEI).
    pub queue_capacity: usize,
}

impl Default for SemConfig {
    fn default() -> Self {
        SemConfig {
            check_cycles: 12,
            bus_trip_cycles: 4,
            queue_capacity: 64,
        }
    }
}

/// The SEM: a single serialized rule engine shared by every IP.
#[derive(Debug)]
pub struct CentralManager {
    config: SemConfig,
    /// Completion time of the evaluation currently occupying the engine.
    busy_until: u64,
    /// Requests waiting for the engine: (arrival at SEM, requester).
    queue: VecDeque<u64>,
    stats: Stats,
}

impl CentralManager {
    /// A fresh SEM.
    pub fn new(config: SemConfig) -> Self {
        CentralManager {
            config,
            busy_until: 0,
            queue: VecDeque::new(),
            stats: Stats::new(),
        }
    }

    /// Submit a check request issued by an SEI at `now`; returns the cycle
    /// at which the verdict arrives back at the SEI, or `None` if the SEM
    /// queue is full (the SEI must retry — counted as a stall).
    pub fn admit(&mut self, now: Cycle) -> Option<Cycle> {
        if self.queue.len() >= self.config.queue_capacity {
            self.stats.incr("sem.stalls");
            return None;
        }
        let arrival = now.get() + self.config.bus_trip_cycles;
        self.queue.push_back(arrival);
        // Serialized service: the engine starts this request when it is
        // both free and the request has arrived.
        let start = self.busy_until.max(arrival);
        let done = start + self.config.check_cycles;
        self.busy_until = done;
        self.queue.pop_front();
        let verdict_at = done + self.config.bus_trip_cycles;
        self.stats.incr("sem.checked");
        self.stats
            .record("sem.verdict_latency", verdict_at - now.get());
        Some(Cycle(verdict_at))
    }

    /// How deep the engine backlog currently is, in cycles past `now`.
    pub fn backlog(&self, now: Cycle) -> u64 {
        self.busy_until.saturating_sub(now.get())
    }

    /// SEM statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Interconnect transactions added per checked access (request +
    /// verdict) — the centralized scheme's bandwidth tax.
    pub fn bus_transactions_per_check(&self) -> u64 {
        2
    }
}

/// Thin per-IP Security Enforcement Interface (forwarding logic only).
pub const SEI_COST: Resources = Resources::new(96, 210, 180, 0);
/// The SEM's fixed control plane (FIFO, response routing, CSRs).
pub const SEM_BASE_COST: Resources = Resources::new(540, 980, 860, 1);

/// Area of the centralized scheme protecting `ips` IPs, each contributing
/// `rules_per_ip` rules that all live in the SEM's single table.
pub fn centralized_area(ips: u32, rules_per_ip: u32) -> Resources {
    let total_rules = ips * rules_per_ip;
    // The SEM's rule store grows with the TOTAL rule count, not per-IP:
    // that is the scaling disadvantage of centralization.
    let rule_cost = PER_RULE * total_rules.saturating_sub(DEFAULT_RULES_PER_FIREWALL);
    SEM_BASE_COST + rule_cost + SEI_COST * ips
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_request_pays_two_trips_plus_check() {
        let mut sem = CentralManager::new(SemConfig::default());
        let verdict = sem.admit(Cycle(100)).unwrap();
        // 4 (to SEM) + 12 (check) + 4 (back) = 20.
        assert_eq!(verdict, Cycle(120));
    }

    #[test]
    fn concurrent_requests_serialize() {
        let mut sem = CentralManager::new(SemConfig::default());
        let v1 = sem.admit(Cycle(0)).unwrap();
        let v2 = sem.admit(Cycle(0)).unwrap();
        let v3 = sem.admit(Cycle(0)).unwrap();
        assert_eq!(v1, Cycle(20));
        assert_eq!(v2, Cycle(32), "queued behind v1's engine time");
        assert_eq!(v3, Cycle(44));
    }

    #[test]
    fn idle_engine_recovers() {
        let mut sem = CentralManager::new(SemConfig::default());
        let _ = sem.admit(Cycle(0));
        // Much later, the engine is idle again: same latency as fresh.
        let v = sem.admit(Cycle(1_000)).unwrap();
        assert_eq!(v, Cycle(1_020));
        assert_eq!(sem.backlog(Cycle(1_020)), 0);
    }

    #[test]
    fn full_queue_stalls() {
        let mut sem = CentralManager::new(SemConfig {
            queue_capacity: 0,
            ..Default::default()
        });
        assert!(sem.admit(Cycle(0)).is_none());
        assert_eq!(sem.stats().counter("sem.stalls"), 1);
    }

    #[test]
    fn verdict_latency_statistics() {
        let mut sem = CentralManager::new(SemConfig::default());
        for _ in 0..10 {
            sem.admit(Cycle(0));
        }
        let h = sem.stats().histogram("sem.verdict_latency").unwrap();
        assert_eq!(h.count(), 10);
        assert_eq!(h.min(), Some(20));
        assert!(h.max().unwrap() > 100, "the tail queues badly");
    }

    #[test]
    fn centralized_area_grows_superlinearly_vs_distributed_firewalls() {
        // At the case-study scale the SEM's total rule table is 4×8 = 32
        // rules; the distributed LFs keep 8 rules each, so the SEM pays
        // the PER_RULE cost 24 extra times.
        let a4 = centralized_area(4, 8);
        let a8 = centralized_area(8, 8);
        assert!(a8.slice_luts > a4.slice_luts);
        let delta_regs = a8.slice_regs - a4.slice_regs;
        // 4 more SEIs + 32 more rules.
        assert_eq!(
            delta_regs,
            SEI_COST.slice_regs * 4 + PER_RULE.slice_regs * 32
        );
    }
}
