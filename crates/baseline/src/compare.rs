//! Distributed vs centralized under the same offered load.
//!
//! Both models see the identical Poisson-ish arrival process (one Bernoulli
//! draw per IP per cycle). The distributed scheme checks every request
//! locally in a constant [`SbTiming`] pass — checks at different IPs run
//! in parallel by construction. The centralized scheme routes every check
//! through the single [`CentralManager`].

use secbus_core::SbTiming;
use secbus_sim::{Cycle, Histogram, SimRng};

use crate::sem::{CentralManager, SemConfig};

/// One row of the S-4 comparison.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Number of requesting IPs.
    pub ips: u32,
    /// Per-IP probability of issuing a check each cycle.
    pub load: f64,
    /// Mean check latency, distributed.
    pub distributed_mean: f64,
    /// Mean check latency, centralized.
    pub centralized_mean: f64,
    /// 99th-percentile (bucketed) check latency, centralized.
    pub centralized_p99: u64,
    /// Extra interconnect transactions the centralized scheme generated.
    pub centralized_bus_txns: u64,
    /// Checks the SEM refused because its queue was full.
    pub centralized_stalls: u64,
}

impl ComparisonRow {
    /// Centralized mean / distributed mean.
    pub fn slowdown(&self) -> f64 {
        if self.distributed_mean == 0.0 {
            0.0
        } else {
            self.centralized_mean / self.distributed_mean
        }
    }
}

/// Drive both schemes for `cycles` cycles with `ips` IPs at `load`
/// requests/IP/cycle.
pub fn compare_check_latency(ips: u32, load: f64, cycles: u64, seed: u64) -> ComparisonRow {
    let sb = SbTiming::PAPER;
    let mut rng = SimRng::new(seed);
    let mut sem = CentralManager::new(SemConfig::default());
    let mut distributed = Histogram::new();
    let mut centralized = Histogram::new();
    let mut bus_txns = 0u64;

    for cycle in 0..cycles {
        for _ip in 0..ips {
            if !rng.chance(load) {
                continue;
            }
            // Distributed: constant-latency local check, fully parallel.
            distributed.record(sb.total());
            // Centralized: round trip + serialized engine.
            if let Some(verdict_at) = sem.admit(Cycle(cycle)) {
                centralized.record(verdict_at.saturating_since(Cycle(cycle)));
                bus_txns += sem.bus_transactions_per_check();
            }
        }
    }

    ComparisonRow {
        ips,
        load,
        distributed_mean: distributed.mean().unwrap_or(0.0),
        centralized_mean: centralized.mean().unwrap_or(0.0),
        centralized_p99: centralized.quantile(0.99).unwrap_or(0),
        centralized_bus_txns: bus_txns,
        centralized_stalls: sem.stats().counter("sem.stalls"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributed_latency_is_constant() {
        let light = compare_check_latency(2, 0.01, 20_000, 1);
        let heavy = compare_check_latency(8, 0.30, 20_000, 1);
        assert_eq!(light.distributed_mean, 12.0);
        assert_eq!(heavy.distributed_mean, 12.0, "local checks never queue");
    }

    #[test]
    fn centralized_latency_grows_with_load() {
        let light = compare_check_latency(4, 0.005, 20_000, 2);
        let heavy = compare_check_latency(4, 0.06, 20_000, 2);
        assert!(light.centralized_mean >= 20.0, "floor is two trips + check");
        assert!(
            heavy.centralized_mean > light.centralized_mean,
            "queueing must appear: {} vs {}",
            heavy.centralized_mean,
            light.centralized_mean
        );
    }

    #[test]
    fn centralized_is_never_faster() {
        for (ips, load) in [(1, 0.01), (4, 0.02), (8, 0.05)] {
            let row = compare_check_latency(ips, load, 10_000, 3);
            assert!(
                row.centralized_mean >= row.distributed_mean,
                "{ips} ips @ {load}"
            );
            assert!(row.slowdown() >= 1.0);
        }
    }

    #[test]
    fn centralized_adds_bus_traffic_distributed_adds_none() {
        let row = compare_check_latency(4, 0.05, 10_000, 4);
        assert!(row.centralized_bus_txns > 0);
        // ~2 transactions per admitted check.
        let checked = row.centralized_bus_txns / 2;
        assert!(checked > 1000, "sanity: load produced work ({checked})");
    }

    #[test]
    fn saturation_shows_in_the_tail() {
        // Offered load beyond the engine's service rate (1/12 per cycle).
        let row = compare_check_latency(8, 0.5, 20_000, 5);
        assert!(row.centralized_p99 > 100, "p99 {}", row.centralized_p99);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = compare_check_latency(4, 0.1, 5_000, 9);
        let b = compare_check_latency(4, 0.1, 5_000, 9);
        assert_eq!(a.centralized_mean, b.centralized_mean);
        assert_eq!(a.centralized_bus_txns, b.centralized_bus_txns);
    }
}
