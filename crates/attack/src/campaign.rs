//! Multi-stage adversarial campaigns with DIFT kill-chain accounting.
//!
//! A *campaign* is a seed-deterministic, staged composition of the attack
//! primitives in this crate (hijacked IPs, the physical DDR adversary)
//! with `secbus-fault` fault schedules: stage N+1 only fires if stage N
//! established its foothold, and every run produces a cycle-stamped
//! kill chain (`foothold → pivot → detection → reaction`) both in the
//! [`CampaignOutcome`] and — when the SoC tracer is armed — as
//! `CampaignPhase` trace events for the observability spine.
//!
//! The campaigns are the DIFT showcase: each one moves data from an
//! unprotected (or cipher-only) region toward a protected sink through a
//! path the *address* rules cannot object to, so in protected mode the
//! taint layer is what converts a clean-looking transfer into a typed
//! `TaintedSink` alert. Bare mode runs the same campaign with no
//! firewalls, no LCF and no taint engine — the damage contrast.
//!
//! Correlation: a kill-chain record is identified by
//! `(campaign kind, seed, stage label)`; the same triple appears in the
//! trace (`CampaignPhase { campaign, stage, .. }`), so a JSON report row
//! and a trace lane entry can be joined without heuristics.

use secbus_bus::{AddrRange, Op, Width};
use secbus_core::{AdfSet, ConfigMemory, PolicyUpdate, Rwa, SecurityPolicy, Violation};
use secbus_cpu::BusMaster;
use secbus_fault::{FaultPlan, FaultRates, FaultSpec, StagedPlan};
use secbus_mem::{Bram, ExternalDdr};
use secbus_sim::{Cycle, SimRng, TraceEvent};
use secbus_soc::casestudy::{
    lcf_policies, DDR_BASE, DDR_LEN, DDR_PRIVATE_BASE, DDR_PRIVATE_LEN, DDR_PUBLIC_BASE,
    SHARED_BRAM_BASE,
};
use secbus_soc::{Soc, SocBuilder};

use crate::hijack::{AttackOp, HijackedMaster};
use crate::tamper::Adversary;

/// The campaign matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CampaignKind {
    /// Compromised-IP pivot: an IP with legitimate private-region access
    /// reads the unprotected region (foothold), then forwards what it
    /// read into the private region (pivot) — plus one classic
    /// out-of-policy probe for contrast.
    IpPivot,
    /// DMA-style master impersonation: a mover with window policies broad
    /// enough that *no* address rule ever fires, shuttling unprotected
    /// data into the private region while stall/grant faults hammer the
    /// slaves (watchdog + orphan-completion territory).
    Impersonation,
    /// Policy-epoch race: a tainted master tries to drive the
    /// ReconfigController's prepare/commit while a legitimate
    /// reconfiguration is in flight.
    EpochRace,
    /// Coordinated NoC/bus + external-DDR tampering: a staged fault plan
    /// softens the platform, then the physical adversary rewrites
    /// private ciphertext under cover of the noise.
    CoordinatedTamper,
}

impl CampaignKind {
    /// Every campaign, in report order.
    pub const ALL: [CampaignKind; 4] = [
        CampaignKind::IpPivot,
        CampaignKind::Impersonation,
        CampaignKind::EpochRace,
        CampaignKind::CoordinatedTamper,
    ];

    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            CampaignKind::IpPivot => "ip_pivot",
            CampaignKind::Impersonation => "impersonation",
            CampaignKind::EpochRace => "epoch_race",
            CampaignKind::CoordinatedTamper => "coordinated_tamper",
        }
    }

    /// Stable numeric id — the `campaign` field of `CampaignPhase` trace
    /// events, and half of the kill-chain correlation key.
    pub fn id(self) -> u8 {
        match self {
            CampaignKind::IpPivot => 0,
            CampaignKind::Impersonation => 1,
            CampaignKind::EpochRace => 2,
            CampaignKind::CoordinatedTamper => 3,
        }
    }
}

/// One campaign run's parameters.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Which campaign.
    pub kind: CampaignKind,
    /// Seed for every random stream in the run.
    pub seed: u64,
    /// Protected (firewalls + LCF + DIFT) vs bare (nothing).
    pub protected: bool,
}

/// One stage's after-action report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageReport {
    /// Stage label (stable across runs — part of the correlation key).
    pub label: &'static str,
    /// Whether the stage ran at all (a failed foothold aborts the rest).
    pub fired: bool,
    /// Whether the stage achieved its goal.
    pub foothold: bool,
}

/// One cycle-stamped kill-chain entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillChainEvent {
    /// When.
    pub cycle: u64,
    /// Which stage of the campaign.
    pub stage: &'static str,
    /// `"foothold"`, `"pivot"`, `"detection"` or `"reaction"`.
    pub phase: &'static str,
}

/// What a campaign run produced.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Which campaign.
    pub kind: CampaignKind,
    /// The seed it ran under.
    pub seed: u64,
    /// Protected or bare.
    pub protected: bool,
    /// Per-stage reports, in order.
    pub stages: Vec<StageReport>,
    /// A failed foothold abandoned the later stages.
    pub aborted: bool,
    /// Any alert fired for the campaign's attack traffic.
    pub detected: bool,
    /// Cycle of the first campaign-relevant alert.
    pub detection_cycle: Option<u64>,
    /// How the platform reacted: `"deny"`, `"quarantine"`,
    /// `"epoch_refused"` or `"none"`.
    pub reaction: &'static str,
    /// Total monitor alerts over the run.
    pub alerts: u64,
    /// Attack effects that landed with no alert — the S-18 gate requires
    /// 0 in protected mode.
    pub policy_bypasses: u64,
    /// Tainted-sink reaches blocked with a `TaintedSink` alert
    /// (interface writes + refused config commits).
    pub sinks_blocked: u64,
    /// Tainted-sink reaches that went unalerted — the second S-18 gate;
    /// must be 0 in protected mode.
    pub sinks_unalerted: u64,
    /// Faults the staged plans actually injected.
    pub faults_injected: u64,
    /// Late completions dropped fail-secure at the bus.
    pub orphan_completions: u64,
    /// Attacker-controlled words at rest in (or delivered from) the
    /// private region — the bare-mode damage contrast.
    pub damage_words: u64,
    /// The cycle-stamped kill chain.
    pub kill_chain: Vec<KillChainEvent>,
}

/// Campaign marker word: attacker-chosen payload, recognisable at rest.
fn marker(kind: CampaignKind) -> u32 {
    0xBADC_0DE0 | u32::from(kind.id())
}

/// Record a kill-chain phase both locally and on the SoC tracer.
fn mark(
    chain: &mut Vec<KillChainEvent>,
    soc: &Soc,
    kind: CampaignKind,
    stage_idx: u8,
    stage: &'static str,
    phase: &'static str,
    at: Cycle,
) {
    if let Some(t) = soc.tracer() {
        t.record(
            at,
            TraceEvent::CampaignPhase {
                campaign: kind.id(),
                stage: stage_idx,
                phase,
            },
        );
    }
    chain.push(KillChainEvent {
        cycle: at.0,
        stage,
        phase,
    });
}

/// Count attacker marker words at rest in the private DDR region.
fn marker_words_in_private(soc: &Soc, kind: CampaignKind) -> u64 {
    let Some(ddr) = soc.ddr() else { return 0 };
    let m = marker(kind).to_le_bytes();
    ddr.snoop(DDR_PRIVATE_BASE - DDR_BASE, DDR_PRIVATE_LEN)
        .chunks_exact(4)
        .filter(|w| *w == m)
        .count() as u64
}

/// Campaign writes that made it onto the shared bus (protected mode must
/// keep this at zero — violating writes die at the interface).
fn leaked_writes(soc: &Soc, addrs: &[u32]) -> u64 {
    soc.bus()
        .trace()
        .iter()
        .filter(|(_, t)| t.op == Op::Write && addrs.contains(&t.addr))
        .count() as u64
}

/// First alert matching `pred` at or after `from`, by cycle — fault
/// noise raised before the attack pivot is not a campaign detection.
fn first_alert_where(soc: &Soc, from: Cycle, pred: impl Fn(&Violation) -> bool) -> Option<Cycle> {
    soc.monitor()
        .log()
        .iter()
        .find(|(c, a)| *c >= from && pred(&a.violation))
        .map(|(c, _)| *c)
}

fn taint_counters(soc: &Soc) -> (u64, u64) {
    let blocked = soc.stats().counter("soc.taint.sink_blocked")
        + soc.stats().counter("soc.taint.config_sink_refusals");
    let unalerted = soc.stats().counter("soc.taint.unalerted_sinks");
    (blocked, unalerted)
}

fn reaction_name(soc: &Soc, epoch_refused: bool) -> &'static str {
    if epoch_refused {
        "epoch_refused"
    } else if soc.monitor().stats().counter("monitor.blocks") > 0 {
        "quarantine"
    } else if soc.monitor().alert_count() > 0 {
        "deny"
    } else {
        "none"
    }
}

/// Benign-window + campaign-window policies for a protected master.
fn window_policies(windows: &[(u32, u32, Rwa)]) -> ConfigMemory {
    let policies = windows
        .iter()
        .enumerate()
        .map(|(i, &(base, len, rwa))| {
            SecurityPolicy::internal(i as u16 + 1, AddrRange::new(base, len), rwa, AdfSet::ALL)
        })
        .collect();
    ConfigMemory::with_policies(policies).unwrap()
}

/// The shared campaign platform: the given master, a BRAM, the case-study
/// DDR. Protected arms firewalls, the LCF and the taint engine; bare
/// attaches everything naked.
fn campaign_soc(
    master: Box<dyn secbus_cpu::BusMaster>,
    policies: ConfigMemory,
    protected: bool,
    watchdog: Option<u64>,
) -> Soc {
    let mut b = SocBuilder::new().trace(8192).quarantine(2_000);
    if protected {
        b = b.taint_tracking();
        b = b.add_protected_master(master, policies);
    } else {
        b = b.add_master(master);
    }
    if let Some(w) = watchdog {
        b = b.watchdog(w);
    }
    b.add_bram(
        "bram",
        AddrRange::new(SHARED_BRAM_BASE, 0x1_0000),
        Bram::new(0x1_0000),
        None,
    )
    .set_ddr(
        "ddr",
        AddrRange::new(DDR_BASE, DDR_LEN),
        ExternalDdr::new(DDR_LEN),
        protected.then(lcf_policies),
    )
    .build()
}

/// Compromised-IP pivot: read public (foothold), forward into private
/// (pivot — address-legal, DIFT-illegal), probe out-of-policy (noise).
fn run_ip_pivot(seed: u64, protected: bool) -> CampaignOutcome {
    let kind = CampaignKind::IpPivot;
    let read_addr = DDR_PUBLIC_BASE + 0x40;
    let pivot_addr = DDR_PRIVATE_BASE + 0x80;
    let probe_addr = SHARED_BRAM_BASE + 0x8000;
    let script = vec![
        AttackOp {
            op: Op::Read,
            addr: read_addr,
            width: Width::Word,
            data: 0,
        },
        AttackOp {
            op: Op::Write,
            addr: pivot_addr,
            width: Width::Word,
            data: marker(kind),
        },
        AttackOp {
            op: Op::Write,
            addr: probe_addr,
            width: Width::Word,
            data: marker(kind),
        },
    ];
    // The 450-cycle pacing keeps the script ops inside their kill-chain
    // segments: the read completes in the foothold window, the forward
    // and the probe fire after the pivot mark.
    let mal = HijackedMaster::new("pivot-ip", SHARED_BRAM_BASE, 450, 1_200, script);
    // The pivot IP legitimately owns a private window — that is the point:
    // address rules alone cannot fault the forward.
    let policies = window_policies(&[
        (SHARED_BRAM_BASE, 0x100, Rwa::ReadWrite),
        (DDR_PUBLIC_BASE, 0x1000, Rwa::ReadOnly),
        (DDR_PRIVATE_BASE, 0x1000, Rwa::ReadWrite),
    ]);
    let mut soc = campaign_soc(Box::new(mal), policies, protected, None);
    let mut chain = Vec::new();

    soc.run(1_200); // benign phase
    mark(
        &mut chain,
        &soc,
        kind,
        0,
        "public-read",
        "foothold",
        soc.now(),
    );
    soc.run(400); // the public read completes; the master is now tainted
    let foothold = if protected {
        soc.taint().is_some_and(|t| t.master_tag(0).is_tainted())
    } else {
        soc.master_as::<HijackedMaster>(0)
            .map(|m| m.stats().counter("hijack.attacks_issued") > 0)
            .unwrap_or(false)
    };
    let mut stages = vec![StageReport {
        label: "public-read",
        fired: true,
        foothold,
    }];
    if !foothold {
        let at = soc.now();
        return finish_outcome(kind, seed, protected, soc, stages, true, chain, at, &[]);
    }

    let pivot_at = soc.now();
    mark(
        &mut chain,
        &soc,
        kind,
        1,
        "private-forward",
        "pivot",
        pivot_at,
    );
    soc.run(1_600); // pivot write + probe write run (or die at the interface)
    let pivoted = soc
        .master_as::<HijackedMaster>(0)
        .map(|m| m.first_attack_issue().is_some())
        .unwrap_or(false);
    stages.push(StageReport {
        label: "private-forward",
        fired: true,
        foothold: pivoted,
    });
    finish_outcome(
        kind,
        seed,
        protected,
        soc,
        stages,
        false,
        chain,
        pivot_at,
        &[pivot_addr, probe_addr],
    )
}

/// DMA-style impersonation: window policies so broad no address rule
/// fires; only the taint layer separates the mover from the attack. A
/// stall/grant fault schedule runs underneath to drag the watchdog and
/// the orphan-completion path into the campaign.
fn run_impersonation(seed: u64, protected: bool) -> CampaignOutcome {
    let kind = CampaignKind::Impersonation;
    let read_addr = DDR_PUBLIC_BASE + 0x200;
    let pivot_addr = DDR_PRIVATE_BASE + 0x100;
    let script = vec![
        AttackOp {
            op: Op::Read,
            addr: read_addr,
            width: Width::Word,
            data: 0,
        },
        AttackOp {
            op: Op::Write,
            addr: pivot_addr,
            width: Width::Word,
            data: marker(kind),
        },
    ];
    // 450-cycle pacing: even with stall faults the watchdog bounds every
    // response to 192 cycles, so the private move always lands after the
    // pivot mark and before the strike window closes.
    let dma = HijackedMaster::new("dma", SHARED_BRAM_BASE, 450, 1_200, script);
    // An all-DDR read-write window: every campaign access is address-legal.
    let policies = window_policies(&[
        (SHARED_BRAM_BASE, 0x100, Rwa::ReadWrite),
        (DDR_BASE, DDR_LEN, Rwa::ReadWrite),
    ]);
    let mut soc = campaign_soc(Box::new(dma), policies, protected, Some(192));
    let stalls = FaultPlan::generate(
        SimRng::new(seed).derive("impersonation").next_u64(),
        &FaultSpec {
            duration: 4_000,
            ddr_bytes: DDR_LEN,
            firewalls: 1,
            slaves: 2,
            noc_nodes: 0,
            rates: FaultRates {
                slave_stall: 3.0,
                bus_lost_grant: 1.0,
                ..FaultRates::NONE
            },
        },
    );
    soc.attach_fault_plan(stalls);
    let mut chain = Vec::new();

    soc.run(1_200);
    mark(
        &mut chain,
        &soc,
        kind,
        0,
        "public-read",
        "foothold",
        soc.now(),
    );
    soc.run(600);
    // Conservative tainting tags the master at *issue* time, so even a
    // stall-cancelled read leaves the mover tainted.
    let foothold = if protected {
        soc.taint().is_some_and(|t| t.master_tag(0).is_tainted())
    } else {
        soc.master_as::<HijackedMaster>(0)
            .map(|m| m.stats().counter("hijack.attacks_issued") > 0)
            .unwrap_or(false)
    };
    let mut stages = vec![StageReport {
        label: "public-read",
        fired: true,
        foothold,
    }];
    if !foothold {
        let at = soc.now();
        return finish_outcome(kind, seed, protected, soc, stages, true, chain, at, &[]);
    }

    let pivot_at = soc.now();
    mark(&mut chain, &soc, kind, 1, "private-move", "pivot", pivot_at);
    soc.run(2_400);
    stages.push(StageReport {
        label: "private-move",
        fired: true,
        foothold: true,
    });
    finish_outcome(
        kind,
        seed,
        protected,
        soc,
        stages,
        false,
        chain,
        pivot_at,
        &[pivot_addr],
    )
}

/// Policy-epoch race: a legitimate reconfiguration is staged, and a
/// tainted master tries to commit its own epoch through the
/// ReconfigController — protected mode refuses the whole epoch with
/// `EpochError::TaintedInitiator` before validation even starts.
fn run_epoch_race(seed: u64, protected: bool) -> CampaignOutcome {
    let kind = CampaignKind::EpochRace;
    let script = vec![AttackOp {
        op: Op::Read,
        addr: DDR_PUBLIC_BASE + 0x80,
        width: Width::Word,
        data: 0,
    }];
    let racer = HijackedMaster::new("racer", SHARED_BRAM_BASE, 8, 1_000, script);
    let policies = window_policies(&[
        (SHARED_BRAM_BASE, 0x100, Rwa::ReadWrite),
        (DDR_PUBLIC_BASE, 0x1000, Rwa::ReadOnly),
    ]);
    let mut soc = campaign_soc(Box::new(racer), policies, protected, None);
    let mut chain = Vec::new();

    soc.run(1_000);
    mark(
        &mut chain,
        &soc,
        kind,
        0,
        "public-read",
        "foothold",
        soc.now(),
    );
    soc.run(600);
    let foothold = if protected {
        soc.taint().is_some_and(|t| t.master_tag(0).is_tainted())
    } else {
        soc.master_as::<HijackedMaster>(0)
            .map(|m| m.stats().counter("hijack.attacks_issued") > 0)
            .unwrap_or(false)
    };
    let mut stages = vec![StageReport {
        label: "public-read",
        fired: true,
        foothold,
    }];
    if !foothold {
        let at = soc.now();
        return finish_outcome(kind, seed, protected, soc, stages, true, chain, at, &[]);
    }

    let pivot_at = soc.now();
    mark(&mut chain, &soc, kind, 1, "epoch-commit", "pivot", pivot_at);
    let mut epoch_refused = false;
    let mut bypass_commits = 0u64;
    if protected {
        // A legitimate reconfiguration is in flight…
        let fw = soc
            .master_firewall_id(0)
            .expect("protected master has a firewall");
        soc.schedule_reconfig(PolicyUpdate {
            firewall: fw,
            policies: vec![
                SecurityPolicy::internal(
                    1,
                    AddrRange::new(SHARED_BRAM_BASE, 0x100),
                    Rwa::ReadWrite,
                    AdfSet::ALL,
                ),
                SecurityPolicy::internal(
                    2,
                    AddrRange::new(DDR_PUBLIC_BASE, 0x1000),
                    Rwa::ReadOnly,
                    AdfSet::ALL,
                ),
            ],
        });
        // …and the tainted racer tries to slam its own epoch through,
        // opening the private region to itself.
        let malicious = vec![PolicyUpdate {
            firewall: fw,
            policies: vec![SecurityPolicy::internal(
                1,
                AddrRange::new(DDR_BASE, DDR_LEN),
                Rwa::ReadWrite,
                AdfSet::ALL,
            )],
        }];
        match soc.commit_policy_epoch_as(0, malicious) {
            Err(_) => epoch_refused = true,
            Ok(_) => bypass_commits += 1,
        }
    } else {
        // Bare mode has no guard on the config path at all: the
        // attacker-driven epoch goes straight through.
        if soc.commit_policy_epoch_as(0, Vec::new()).is_ok() {
            bypass_commits += 1;
        }
    }
    soc.run(400); // drain the refusal alert (or let the epoch apply)
    stages.push(StageReport {
        label: "epoch-commit",
        fired: true,
        foothold: bypass_commits > 0,
    });
    let mut outcome = finish_outcome(
        kind,
        seed,
        protected,
        soc,
        stages,
        false,
        chain,
        pivot_at,
        &[],
    );
    outcome.policy_bypasses += bypass_commits;
    if epoch_refused {
        outcome.reaction = "epoch_refused";
    }
    outcome
}

/// Coordinated tamper: a staged fault plan (gated on its own foothold)
/// softens the platform with DDR upsets and response glitches, then the
/// physical adversary rewrites private ciphertext under the noise.
fn run_coordinated_tamper(seed: u64, protected: bool) -> CampaignOutcome {
    let kind = CampaignKind::CoordinatedTamper;
    let read_addr = DDR_PRIVATE_BASE + 0x100;
    let reader = secbus_cpu::SyntheticMaster::new(
        "reader",
        secbus_cpu::SyntheticConfig {
            windows: vec![(read_addr, 4, 1)],
            read_ratio: 1.0,
            widths: vec![Width::Word],
            burst: 1,
            period: 16,
            total_ops: 0,
        },
        SimRng::new(seed),
    );
    let policies = window_policies(&[
        (SHARED_BRAM_BASE, 0x100, Rwa::ReadWrite),
        (DDR_PRIVATE_BASE, 0x1000, Rwa::ReadWrite),
    ]);
    let mut soc = campaign_soc(Box::new(reader), policies, protected, None);
    let mut chain = Vec::new();

    let spec = |rates: FaultRates| FaultSpec {
        duration: 2_000,
        ddr_bytes: DDR_LEN,
        firewalls: 1,
        slaves: 2,
        noc_nodes: 0,
        rates,
    };
    let mut staged = StagedPlan::generate(
        seed,
        &[
            (
                "soften",
                spec(FaultRates {
                    ddr_bitflip: 3.0,
                    corrupt_response: 1.0,
                    ..FaultRates::NONE
                }),
                false,
            ),
            (
                "strike",
                spec(FaultRates {
                    slave_stall: 2.0,
                    ..FaultRates::NONE
                }),
                true,
            ),
        ],
    );

    soc.run(1_000); // clean warm-up
    mark(&mut chain, &soc, kind, 0, "soften", "foothold", soc.now());
    soc.attach_fault_plan(staged.stages()[0].plan.clone().offset(1_000));
    soc.run(2_000);
    let softened = soc.fault_plan().injected() > 0 && !soc.powered_off();
    let mut stages = vec![StageReport {
        label: "soften",
        fired: true,
        foothold: softened,
    }];
    staged.advance(softened);
    if staged.aborted() || staged.active_stage().is_none() {
        let at = soc.now();
        return finish_outcome(kind, seed, protected, soc, stages, true, chain, at, &[]);
    }

    let pivot_at = soc.now();
    mark(&mut chain, &soc, kind, 1, "strike", "pivot", pivot_at);
    let softened_injected = soc.fault_plan().injected();
    soc.attach_fault_plan(staged.stages()[1].plan.clone().offset(3_000));
    let block_off = (read_addr - DDR_BASE) & !15;
    let mut adversary = Adversary::new(SimRng::new(seed).derive("tamper"));
    let strike = marker(kind).to_le_bytes();
    {
        let ddr = soc.ddr_mut().unwrap();
        adversary.spoof_with(ddr, block_off, &strike);
        adversary.spoof_with(ddr, block_off + 4, &strike);
    }
    soc.run(3_000);
    stages.push(StageReport {
        label: "strike",
        fired: true,
        foothold: true,
    });
    let mut outcome = finish_outcome(
        kind,
        seed,
        protected,
        soc,
        stages,
        false,
        chain,
        pivot_at,
        &[],
    );
    outcome.faults_injected += softened_injected;
    outcome
}

/// Common epilogue: detection / reaction kill-chain entries and the
/// counter roll-up.
#[allow(clippy::too_many_arguments)]
fn finish_outcome(
    kind: CampaignKind,
    seed: u64,
    protected: bool,
    soc: Soc,
    stages: Vec<StageReport>,
    aborted: bool,
    mut chain: Vec<KillChainEvent>,
    pivot_at: Cycle,
    attack_write_addrs: &[u32],
) -> CampaignOutcome {
    // Campaign-relevant detection: the typed violations an attack (not a
    // fault) produces, at or after the pivot. Watchdog timeouts, config
    // parity hits and pre-pivot fault noise are not the kill chain.
    let detection_cycle = first_alert_where(&soc, pivot_at, |v| {
        matches!(
            v,
            Violation::TaintedSink
                | Violation::NoPolicy
                | Violation::UnauthorizedRead
                | Violation::UnauthorizedWrite
                | Violation::IntegrityMismatch
        )
    });
    let last_stage = stages.last().map(|s| s.label).unwrap_or("campaign");
    let stage_idx = stages.len().saturating_sub(1) as u8;
    if let Some(c) = detection_cycle {
        mark(
            &mut chain,
            &soc,
            kind,
            stage_idx,
            last_stage,
            "detection",
            c,
        );
    }
    let reaction = reaction_name(&soc, false);
    if reaction != "none" {
        let at = soc.now();
        mark(
            &mut chain, &soc, kind, stage_idx, last_stage, "reaction", at,
        );
    }
    let (sinks_blocked, sinks_unalerted) = taint_counters(&soc);
    let leaked = leaked_writes(&soc, attack_write_addrs);
    let alerts = soc.monitor().alert_count();
    // A leak is only a *bypass* when nothing alerted on the campaign;
    // unalerted tainted-sink reaches always count.
    let policy_bypasses = sinks_unalerted + if detection_cycle.is_none() { leaked } else { 0 };
    CampaignOutcome {
        kind,
        seed,
        protected,
        stages,
        aborted,
        detected: detection_cycle.is_some(),
        detection_cycle: detection_cycle.map(|c| c.0),
        reaction,
        alerts,
        policy_bypasses,
        sinks_blocked,
        sinks_unalerted,
        faults_injected: soc.fault_plan().injected(),
        orphan_completions: soc.stats().counter("soc.orphan_completions"),
        damage_words: marker_words_in_private(&soc, kind),
        kill_chain: chain,
    }
}

/// Run one campaign.
pub fn run_campaign(config: CampaignConfig) -> CampaignOutcome {
    match config.kind {
        CampaignKind::IpPivot => run_ip_pivot(config.seed, config.protected),
        CampaignKind::Impersonation => run_impersonation(config.seed, config.protected),
        CampaignKind::EpochRace => run_epoch_race(config.seed, config.protected),
        CampaignKind::CoordinatedTamper => run_coordinated_tamper(config.seed, config.protected),
    }
}

/// Run the whole campaign matrix at one seed and protection mode.
pub fn run_all_campaigns(seed: u64, protected: bool) -> Vec<CampaignOutcome> {
    CampaignKind::ALL
        .iter()
        .map(|&kind| {
            run_campaign(CampaignConfig {
                kind,
                seed,
                protected,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn protected(kind: CampaignKind) -> CampaignOutcome {
        run_campaign(CampaignConfig {
            kind,
            seed: 42,
            protected: true,
        })
    }

    fn bare(kind: CampaignKind) -> CampaignOutcome {
        run_campaign(CampaignConfig {
            kind,
            seed: 42,
            protected: false,
        })
    }

    #[test]
    fn ip_pivot_is_caught_by_the_taint_layer() {
        let o = protected(CampaignKind::IpPivot);
        assert!(o.detected, "DIFT must flag the private-region forward");
        assert!(o.sinks_blocked >= 1, "the pivot write is a blocked sink");
        assert_eq!(o.sinks_unalerted, 0);
        assert_eq!(o.policy_bypasses, 0);
        assert_eq!(o.damage_words, 0, "nothing attacker-chosen lands");
        assert!(o.kill_chain.iter().any(|e| e.phase == "foothold"));
        assert!(o.kill_chain.iter().any(|e| e.phase == "pivot"));
        assert!(o.kill_chain.iter().any(|e| e.phase == "detection"));
        assert!(o.kill_chain.iter().any(|e| e.phase == "reaction"));
    }

    #[test]
    fn ip_pivot_bare_shows_the_damage() {
        let o = bare(CampaignKind::IpPivot);
        assert!(!o.detected, "nothing watches a bare platform");
        assert!(o.policy_bypasses > 0);
        assert!(o.damage_words > 0, "the marker landed in private DDR");
    }

    #[test]
    fn impersonation_is_invisible_to_address_rules_but_not_to_dift() {
        let o = protected(CampaignKind::Impersonation);
        assert!(o.detected);
        assert!(o.sinks_blocked >= 1, "only the taint layer can object");
        assert_eq!(o.sinks_unalerted, 0);
        assert_eq!(o.policy_bypasses, 0);
        assert_eq!(o.damage_words, 0);
    }

    #[test]
    fn impersonation_bare_lands_the_move() {
        let o = bare(CampaignKind::Impersonation);
        assert!(!o.detected);
        assert!(o.damage_words > 0);
    }

    #[test]
    fn epoch_race_is_refused_for_a_tainted_initiator() {
        let o = protected(CampaignKind::EpochRace);
        assert_eq!(o.reaction, "epoch_refused");
        assert_eq!(o.policy_bypasses, 0);
        assert!(o.detected, "the refusal raises a TaintedSink alert");
        assert!(!o.stages.last().unwrap().foothold, "epoch must not move");
    }

    #[test]
    fn epoch_race_bare_commits_unchallenged() {
        let o = bare(CampaignKind::EpochRace);
        assert!(o.policy_bypasses > 0, "no guard on the config path");
    }

    #[test]
    fn coordinated_tamper_is_detected_by_the_integrity_core() {
        let o = protected(CampaignKind::CoordinatedTamper);
        assert!(o.detected);
        assert!(o.faults_injected > 0, "the soften stage really fired");
        assert_eq!(o.policy_bypasses, 0);
        assert_eq!(o.stages.len(), 2, "the gated strike stage ran");
    }

    #[test]
    fn campaigns_replay_deterministically_per_seed() {
        for kind in CampaignKind::ALL {
            for protected_mode in [true, false] {
                let cfg = CampaignConfig {
                    kind,
                    seed: 7,
                    protected: protected_mode,
                };
                let a = run_campaign(cfg);
                let b = run_campaign(cfg);
                assert_eq!(a.detection_cycle, b.detection_cycle, "{kind:?}");
                assert_eq!(a.alerts, b.alerts, "{kind:?}");
                assert_eq!(a.policy_bypasses, b.policy_bypasses, "{kind:?}");
                assert_eq!(a.kill_chain, b.kill_chain, "{kind:?}");
            }
        }
    }

    #[test]
    fn protected_matrix_has_no_bypasses_or_unalerted_sinks() {
        for o in run_all_campaigns(3, true) {
            assert_eq!(o.policy_bypasses, 0, "{:?}", o.kind);
            assert_eq!(o.sinks_unalerted, 0, "{:?}", o.kind);
            assert!(o.detected, "{:?}", o.kind);
        }
    }
}
