//! # secbus-attack — the threat model, executable
//!
//! Implements the paper's §III attacker: logical attacks through the
//! external bus and external memory (the FPGA itself is trusted).
//!
//! * [`tamper::Adversary`] — the physical attacker on the DDR: snapshot,
//!   replay, relocate and spoof stored bytes, bypassing every functional
//!   path (and therefore every check — detection has to come from the
//!   Integrity Core).
//! * [`hijack::HijackedMaster`] — a compromised IP: runs a benign access
//!   pattern, then starts issuing out-of-policy transactions (processor
//!   hijacking after malicious code was introduced through an unprotected
//!   memory window).
//! * [`hijack::DosFlooder`] — denial-of-service: saturates its interface
//!   with requests; with a firewall in front, violating floods die at the
//!   interface instead of consuming the bus.
//! * [`scenario`] — canned end-to-end scenarios against the case study,
//!   each reporting detection latency, containment and data compromise —
//!   the three security features of §III-C, measured.
//! * [`campaign`] — seed-deterministic multi-stage campaigns (pivot,
//!   impersonation, epoch race, coordinated tamper) with DIFT taint
//!   accounting and cycle-stamped kill chains.

pub mod campaign;
pub mod hijack;
pub mod scenario;
pub mod tamper;

pub use campaign::{
    run_all_campaigns, run_campaign, CampaignConfig, CampaignKind, CampaignOutcome, KillChainEvent,
    StageReport,
};
pub use hijack::{AttackOp, DosFlooder, HijackPhase, HijackedMaster};
pub use scenario::{run_all_scenarios, AttackOutcome, Scenario};
pub use tamper::Adversary;
