//! Compromised IPs: the hijacked master and the DoS flooder.

use secbus_bus::{Op, TxnId, Width};
use secbus_cpu::{BusMaster, MasterAccess};
use secbus_sim::{Cycle, Stats};

/// What the hijacked master is currently doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HijackPhase {
    /// Behaving normally (periodic allowed accesses).
    Benign,
    /// Issuing attack transactions.
    Attacking,
    /// Finished its script.
    Done,
}

/// One scripted attack access.
#[derive(Debug, Clone, Copy)]
pub struct AttackOp {
    /// Read or write.
    pub op: Op,
    /// Target address (typically outside the IP's policy).
    pub addr: u32,
    /// Access width (a wrong width exercises the ADF check).
    pub width: Width,
    /// Payload for writes.
    pub data: u32,
}

/// A compromised IP: benign traffic until `turn_at`, then a scripted
/// attack sequence — the observable behaviour of "running a malicious
/// source code on a processor to misbehave the whole embedded system".
pub struct HijackedMaster {
    label: String,
    /// Allowed address the benign phase touches.
    benign_addr: u32,
    benign_period: u64,
    turn_at: u64,
    script: Vec<AttackOp>,
    script_pos: usize,
    outstanding: Option<TxnId>,
    next_at: u64,
    first_attack_issue: Option<Cycle>,
    stats: Stats,
}

impl HijackedMaster {
    /// Build a hijacked master that turns malicious at cycle `turn_at`.
    pub fn new(
        label: impl Into<String>,
        benign_addr: u32,
        benign_period: u64,
        turn_at: u64,
        script: Vec<AttackOp>,
    ) -> Self {
        assert!(!script.is_empty(), "attack script must not be empty");
        HijackedMaster {
            label: label.into(),
            benign_addr,
            benign_period: benign_period.max(1),
            turn_at,
            script,
            script_pos: 0,
            outstanding: None,
            next_at: 0,
            first_attack_issue: None,
            stats: Stats::new(),
        }
    }

    /// Current phase.
    pub fn phase(&self, now: Cycle) -> HijackPhase {
        if self.script_pos >= self.script.len() {
            HijackPhase::Done
        } else if now.get() >= self.turn_at {
            HijackPhase::Attacking
        } else {
            HijackPhase::Benign
        }
    }

    /// Cycle of the first attack transaction, once issued.
    pub fn first_attack_issue(&self) -> Option<Cycle> {
        self.first_attack_issue
    }

    /// Attack responses that came back as errors (= discarded upstream).
    pub fn attack_rejections(&self) -> u64 {
        self.stats.counter("hijack.attack_rejected")
    }
}

impl BusMaster for HijackedMaster {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn tick(&mut self, mem: &mut dyn MasterAccess, now: Cycle) {
        if let Some(txn) = self.outstanding {
            if let Some(resp) = mem.poll() {
                debug_assert_eq!(resp.txn, txn);
                let attacking = self.first_attack_issue.is_some();
                match (attacking, resp.is_ok()) {
                    (true, true) => self.stats.incr("hijack.attack_succeeded"),
                    (true, false) => self.stats.incr("hijack.attack_rejected"),
                    (false, true) => self.stats.incr("hijack.benign_ok"),
                    (false, false) => self.stats.incr("hijack.benign_err"),
                }
                self.outstanding = None;
                self.next_at = now.get() + self.benign_period;
            }
            return;
        }
        if now.get() < self.next_at {
            return;
        }
        match self.phase(now) {
            HijackPhase::Done => {}
            HijackPhase::Benign => {
                let txn = mem.issue(
                    Op::Write,
                    self.benign_addr,
                    Width::Word,
                    now.get() as u32,
                    1,
                );
                self.outstanding = Some(txn);
            }
            HijackPhase::Attacking => {
                let op = self.script[self.script_pos];
                self.script_pos += 1;
                let txn = mem.issue(op.op, op.addr, op.width, op.data, 1);
                if self.first_attack_issue.is_none() {
                    self.first_attack_issue = Some(now);
                }
                self.outstanding = Some(txn);
                self.stats.incr("hijack.attacks_issued");
            }
        }
    }

    fn halted(&self) -> bool {
        self.script_pos >= self.script.len() && self.outstanding.is_none()
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn stats(&self) -> &Stats {
        &self.stats
    }
}

/// A denial-of-service flooder: back-to-back requests to one address,
/// as many as its interface lets through.
pub struct DosFlooder {
    label: String,
    target: u32,
    total: u64,
    burst: u16,
    sent: u64,
    outstanding: Option<TxnId>,
    stats: Stats,
}

impl DosFlooder {
    /// Flood `target` with `total` word writes (0 = forever).
    pub fn new(label: impl Into<String>, target: u32, total: u64) -> Self {
        DosFlooder {
            label: label.into(),
            target,
            total,
            burst: 1,
            sent: 0,
            outstanding: None,
            stats: Stats::new(),
        }
    }

    /// Use `burst` beats per flood transaction (longer bus occupancy per
    /// grant — the heavy variant of the attack).
    pub fn with_burst(mut self, burst: u16) -> Self {
        self.burst = burst.max(1);
        self
    }

    /// Requests issued so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }
}

impl BusMaster for DosFlooder {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn tick(&mut self, mem: &mut dyn MasterAccess, _now: Cycle) {
        if let Some(txn) = self.outstanding {
            if let Some(resp) = mem.poll() {
                debug_assert_eq!(resp.txn, txn);
                if resp.is_ok() {
                    self.stats.incr("dos.accepted");
                } else {
                    self.stats.incr("dos.rejected");
                }
                self.outstanding = None;
            } else {
                return;
            }
        }
        if self.total != 0 && self.sent >= self.total {
            return;
        }
        let txn = mem.issue(Op::Write, self.target, Width::Word, 0xD05, self.burst);
        self.outstanding = Some(txn);
        self.sent += 1;
    }

    fn halted(&self) -> bool {
        self.total != 0 && self.sent >= self.total && self.outstanding.is_none()
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn stats(&self) -> &Stats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secbus_cpu::master::InstantMem;

    #[test]
    fn hijacked_master_turns_at_schedule() {
        let script = vec![AttackOp {
            op: Op::Write,
            addr: 0x40,
            width: Width::Word,
            data: 1,
        }];
        let mut h = HijackedMaster::new("mal", 0x0, 2, 10, script);
        let mut mem = InstantMem::new(0x100);
        assert_eq!(h.phase(Cycle(0)), HijackPhase::Benign);
        for c in 0..40 {
            h.tick(&mut mem, Cycle(c));
        }
        assert!(h.halted());
        let attack_issue = h.first_attack_issue().unwrap();
        assert!(attack_issue.get() >= 10);
        assert!(h.stats().counter("hijack.benign_ok") > 0);
        assert_eq!(h.stats().counter("hijack.attacks_issued"), 1);
        assert_eq!(
            h.stats().counter("hijack.attack_succeeded"),
            1,
            "no firewall here"
        );
    }

    #[test]
    fn rejected_attack_is_counted() {
        // InstantMem errors on out-of-range -> models a firewall discard.
        let script = vec![AttackOp {
            op: Op::Read,
            addr: 0x9999,
            width: Width::Word,
            data: 0,
        }];
        let mut h = HijackedMaster::new("mal", 0x0, 1, 0, script);
        let mut mem = InstantMem::new(0x100);
        for c in 0..10 {
            h.tick(&mut mem, Cycle(c));
        }
        assert_eq!(h.attack_rejections(), 1);
    }

    #[test]
    fn flooder_saturates_interface() {
        let mut f = DosFlooder::new("dos", 0x10, 100);
        let mut mem = InstantMem::new(0x100);
        let mut cycles = 0;
        while !f.halted() && cycles < 1000 {
            f.tick(&mut mem, Cycle(cycles));
            cycles += 1;
        }
        assert_eq!(f.sent(), 100);
        assert_eq!(f.stats().counter("dos.accepted"), 100);
    }
}
