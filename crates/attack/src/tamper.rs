//! The physical attacker on the external memory.
//!
//! Everything here operates on raw stored bytes through
//! [`ExternalDdr::tamper`]/[`ExternalDdr::snoop`] — no simulated time, no
//! functional path, no checks. That is the point: the paper's §III-B
//! attacker owns the external bus and the DRAM; only the Local Ciphering
//! Firewall's cryptography can make the tampering *detectable* (integrity)
//! or *useless* (confidentiality).

use secbus_mem::ExternalDdr;
use secbus_sim::SimRng;

/// Kinds of physical tampering, for logs and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TamperKind {
    /// Old (genuine) bytes restored over newer ones.
    Replay,
    /// Genuine bytes copied to a different address.
    Relocation,
    /// Attacker-chosen / random bytes injected.
    Spoofing,
}

/// One tampering action, as recorded by the adversary.
#[derive(Debug, Clone)]
pub struct TamperRecord {
    /// What was done.
    pub kind: TamperKind,
    /// DDR device offset attacked.
    pub offset: u32,
    /// Bytes affected.
    pub len: u32,
}

/// The external-memory attacker.
#[derive(Debug)]
pub struct Adversary {
    rng: SimRng,
    log: Vec<TamperRecord>,
}

impl Adversary {
    /// A deterministic adversary.
    pub fn new(rng: SimRng) -> Self {
        Adversary {
            rng,
            log: Vec::new(),
        }
    }

    /// Record the current bytes at `[offset, offset+len)` — the bus probe
    /// an attacker uses before a replay.
    pub fn snapshot(&self, ddr: &ExternalDdr, offset: u32, len: u32) -> Vec<u8> {
        ddr.snoop(offset, len).to_vec()
    }

    /// Restore previously captured bytes (replay attack).
    pub fn replay(&mut self, ddr: &mut ExternalDdr, offset: u32, snapshot: &[u8]) {
        ddr.tamper(offset, snapshot);
        self.log.push(TamperRecord {
            kind: TamperKind::Replay,
            offset,
            len: snapshot.len() as u32,
        });
    }

    /// Copy `len` stored bytes from `src` to `dst` (relocation attack).
    pub fn relocate(&mut self, ddr: &mut ExternalDdr, src: u32, dst: u32, len: u32) {
        let bytes = ddr.snoop(src, len).to_vec();
        ddr.tamper(dst, &bytes);
        self.log.push(TamperRecord {
            kind: TamperKind::Relocation,
            offset: dst,
            len,
        });
    }

    /// Overwrite with attacker-chosen bytes (spoofing).
    pub fn spoof_with(&mut self, ddr: &mut ExternalDdr, offset: u32, bytes: &[u8]) {
        ddr.tamper(offset, bytes);
        self.log.push(TamperRecord {
            kind: TamperKind::Spoofing,
            offset,
            len: bytes.len() as u32,
        });
    }

    /// Overwrite with random bytes (blind spoofing / DoS on data).
    pub fn spoof_random(&mut self, ddr: &mut ExternalDdr, offset: u32, len: u32) {
        let mut bytes = vec![0u8; len as usize];
        self.rng.fill_bytes(&mut bytes);
        ddr.tamper(offset, &bytes);
        self.log.push(TamperRecord {
            kind: TamperKind::Spoofing,
            offset,
            len,
        });
    }

    /// Everything done so far.
    pub fn log(&self) -> &[TamperRecord] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ddr() -> ExternalDdr {
        let mut d = ExternalDdr::new(256);
        for i in 0..256u32 {
            d.load(i, &[i as u8]);
        }
        d
    }

    #[test]
    fn replay_restores_old_bytes() {
        let mut d = ddr();
        let mut adv = Adversary::new(SimRng::new(1));
        let old = adv.snapshot(&d, 16, 16);
        d.tamper(16, &[0xff; 16]); // the system moved on
        adv.replay(&mut d, 16, &old);
        assert_eq!(d.snoop(16, 16), &old[..]);
        assert_eq!(adv.log().len(), 1);
        assert_eq!(adv.log()[0].kind, TamperKind::Replay);
    }

    #[test]
    fn relocation_copies_within_memory() {
        let mut d = ddr();
        let mut adv = Adversary::new(SimRng::new(2));
        adv.relocate(&mut d, 0, 64, 16);
        assert_eq!(d.snoop(64, 16), d.snoop(0, 16));
        assert_eq!(adv.log()[0].kind, TamperKind::Relocation);
    }

    #[test]
    fn spoofing_changes_bytes() {
        let mut d = ddr();
        let mut adv = Adversary::new(SimRng::new(3));
        let before = adv.snapshot(&d, 32, 16);
        adv.spoof_random(&mut d, 32, 16);
        assert_ne!(d.snoop(32, 16), &before[..]);
        adv.spoof_with(&mut d, 32, &[0xAB; 4]);
        assert_eq!(d.snoop(32, 4), &[0xAB; 4]);
        assert_eq!(adv.log().len(), 2);
    }

    #[test]
    fn adversary_is_deterministic() {
        let mut d1 = ddr();
        let mut d2 = ddr();
        Adversary::new(SimRng::new(9)).spoof_random(&mut d1, 0, 32);
        Adversary::new(SimRng::new(9)).spoof_random(&mut d2, 0, 32);
        assert_eq!(d1.snoop(0, 32), d2.snoop(0, 32));
    }
}
