//! End-to-end attack scenarios against the case-study platform.
//!
//! Each scenario measures the paper's three §III-C security features:
//!
//! * **fast reaction** — `detection_latency`: cycles from injection to the
//!   first alert at the monitor;
//! * **containment** — `contained`: the violating traffic never appeared
//!   on the bus (checked against the bus trace) and tampered data was
//!   never delivered to an IP;
//! * **impact** — `data_compromised`: whether attacker-chosen plaintext
//!   reached an IP (the unprotected-region scenarios show exactly when it
//!   does).

use secbus_bus::{AddrRange, Op, Width};
use secbus_core::{AdfSet, ConfigMemory, Rwa, SecurityPolicy};
use secbus_cpu::{assemble, Mb32Core, StreamIp, SyntheticConfig, SyntheticMaster};
use secbus_mem::{Bram, ExternalDdr};
use secbus_sim::{Cycle, SimRng};
use secbus_soc::casestudy::{
    lcf_policies, DDR_BASE, DDR_CIPHER_BASE, DDR_LEN, DDR_PRIVATE_BASE, DDR_PUBLIC_BASE,
    SHARED_BRAM_BASE,
};
use secbus_soc::{Soc, SocBuilder};

use crate::hijack::{AttackOp, DosFlooder, HijackedMaster};
use crate::tamper::Adversary;

/// The canned scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Random bytes into the ciphered+integrity region.
    SpoofPrivate,
    /// Old genuine ciphertext restored in the private region.
    ReplayPrivate,
    /// Genuine ciphertext copied between private-region blocks.
    RelocatePrivate,
    /// Random bytes into the cipher-only region (detected? no — garbled).
    SpoofCipherOnly,
    /// Attacker-chosen bytes into the unprotected region (the hole).
    SpoofPublic,
    /// A compromised IP issuing out-of-policy transactions.
    HijackedIp,
    /// A flood of violating requests from a compromised IP.
    DosViolating,
    /// Malicious code injected into bus-fetched code in the public region.
    CodeInjection,
}

impl Scenario {
    /// All scenarios in report order.
    pub const ALL: [Scenario; 8] = [
        Scenario::SpoofPrivate,
        Scenario::ReplayPrivate,
        Scenario::RelocatePrivate,
        Scenario::SpoofCipherOnly,
        Scenario::SpoofPublic,
        Scenario::HijackedIp,
        Scenario::DosViolating,
        Scenario::CodeInjection,
    ];

    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::SpoofPrivate => "spoof private (cipher+integrity)",
            Scenario::ReplayPrivate => "replay private (cipher+integrity)",
            Scenario::RelocatePrivate => "relocate private (cipher+integrity)",
            Scenario::SpoofCipherOnly => "spoof cipher-only region",
            Scenario::SpoofPublic => "spoof unprotected region",
            Scenario::HijackedIp => "hijacked IP (out-of-policy accesses)",
            Scenario::DosViolating => "DoS flood of violating requests",
            Scenario::CodeInjection => "code injection via unprotected code",
        }
    }
}

/// What happened when a scenario ran.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// Which scenario.
    pub scenario: Scenario,
    /// Cycle at which the tampering / hijack turn happened.
    pub injected_at: Cycle,
    /// First alert at the monitor, if any.
    pub detected_at: Option<Cycle>,
    /// Cycles from injection to detection.
    pub detection_latency: Option<u64>,
    /// The violating traffic never reached the bus AND no tampered data
    /// was delivered as valid to an IP.
    pub contained: bool,
    /// Attacker-chosen plaintext reached an IP as valid data.
    pub data_compromised: bool,
    /// Total alerts raised.
    pub alerts: u64,
}

impl AttackOutcome {
    /// Whether the attack was detected at all.
    pub fn detected(&self) -> bool {
        self.detected_at.is_some()
    }
}

/// Reader policy over one DDR window plus a benign BRAM window.
fn reader_policies(window_base: u32, window_len: u32) -> ConfigMemory {
    ConfigMemory::with_policies(vec![
        SecurityPolicy::internal(
            1,
            AddrRange::new(window_base, window_len),
            Rwa::ReadWrite,
            AdfSet::ALL,
        ),
        SecurityPolicy::internal(
            2,
            AddrRange::new(SHARED_BRAM_BASE, 0x1000),
            Rwa::ReadWrite,
            AdfSet::ALL,
        ),
    ])
    .unwrap()
}

/// A small platform: one reader hammering `read_addr`, one writer
/// refreshing `write_addr` (if given), the protected DDR, a BRAM.
fn tamper_soc(read_addr: u32, write_addr: Option<u32>, seed: u64) -> Soc {
    let reader = SyntheticMaster::new(
        "reader",
        SyntheticConfig {
            windows: vec![(read_addr, 4, 1)],
            read_ratio: 1.0,
            widths: vec![Width::Word],
            burst: 1,
            period: 16,
            total_ops: 0,
        },
        SimRng::new(seed),
    );
    let mut builder = SocBuilder::new().add_protected_master(
        Box::new(reader),
        reader_policies(read_addr & !0xfff, 0x1000),
    );
    if let Some(addr) = write_addr {
        let writer = StreamIp::new("writer", addr, 64, 0);
        builder =
            builder.add_protected_master(Box::new(writer), reader_policies(addr & !0xfff, 0x1000));
    }
    builder
        .add_bram(
            "bram",
            AddrRange::new(SHARED_BRAM_BASE, 0x1000),
            Bram::new(0x1000),
            None,
        )
        .set_ddr(
            "ddr",
            AddrRange::new(DDR_BASE, DDR_LEN),
            ExternalDdr::new(DDR_LEN),
            Some(lcf_policies()),
        )
        .build()
}

fn finish(
    scenario: Scenario,
    soc: &Soc,
    injected_at: Cycle,
    contained: bool,
    data_compromised: bool,
) -> AttackOutcome {
    let detected_at = soc.monitor().first_alert().map(|(c, _)| *c);
    AttackOutcome {
        scenario,
        injected_at,
        detected_at,
        detection_latency: detected_at.map(|d| d.saturating_since(injected_at)),
        contained,
        data_compromised,
        alerts: soc.monitor().alert_count(),
    }
}

/// Run a tamper-class scenario: warm up, tamper, observe.
fn run_tamper(scenario: Scenario, seed: u64) -> AttackOutcome {
    let (read_addr, write_addr) = match scenario {
        Scenario::SpoofPrivate | Scenario::RelocatePrivate => (DDR_PRIVATE_BASE + 0x100, None),
        Scenario::ReplayPrivate => (DDR_PRIVATE_BASE, Some(DDR_PRIVATE_BASE)),
        Scenario::SpoofCipherOnly => (DDR_CIPHER_BASE + 0x40, None),
        Scenario::SpoofPublic => (DDR_PUBLIC_BASE + 0x40, None),
        _ => unreachable!("not a tamper scenario"),
    };
    let mut soc = tamper_soc(read_addr, write_addr, seed);
    let mut adversary = Adversary::new(SimRng::new(seed ^ 0xdead));

    // Warm-up: benign reads (and writes) flow.
    soc.run(2_000);
    assert_eq!(
        soc.monitor().alert_count(),
        0,
        "benign warm-up must be clean"
    );

    let dev_off = read_addr - DDR_BASE;
    let block_off = dev_off & !15;
    let mut injected_at = soc.now();
    match scenario {
        Scenario::SpoofPrivate | Scenario::SpoofCipherOnly => {
            let ddr = soc.ddr_mut().unwrap();
            adversary.spoof_random(ddr, block_off, 16);
        }
        Scenario::SpoofPublic => {
            let ddr = soc.ddr_mut().unwrap();
            adversary.spoof_with(ddr, block_off, &0xE71C_0DE5u32.to_le_bytes());
        }
        Scenario::ReplayPrivate => {
            // Snapshot an old sealed state, let the writer move on, then
            // restore the stale ciphertext.
            let ddr = soc.ddr_mut().unwrap();
            let old = adversary.snapshot(ddr, block_off, 16);
            soc.run(1_000); // writer refreshes the block
            injected_at = soc.now();
            let ddr = soc.ddr_mut().unwrap();
            adversary.replay(ddr, block_off, &old);
        }
        Scenario::RelocatePrivate => {
            let ddr = soc.ddr_mut().unwrap();
            adversary.relocate(ddr, 0x0, block_off, 16);
        }
        _ => unreachable!(),
    }

    // Observe.
    soc.run(4_000);

    let reader_errors = soc.master_device(0).stats().counter("traffic.err");
    let detected = soc.monitor().alert_count() > 0;
    // Tampered data delivered as valid = reader kept succeeding AND the
    // bytes were attacker-chosen (only meaningful for SpoofPublic).
    let data_compromised = matches!(scenario, Scenario::SpoofPublic);
    // Containment: in integrity scenarios the read is refused (errors) and
    // nothing tampered is delivered; in cipher-only the delivery happens
    // but is garbled (not attacker-chosen); in public the attack succeeds.
    let contained = match scenario {
        Scenario::SpoofPrivate | Scenario::ReplayPrivate | Scenario::RelocatePrivate => {
            detected && reader_errors > 0
        }
        Scenario::SpoofCipherOnly => true, // plaintext never attacker-chosen
        Scenario::SpoofPublic => false,
        _ => unreachable!(),
    };
    finish(scenario, &soc, injected_at, contained, data_compromised)
}

/// The hijacked-IP scenario.
fn run_hijack(seed: u64) -> AttackOutcome {
    let benign_addr = SHARED_BRAM_BASE;
    let turn_at = 1_000;
    let script = vec![
        // Unauthorized address (no policy).
        AttackOp {
            op: Op::Write,
            addr: SHARED_BRAM_BASE + 0x8000,
            width: Width::Word,
            data: 1,
        },
        // Direction violation: read a write-only window? — policy below is
        // rw on the benign block only, so this is NoPolicy again at +0x4000.
        AttackOp {
            op: Op::Read,
            addr: SHARED_BRAM_BASE + 0x4000,
            width: Width::Word,
            data: 0,
        },
        // Format violation inside the allowed window.
        AttackOp {
            op: Op::Write,
            addr: benign_addr,
            width: Width::Byte,
            data: 0xEE,
        },
    ];
    let mal = HijackedMaster::new("mal-ip", benign_addr, 8, turn_at, script);
    let policies = ConfigMemory::with_policies(vec![SecurityPolicy::internal(
        1,
        AddrRange::new(benign_addr, 0x100),
        Rwa::ReadWrite,
        AdfSet::WORD_ONLY,
    )])
    .unwrap();
    let mut soc = SocBuilder::new()
        .add_protected_master(Box::new(mal), policies)
        .add_bram(
            "bram",
            AddrRange::new(SHARED_BRAM_BASE, 0x1_0000),
            Bram::new(0x1_0000),
            None,
        )
        .build();
    let _ = seed;
    soc.run(8_000);

    let injected_at = soc
        .master_as::<HijackedMaster>(0)
        .unwrap()
        .first_attack_issue()
        .expect("attack phase ran");
    // Containment per the paper's §IV-B-1 semantics: a violating WRITE
    // must never appear on the bus (writes are checked before the bus);
    // a violating READ request may be granted, but its data is discarded
    // before the IP (covered by the rejection count below).
    let leaked = soc.bus().trace().iter().any(|(_, t)| {
        t.op == Op::Write
            && (t.addr == SHARED_BRAM_BASE + 0x8000
                || (t.addr == SHARED_BRAM_BASE && t.width == Width::Byte))
    });
    let rejections = soc
        .master_as::<HijackedMaster>(0)
        .unwrap()
        .attack_rejections();
    finish(
        Scenario::HijackedIp,
        &soc,
        injected_at,
        !leaked && rejections == 3,
        false,
    )
}

/// The violating-flood DoS scenario: the flood dies at the interface, the
/// victim's latency stays flat.
fn run_dos(seed: u64) -> AttackOutcome {
    let victim_window = (SHARED_BRAM_BASE, 0x100u32, 1u32);
    let build = |with_flood: bool| {
        let victim = SyntheticMaster::new(
            "victim",
            SyntheticConfig {
                windows: vec![victim_window],
                read_ratio: 0.5,
                widths: vec![Width::Word],
                burst: 1,
                period: 8,
                total_ops: 0,
            },
            SimRng::new(seed),
        );
        let mut b = SocBuilder::new().add_protected_master(
            Box::new(victim),
            ConfigMemory::with_policies(vec![SecurityPolicy::internal(
                1,
                AddrRange::new(SHARED_BRAM_BASE, 0x100),
                Rwa::ReadWrite,
                AdfSet::ALL,
            )])
            .unwrap(),
        );
        if with_flood {
            // Flooder's policy covers nothing: every request violates.
            let flooder = DosFlooder::new("flooder", SHARED_BRAM_BASE + 0x8000, 0);
            b = b.add_protected_master(Box::new(flooder), ConfigMemory::new());
        }
        b.add_bram(
            "bram",
            AddrRange::new(SHARED_BRAM_BASE, 0x1_0000),
            Bram::new(0x1_0000),
            None,
        )
        .build()
    };

    let mut clean = build(false);
    clean.run(10_000);
    let clean_latency = clean
        .master_device(0)
        .stats()
        .histogram("traffic.latency")
        .and_then(|h| h.mean())
        .unwrap_or(0.0);

    let mut soc = build(true);
    soc.run(10_000);
    let victim_latency = soc
        .master_device(0)
        .stats()
        .histogram("traffic.latency")
        .and_then(|h| h.mean())
        .unwrap_or(0.0);
    let flood_on_bus = soc
        .bus()
        .trace()
        .iter()
        .any(|(_, t)| t.addr == SHARED_BRAM_BASE + 0x8000);

    // Contained iff the flood never consumed the bus and the victim's
    // latency stayed within 10% of the clean run.
    let contained = !flood_on_bus && victim_latency <= clean_latency * 1.10;
    finish(Scenario::DosViolating, &soc, Cycle(0), contained, false)
}

/// Malicious code injected into bus-fetched code in the unprotected region.
fn run_code_injection(seed: u64) -> AttackOutcome {
    // Benign loop, fetched over the bus from the PUBLIC (unprotected) DDR:
    //   writes an increasing counter to an allowed BRAM word, forever.
    let benign = assemble(
        r"
        li   r1, 0x20000000
        addi r2, r0, 0
    loop:
        sw   r2, 0(r1)
        addi r2, r2, 1
        j    loop
        ",
    )
    .unwrap();
    let code_base = DDR_PUBLIC_BASE;
    let mut ddr = ExternalDdr::new(DDR_LEN);
    for (i, w) in benign.iter().enumerate() {
        ddr.load(code_base - DDR_BASE + 4 * i as u32, &w.to_le_bytes());
    }
    let core = Mb32Core::with_bus_fetch("cpu0", code_base);
    let policies = ConfigMemory::with_policies(vec![
        // Fetch window: read-only over the public code region.
        SecurityPolicy::internal(
            1,
            AddrRange::new(code_base, 0x1000),
            Rwa::ReadOnly,
            AdfSet::WORD_ONLY,
        ),
        // Data window: the one allowed BRAM word block.
        SecurityPolicy::internal(
            2,
            AddrRange::new(SHARED_BRAM_BASE, 0x10),
            Rwa::ReadWrite,
            AdfSet::ALL,
        ),
    ])
    .unwrap();
    let mut soc = SocBuilder::new()
        .add_protected_master(Box::new(core), policies)
        .add_bram(
            "bram",
            AddrRange::new(SHARED_BRAM_BASE, 0x1_0000),
            Bram::new(0x1_0000),
            None,
        )
        .set_ddr(
            "ddr",
            AddrRange::new(DDR_BASE, DDR_LEN),
            ddr,
            Some(lcf_policies()),
        )
        .build();

    soc.run(5_000);
    assert_eq!(soc.monitor().alert_count(), 0, "benign loop is clean");

    // The attacker rewrites `sw r2, 0(r1)` into `sw r2, 0(r0)` — the
    // store now targets address 0, which no policy covers.
    use secbus_cpu::isa::{Instr, MemSize, Reg};
    let evil = Instr::Store {
        size: MemSize::Word,
        rb: Reg(2),
        ra: Reg(0),
        off: 0,
    }
    .encode();
    let injected_at = soc.now();
    let mut adversary = Adversary::new(SimRng::new(seed));
    {
        let ddr = soc.ddr_mut().unwrap();
        // The sw is the 5th word (after li=2 words + addi + label).
        adversary.spoof_with(ddr, code_base - DDR_BASE + 4 * 3, &evil.to_le_bytes());
    }
    soc.run(5_000);

    let detected = soc.monitor().alert_count() > 0;
    // Containment: no store to address 0 on the bus.
    let leaked = soc
        .bus()
        .trace()
        .iter()
        .any(|(_, t)| t.op == Op::Write && t.addr < 0x10);
    finish(
        Scenario::CodeInjection,
        &soc,
        injected_at,
        detected && !leaked,
        false,
    )
}

/// Run one scenario.
pub fn run_scenario(scenario: Scenario, seed: u64) -> AttackOutcome {
    match scenario {
        Scenario::SpoofPrivate
        | Scenario::ReplayPrivate
        | Scenario::RelocatePrivate
        | Scenario::SpoofCipherOnly
        | Scenario::SpoofPublic => run_tamper(scenario, seed),
        Scenario::HijackedIp => run_hijack(seed),
        Scenario::DosViolating => run_dos(seed),
        Scenario::CodeInjection => run_code_injection(seed),
    }
}

/// Run every scenario with one seed.
pub fn run_all_scenarios(seed: u64) -> Vec<AttackOutcome> {
    Scenario::ALL
        .iter()
        .map(|&s| run_scenario(s, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spoof_private_is_detected_and_contained() {
        let o = run_scenario(Scenario::SpoofPrivate, 42);
        assert!(o.detected(), "integrity core must catch spoofing");
        assert!(o.contained);
        assert!(!o.data_compromised);
        assert!(o.detection_latency.unwrap() < 2_000, "fast reaction");
    }

    #[test]
    fn replay_private_is_detected() {
        let o = run_scenario(Scenario::ReplayPrivate, 42);
        assert!(o.detected());
        assert!(o.contained);
    }

    #[test]
    fn relocate_private_is_detected() {
        let o = run_scenario(Scenario::RelocatePrivate, 42);
        assert!(o.detected());
        assert!(o.contained);
    }

    #[test]
    fn cipher_only_spoof_is_garbled_but_undetected() {
        let o = run_scenario(Scenario::SpoofCipherOnly, 42);
        assert!(!o.detected(), "no integrity core on this region");
        assert!(o.contained, "attacker cannot choose the plaintext");
        assert!(!o.data_compromised);
    }

    #[test]
    fn public_spoof_succeeds_unchallenged() {
        let o = run_scenario(Scenario::SpoofPublic, 42);
        assert!(!o.detected());
        assert!(!o.contained);
        assert!(o.data_compromised, "the unprotected hole is real");
    }

    #[test]
    fn hijacked_ip_is_stopped_at_its_interface() {
        let o = run_scenario(Scenario::HijackedIp, 42);
        assert!(o.detected());
        assert!(o.contained, "no attack transaction may reach the bus");
        assert_eq!(o.alerts, 3, "one alert per scripted attack");
        assert!(
            o.detection_latency.unwrap() <= 24,
            "detected within the SB pass"
        );
    }

    #[test]
    fn dos_flood_does_not_reach_the_bus() {
        let o = run_scenario(Scenario::DosViolating, 42);
        assert!(o.detected());
        assert!(o.contained, "victim latency must stay flat");
        assert!(o.alerts > 100, "the whole flood raised alerts");
    }

    #[test]
    fn code_injection_is_contained_by_the_lf() {
        let o = run_scenario(Scenario::CodeInjection, 42);
        assert!(o.detected());
        assert!(o.contained);
    }

    #[test]
    fn all_scenarios_run() {
        let outcomes = run_all_scenarios(7);
        assert_eq!(outcomes.len(), Scenario::ALL.len());
        // Exactly the two unprotected/cipher-only cases go undetected.
        let undetected: Vec<_> = outcomes
            .iter()
            .filter(|o| !o.detected())
            .map(|o| o.scenario)
            .collect();
        assert_eq!(
            undetected,
            vec![Scenario::SpoofCipherOnly, Scenario::SpoofPublic]
        );
    }
}
