//! The system address map: which slave answers which addresses.
//!
//! The paper defines security policies "using the address spaces", so the
//! same [`AddrRange`] type is reused by `secbus-core` for policy regions.
//! The map rejects overlapping regions at construction time — an MPSoC with
//! two slaves decoding the same address is a design error the tooling
//! should catch, not simulate.

use core::fmt;

use crate::txn::SlaveId;

/// A half-open byte-address range `[base, base+len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddrRange {
    /// First byte address of the range.
    pub base: u32,
    /// Length in bytes (may run to the top of the 32-bit space).
    pub len: u32,
}

impl AddrRange {
    /// Construct a range.
    ///
    /// # Panics
    /// Panics if the range is empty or wraps past the end of the 32-bit
    /// address space.
    pub fn new(base: u32, len: u32) -> Self {
        assert!(len > 0, "AddrRange must be non-empty");
        assert!(
            u64::from(base) + u64::from(len) <= 1 << 32,
            "AddrRange must not wrap the 32-bit address space"
        );
        AddrRange { base, len }
    }

    /// Exclusive end of the range, as a 33-bit value.
    #[inline]
    pub fn end(&self) -> u64 {
        u64::from(self.base) + u64::from(self.len)
    }

    /// Whether `addr` falls inside the range.
    #[inline]
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.base && u64::from(addr) < self.end()
    }

    /// Whether the whole span `[addr, addr+bytes)` falls inside the range.
    #[inline]
    pub fn contains_span(&self, addr: u32, bytes: u32) -> bool {
        addr >= self.base && u64::from(addr) + u64::from(bytes) <= self.end()
    }

    /// Whether two ranges share any byte.
    #[inline]
    pub fn overlaps(&self, other: &AddrRange) -> bool {
        u64::from(self.base) < other.end() && u64::from(other.base) < self.end()
    }

    /// Offset of `addr` from the base of the range.
    ///
    /// # Panics
    /// Panics if `addr` is not contained in the range.
    #[inline]
    pub fn offset(&self, addr: u32) -> u32 {
        assert!(self.contains(addr), "address outside range");
        addr - self.base
    }
}

impl fmt::Display for AddrRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}..{:#010x}", self.base, self.end())
    }
}

/// Maps address ranges to slaves, with overlap checking.
#[derive(Debug, Clone, Default)]
pub struct AddressMap {
    entries: Vec<(AddrRange, SlaveId)>,
}

/// Error raised when inserting a region that overlaps an existing one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlapError {
    /// The range that could not be inserted.
    pub attempted: AddrRange,
    /// The already-mapped range it collides with.
    pub existing: AddrRange,
    /// The slave owning the existing range.
    pub owner: SlaveId,
}

impl fmt::Display for OverlapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "range {} overlaps {} (slave {})",
            self.attempted, self.existing, self.owner.0
        )
    }
}

impl std::error::Error for OverlapError {}

impl AddressMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Map `range` to `slave`, rejecting overlaps with existing regions.
    pub fn insert(&mut self, range: AddrRange, slave: SlaveId) -> Result<(), OverlapError> {
        for &(existing, owner) in &self.entries {
            if existing.overlaps(&range) {
                return Err(OverlapError {
                    attempted: range,
                    existing,
                    owner,
                });
            }
        }
        self.entries.push((range, slave));
        // Keep sorted by base for deterministic iteration and fast decode.
        self.entries.sort_by_key(|(r, _)| r.base);
        Ok(())
    }

    /// Find the slave decoding `addr`, if any.
    pub fn decode(&self, addr: u32) -> Option<SlaveId> {
        // Binary search over sorted, non-overlapping ranges.
        let idx = self.entries.partition_point(|(r, _)| r.base <= addr);
        if idx == 0 {
            return None;
        }
        let (range, slave) = self.entries[idx - 1];
        range.contains(addr).then_some(slave)
    }

    /// The range mapped to `addr`, if any.
    pub fn decode_range(&self, addr: u32) -> Option<(AddrRange, SlaveId)> {
        let idx = self.entries.partition_point(|(r, _)| r.base <= addr);
        if idx == 0 {
            return None;
        }
        let (range, slave) = self.entries[idx - 1];
        range.contains(addr).then_some((range, slave))
    }

    /// All mapped regions in ascending base order.
    pub fn regions(&self) -> impl Iterator<Item = (AddrRange, SlaveId)> + '_ {
        self.entries.iter().copied()
    }

    /// Number of mapped regions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no regions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_contains_and_end() {
        let r = AddrRange::new(0x1000, 0x100);
        assert!(r.contains(0x1000));
        assert!(r.contains(0x10ff));
        assert!(!r.contains(0x1100));
        assert!(!r.contains(0xfff));
        assert_eq!(r.end(), 0x1100);
    }

    #[test]
    fn range_at_top_of_address_space() {
        let r = AddrRange::new(0xffff_ff00, 0x100);
        assert!(r.contains(0xffff_ffff));
        assert_eq!(r.end(), 1 << 32);
    }

    #[test]
    fn contains_span_checks_both_ends() {
        let r = AddrRange::new(0x100, 0x10);
        assert!(r.contains_span(0x100, 16));
        assert!(!r.contains_span(0x100, 17));
        assert!(!r.contains_span(0xff, 2));
    }

    #[test]
    fn overlap_detection() {
        let a = AddrRange::new(0x100, 0x100);
        assert!(a.overlaps(&AddrRange::new(0x180, 0x100)));
        assert!(a.overlaps(&AddrRange::new(0x0, 0x101)));
        assert!(a.overlaps(&AddrRange::new(0x150, 0x10)));
        assert!(!a.overlaps(&AddrRange::new(0x200, 0x100)));
        assert!(!a.overlaps(&AddrRange::new(0x0, 0x100)));
    }

    #[test]
    fn offset_within_range() {
        let r = AddrRange::new(0x2000, 0x1000);
        assert_eq!(r.offset(0x2004), 4);
    }

    #[test]
    #[should_panic(expected = "outside range")]
    fn offset_outside_panics() {
        AddrRange::new(0x2000, 0x10).offset(0x3000);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_rejected() {
        AddrRange::new(0x0, 0);
    }

    #[test]
    #[should_panic(expected = "wrap")]
    fn wrapping_range_rejected() {
        AddrRange::new(0xffff_ffff, 2);
    }

    #[test]
    fn map_decode_hits_correct_slave() {
        let mut m = AddressMap::new();
        m.insert(AddrRange::new(0x0000_0000, 0x1_0000), SlaveId(0))
            .unwrap();
        m.insert(AddrRange::new(0x4000_0000, 0x1000), SlaveId(1))
            .unwrap();
        m.insert(AddrRange::new(0x8000_0000, 0x800_0000), SlaveId(2))
            .unwrap();
        assert_eq!(m.decode(0x0000_0004), Some(SlaveId(0)));
        assert_eq!(m.decode(0x4000_0fff), Some(SlaveId(1)));
        assert_eq!(m.decode(0x87ff_ffff), Some(SlaveId(2)));
        assert_eq!(m.decode(0x4000_1000), None);
        assert_eq!(m.decode(0x2000_0000), None);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn map_rejects_overlap() {
        let mut m = AddressMap::new();
        m.insert(AddrRange::new(0x1000, 0x1000), SlaveId(0))
            .unwrap();
        let err = m
            .insert(AddrRange::new(0x1800, 0x1000), SlaveId(1))
            .unwrap_err();
        assert_eq!(err.owner, SlaveId(0));
        assert_eq!(m.len(), 1);
        assert!(err.to_string().contains("overlaps"));
    }

    #[test]
    fn decode_range_returns_region() {
        let mut m = AddressMap::new();
        let r = AddrRange::new(0x5000, 0x100);
        m.insert(r, SlaveId(3)).unwrap();
        assert_eq!(m.decode_range(0x5050), Some((r, SlaveId(3))));
        assert_eq!(m.decode_range(0x5100), None);
    }

    #[test]
    fn regions_iterate_sorted() {
        let mut m = AddressMap::new();
        m.insert(AddrRange::new(0x9000, 0x100), SlaveId(1)).unwrap();
        m.insert(AddrRange::new(0x1000, 0x100), SlaveId(0)).unwrap();
        let bases: Vec<u32> = m.regions().map(|(r, _)| r.base).collect();
        assert_eq!(bases, vec![0x1000, 0x9000]);
    }
}
