//! The shared, single-granted system bus.
//!
//! [`SharedBus`] owns every master request/response queue and every slave
//! inbox/outbox. Devices never talk to each other directly; the SoC moves
//! transactions between its devices and the bus each cycle, which keeps the
//! whole simulation deterministic and free of shared mutable state.
//!
//! ## Cycle protocol
//!
//! Per [`SharedBus::tick`] (called once per cycle, monotonically):
//!
//! 1. Responses sitting in slave outboxes are routed back to the issuing
//!    master's response queue (response path is pipelined, 1 cycle).
//! 2. If the data phase of a previous grant still occupies the bus, stop.
//! 3. Otherwise arbitration runs over the masters whose request queue is
//!    non-empty; the winner's head-of-queue transaction is address-decoded
//!    and delivered to the owning slave's inbox. The bus stays busy for
//!    `grant_cycles + burst * beat_cycles` cycles.
//!
//! A decode miss completes immediately with [`BusError::Decode`] — exactly
//! what a bus timeout unit would report on the real system.

use std::collections::VecDeque;

use secbus_sim::{Cycle, EventLog, Stats, TraceEvent, Tracer};

use crate::addrmap::{AddrRange, AddressMap, OverlapError};
use crate::arbiter::Arbiter;
use crate::txn::{BusError, MasterId, Op, Response, SlaveId, Transaction, TxnId, Width};

/// Static bus timing/shape parameters.
#[derive(Debug, Clone, Copy)]
pub struct BusConfig {
    /// Cycles consumed by arbitration + address phase for each grant.
    pub grant_cycles: u64,
    /// Cycles per data beat once granted.
    pub beat_cycles: u64,
    /// Capacity of the bus-side transaction trace.
    pub trace_capacity: usize,
    /// Bound on each master's request queue. [`SharedBus::try_issue_at`]
    /// refuses (returns `None`) once a master has this many requests
    /// queued but not yet granted — the admission-control seam the SoC's
    /// port adapters shed at. Must be > 0.
    pub master_queue_capacity: usize,
    /// Bound on each slave's inbox. A master whose head-of-queue request
    /// targets a full slave is *not eligible* for arbitration that cycle
    /// (credit-style backpressure: the request waits at the master, it is
    /// never dropped), counted in `bus.backpressure_stalls`. Must be > 0.
    pub slave_queue_capacity: usize,
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig {
            grant_cycles: 1,
            beat_cycles: 1,
            trace_capacity: 4096,
            master_queue_capacity: 64,
            slave_queue_capacity: 16,
        }
    }
}

/// One entry of the bus trace: a transaction that was *granted* the bus.
///
/// The containment property of the paper ("the attack must not reach the
/// communication architecture") is asserted against this trace.
pub type BusTrace = EventLog<Transaction>;

/// A slave completion the bus could not attribute to any in-flight
/// transaction: the id is unknown, already completed, or was cancelled by
/// the watchdog before the slave finished. Such a response is *dropped*
/// fail-secure (routing it anywhere would hand unrequested data to a
/// master — the bus-level shape of a DMA-style impersonation) and
/// surfaced through [`SharedBus::drain_orphans`] for the system to audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrphanCompletion {
    /// The slave that produced the unattributable response.
    pub slave: SlaveId,
    /// The transaction id the response claimed to complete.
    pub txn: TxnId,
}

#[derive(Debug, Default)]
struct MasterState {
    /// Queued requests with the cycle from which each may arbitrate
    /// (master-side firewall checking delays eligibility).
    requests: VecDeque<(Cycle, Transaction)>,
    responses: VecDeque<Response>,
}

#[derive(Debug, Default)]
struct SlaveState {
    inbox: VecDeque<Transaction>,
    outbox: VecDeque<(MasterId, Response)>,
}

/// The shared arbitrated bus.
/// What ticking the bus would do, as reported by
/// [`SharedBus::quiescence`] — the event-driven core's skip seam.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusQuiet {
    /// Tick may change state this cycle; do not skip.
    Active,
    /// Ticks strictly before the cycle only account busy time; tick
    /// again at the cycle.
    Until(Cycle),
    /// Ticks are pure until new requests arrive.
    Idle,
}

pub struct SharedBus {
    config: BusConfig,
    arbiter: Box<dyn Arbiter>,
    map: AddressMap,
    masters: Vec<MasterState>,
    slaves: Vec<SlaveState>,
    /// Which master issued each in-flight transaction (small, scanned).
    inflight: Vec<(TxnId, MasterId)>,
    busy_until: u64,
    next_id: u64,
    stats: Stats,
    trace: BusTrace,
    /// Fault injection: the next grant is consumed but never delivered.
    lose_next_grant: bool,
    /// Fault injection: XOR pattern applied to the next routed response.
    corrupt_next_response: Option<u32>,
    /// Completions with no in-flight owner, dropped fail-secure and held
    /// for [`SharedBus::drain_orphans`].
    orphans: Vec<OrphanCompletion>,
    /// Observability spine, if attached.
    tracer: Option<Tracer>,
}

impl SharedBus {
    /// Create a bus with the given timing and arbitration policy.
    pub fn new(config: BusConfig, arbiter: Box<dyn Arbiter>) -> Self {
        SharedBus {
            trace: EventLog::new(config.trace_capacity),
            config,
            arbiter,
            map: AddressMap::new(),
            masters: Vec::new(),
            slaves: Vec::new(),
            inflight: Vec::new(),
            busy_until: 0,
            next_id: 0,
            stats: Stats::new(),
            lose_next_grant: false,
            corrupt_next_response: None,
            orphans: Vec::new(),
            tracer: None,
        }
    }

    /// Attach the observability spine; the bus records a
    /// [`TraceEvent::BusHop`] for every grant.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Register a new master port; returns its id.
    pub fn add_master(&mut self) -> MasterId {
        let id = MasterId(u8::try_from(self.masters.len()).expect("too many masters"));
        self.masters.push(MasterState::default());
        id
    }

    /// Register a new slave port; returns its id (map ranges separately).
    pub fn add_slave(&mut self) -> SlaveId {
        let id = SlaveId(u8::try_from(self.slaves.len()).expect("too many slaves"));
        self.slaves.push(SlaveState::default());
        id
    }

    /// Map an address range to an existing slave.
    pub fn map_range(&mut self, slave: SlaveId, range: AddrRange) -> Result<(), OverlapError> {
        assert!((slave.0 as usize) < self.slaves.len(), "unknown slave");
        self.map.insert(range, slave)
    }

    /// The system address map.
    pub fn address_map(&self) -> &AddressMap {
        &self.map
    }

    /// Number of registered masters.
    pub fn master_count(&self) -> usize {
        self.masters.len()
    }

    /// Number of registered slaves.
    pub fn slave_count(&self) -> usize {
        self.slaves.len()
    }

    /// Enqueue a request from `master`; returns the assigned transaction id.
    #[allow(clippy::too_many_arguments)]
    pub fn issue(
        &mut self,
        master: MasterId,
        op: Op,
        addr: u32,
        width: Width,
        data: u32,
        burst: u16,
        now: Cycle,
    ) -> TxnId {
        self.issue_at(master, op, addr, width, data, burst, now, now)
    }

    /// Enqueue a request that becomes eligible for arbitration only at
    /// `ready_at` — how the SoC models the Security Builder's check delay
    /// between an IP and the bus.
    ///
    /// # Panics
    /// Panics if `master`'s bounded request queue is full. Callers without
    /// their own admission control must either size
    /// [`BusConfig::master_queue_capacity`] for their worst case or use
    /// [`SharedBus::try_issue_at`] and shed on `None`.
    #[allow(clippy::too_many_arguments)]
    pub fn issue_at(
        &mut self,
        master: MasterId,
        op: Op,
        addr: u32,
        width: Width,
        data: u32,
        burst: u16,
        issued_at: Cycle,
        ready_at: Cycle,
    ) -> TxnId {
        self.try_issue_at(master, op, addr, width, data, burst, issued_at, ready_at)
            .expect(
                "master request queue full — shed via try_issue_at or raise master_queue_capacity",
            )
    }

    /// [`SharedBus::issue_at`] with explicit admission control: returns
    /// `None` (and counts a `bus.issue_refused`) instead of queueing when
    /// the master's bounded request queue is full. The caller owns the
    /// refusal — the SoC's port adapters turn it into a typed
    /// `Violation::Shed` alert so no transaction is ever silently lost.
    #[allow(clippy::too_many_arguments)]
    pub fn try_issue_at(
        &mut self,
        master: MasterId,
        op: Op,
        addr: u32,
        width: Width,
        data: u32,
        burst: u16,
        issued_at: Cycle,
        ready_at: Cycle,
    ) -> Option<TxnId> {
        let queue = &self.masters[master.0 as usize].requests;
        if queue.len() >= self.config.master_queue_capacity {
            self.stats.incr("bus.issue_refused");
            return None;
        }
        let id = self.alloc_txn_id();
        let txn = Transaction {
            id,
            master,
            op,
            addr,
            width,
            data,
            burst: burst.max(1),
            issued_at,
        };
        self.masters[master.0 as usize]
            .requests
            .push_back((ready_at, txn));
        self.stats.incr("bus.issued");
        Some(id)
    }

    /// Free request-queue slots left before `master` hits its bound.
    pub fn master_queue_free(&self, master: MasterId) -> usize {
        self.config
            .master_queue_capacity
            .saturating_sub(self.masters[master.0 as usize].requests.len())
    }

    /// Total requests queued across every master — the fabric-pressure
    /// signal the SecurityMonitor's overload hysteresis watches.
    pub fn total_pending_requests(&self) -> usize {
        self.masters.iter().map(|m| m.requests.len()).sum()
    }

    /// Allocate a transaction id from the bus id space without queueing
    /// anything (used for firewall-synthesized discard responses, so that
    /// ids stay unique across real and synthetic completions).
    pub fn alloc_txn_id(&mut self) -> TxnId {
        let id = TxnId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Deliver a response directly to `master`'s response queue (firewall
    /// discard synthesis); arrives on the next tick like any completion.
    pub fn push_response(&mut self, master: MasterId, response: Response) {
        self.masters[master.0 as usize]
            .responses
            .push_back(response);
    }

    /// Pop the next completed response for `master`, if any.
    pub fn poll_response(&mut self, master: MasterId) -> Option<Response> {
        self.masters[master.0 as usize].responses.pop_front()
    }

    /// Number of requests `master` has queued but not yet granted.
    pub fn pending_requests(&self, master: MasterId) -> usize {
        self.masters[master.0 as usize].requests.len()
    }

    /// Pop the next transaction delivered to `slave`, if any.
    pub fn slave_pop(&mut self, slave: SlaveId) -> Option<Transaction> {
        self.slaves[slave.0 as usize].inbox.pop_front()
    }

    /// Peek at the next transaction delivered to `slave` without removing it.
    pub fn slave_peek(&self, slave: SlaveId) -> Option<&Transaction> {
        self.slaves[slave.0 as usize].inbox.front()
    }

    /// Complete a transaction on behalf of `slave`; the response is routed
    /// back to the issuing master on the next [`SharedBus::tick`].
    ///
    /// A response with no in-flight owner — unknown id, duplicate
    /// completion, or a late answer to a watchdog-cancelled transaction —
    /// is dropped fail-secure and recorded as an [`OrphanCompletion`]
    /// instead of being routed (or panicking): an impersonation campaign
    /// can legitimately provoke this, and the safe outcome is that the
    /// data reaches nobody.
    pub fn slave_complete(&mut self, slave: SlaveId, response: Response) {
        match self.take_inflight(response.txn) {
            Some(master) => {
                self.slaves[slave.0 as usize]
                    .outbox
                    .push_back((master, response));
            }
            None => {
                self.stats.incr("bus.orphan_completions");
                self.orphans.push(OrphanCompletion {
                    slave,
                    txn: response.txn,
                });
            }
        }
    }

    /// Take the orphaned completions dropped since the last drain.
    pub fn drain_orphans(&mut self) -> Vec<OrphanCompletion> {
        std::mem::take(&mut self.orphans)
    }

    fn take_inflight(&mut self, txn: TxnId) -> Option<MasterId> {
        let idx = self.inflight.iter().position(|&(t, _)| t == txn)?;
        Some(self.inflight.swap_remove(idx).1)
    }

    /// Fault injection: glitch the arbitration of the next grant so the
    /// winning transaction is consumed but never delivered to its slave.
    /// The issuing master receives no response — a hang unless a watchdog
    /// cancels the transaction.
    pub fn inject_lose_grant(&mut self) {
        self.lose_next_grant = true;
    }

    /// Fault injection: XOR `pattern` into the data beat of the next
    /// response routed from a slave outbox back to its master. Applied on
    /// the return path only, so the bus-side *request* trace is untouched.
    pub fn inject_corrupt_response(&mut self, pattern: u32) {
        self.corrupt_next_response = Some(pattern.max(1));
    }

    /// Cancel an in-flight transaction (watchdog recovery): forget the
    /// master binding and purge the transaction from any slave inbox it is
    /// still queued in. Returns the issuing master if the transaction was
    /// in flight; the caller synthesizes the timeout response.
    ///
    /// After cancellation a late [`SharedBus::slave_complete`] for the same
    /// id is dropped fail-secure as an [`OrphanCompletion`]; the SoC also
    /// purges the slave's service state so the stale answer never forms.
    pub fn cancel_inflight(&mut self, txn: TxnId) -> Option<MasterId> {
        let master = self.take_inflight(txn)?;
        for slave in &mut self.slaves {
            slave.inbox.retain(|t| t.id != txn);
        }
        self.stats.incr("bus.cancelled");
        Some(master)
    }

    /// Whether `txn` is currently in flight (granted, not yet completed).
    pub fn is_inflight(&self, txn: TxnId) -> bool {
        self.inflight.iter().any(|&(t, _)| t == txn)
    }

    /// Advance the bus by one cycle.
    pub fn tick(&mut self, now: Cycle) {
        // 1. Drain slave outboxes into master response queues.
        for slave in &mut self.slaves {
            while let Some((master, mut resp)) = slave.outbox.pop_front() {
                resp.completed_at = now;
                if let Some(xor) = self.corrupt_next_response.take() {
                    resp.data ^= xor;
                    self.stats.incr("bus.fault.corrupted_responses");
                }
                self.masters[master.0 as usize].responses.push_back(resp);
                self.stats.incr("bus.completions");
            }
        }

        // 2. Data phase still occupying the bus?
        if now.get() < self.busy_until {
            self.stats.incr("bus.busy_cycles");
            return;
        }

        // 3. Arbitrate among masters whose head request is eligible. A
        // head request targeting a full slave inbox keeps its master OUT
        // of arbitration this cycle (credit-style backpressure: the
        // request waits at the master's queue, never dropped); decode
        // misses stay eligible because they complete immediately.
        let mut backpressured = false;
        let requesting: Vec<MasterId> = self
            .masters
            .iter()
            .enumerate()
            .filter(|(_, m)| {
                let Some((ready, txn)) = m.requests.front() else {
                    return false;
                };
                if *ready > now {
                    return false;
                }
                match self.map.decode(txn.addr) {
                    Some(slave) => {
                        let ok = self.slaves[slave.0 as usize].inbox.len()
                            < self.config.slave_queue_capacity;
                        backpressured |= !ok;
                        ok
                    }
                    None => true,
                }
            })
            .map(|(i, _)| MasterId(i as u8))
            .collect();
        if backpressured {
            self.stats.incr("bus.backpressure_stalls");
        }
        if requesting.len() > 1 {
            self.stats.add("bus.contended_cycles", 1);
        }
        let Some(winner) = self.arbiter.grant(&requesting, now) else {
            return;
        };
        // A defective arbiter can name a master outside the requesting
        // set; under overload that must surface as an accounted misgrant,
        // not a panic that takes the fabric down.
        let Some((_, txn)) =
            self.masters
                .get_mut(winner.0 as usize)
                .and_then(|m| match m.requests.front() {
                    Some((ready, _)) if *ready <= now => m.requests.pop_front(),
                    _ => None,
                })
        else {
            self.stats.incr("bus.arbiter_misgrants");
            return;
        };
        if self.lose_next_grant {
            // Fault: the grant pulse is glitched away. The address phase
            // consumed the bus but the transaction never reaches a slave
            // and never completes; nothing is traced as *granted*.
            self.lose_next_grant = false;
            self.stats.incr("bus.fault.lost_grants");
            self.busy_until = now.get() + self.config.grant_cycles;
            return;
        }
        self.stats.incr("bus.grants");
        let wait = now.saturating_since(txn.issued_at);
        self.stats.record("bus.grant_wait", wait);
        if let Some(t) = &self.tracer {
            t.record(
                now,
                TraceEvent::BusHop {
                    txn: txn.id.0,
                    master: txn.master.0,
                    wait,
                },
            );
        }
        self.trace.push(now, txn);

        let occupancy = self.config.grant_cycles + self.config.beat_cycles * u64::from(txn.burst);
        self.busy_until = now.get() + occupancy;

        match self.map.decode(txn.addr) {
            Some(slave) => {
                self.inflight.push((txn.id, txn.master));
                self.slaves[slave.0 as usize].inbox.push_back(txn);
            }
            None => {
                self.stats.incr("bus.decode_errors");
                self.masters[txn.master.0 as usize]
                    .responses
                    .push_back(Response {
                        txn: txn.id,
                        data: 0,
                        result: Err(BusError::Decode),
                        completed_at: now,
                    });
            }
        }
    }

    /// Whether the data phase currently occupies the bus at `now`.
    pub fn is_busy(&self, now: Cycle) -> bool {
        now.get() < self.busy_until
    }

    /// Event-core seam: classify what ticking the bus at `now` would
    /// do. [`BusQuiet::Active`] means the tick may mutate real state
    /// (deliver outbox responses, stall-account a backpressured head,
    /// attempt a grant) and must run. [`BusQuiet::Until`] means every
    /// tick strictly before the returned cycle only accounts busy time
    /// — skippable via [`SharedBus::fast_forward`] — and the bus must
    /// be ticked again at that cycle. [`BusQuiet::Idle`] means ticks
    /// are pure (beyond residual busy-time accounting) until new input
    /// arrives.
    ///
    /// Relies on the [`Arbiter`] contract that `grant` is pure when
    /// the requesting set is empty (all in-tree arbiters are; see
    /// DESIGN.md §12).
    pub fn quiescence(&self, now: Cycle) -> BusQuiet {
        if self.slaves.iter().any(|s| !s.outbox.is_empty()) {
            return BusQuiet::Active;
        }
        // A head request becomes actionable — grant attempt, or
        // per-cycle backpressure/contention accounting — at
        // max(ready, busy_until).
        let mut next: Option<u64> = None;
        for m in &self.masters {
            if let Some((ready, _)) = m.requests.front() {
                let eligible = ready.get().max(self.busy_until);
                if eligible <= now.get() {
                    return BusQuiet::Active;
                }
                next = Some(next.map_or(eligible, |n| n.min(eligible)));
            }
        }
        match next {
            Some(c) => BusQuiet::Until(Cycle(c)),
            None => BusQuiet::Idle,
        }
    }

    /// Event-core seam: bulk-account the busy-cycle statistic for the
    /// skipped tick calls at cycles `from..to` (exclusive of `to`,
    /// which is ticked normally). Byte-identical to the per-cycle
    /// `bus.busy_cycles` increments the stepped core performs.
    pub fn fast_forward(&mut self, from: Cycle, to: Cycle) {
        let busy = to.get().min(self.busy_until).saturating_sub(from.get());
        if busy > 0 {
            self.stats.add("bus.busy_cycles", busy);
        }
    }

    /// Whether any master has undelivered responses queued (the SoC's
    /// response-routing step has work to do).
    pub fn has_queued_responses(&self) -> bool {
        self.masters.iter().any(|m| !m.responses.is_empty())
    }

    /// Whether orphan completions await [`SharedBus::drain_orphans`].
    pub fn has_orphans(&self) -> bool {
        !self.orphans.is_empty()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The trace of transactions that were granted the bus.
    pub fn trace(&self) -> &BusTrace {
        &self.trace
    }

    /// Arbitration policy name.
    pub fn arbiter_name(&self) -> &'static str {
        self.arbiter.name()
    }
}

impl std::fmt::Debug for SharedBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedBus")
            .field("masters", &self.masters.len())
            .field("slaves", &self.slaves.len())
            .field("arbiter", &self.arbiter.name())
            .field("busy_until", &self.busy_until)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::{FixedPriority, RoundRobin};

    fn bus() -> SharedBus {
        SharedBus::new(BusConfig::default(), Box::new(FixedPriority))
    }

    fn run_to_response(b: &mut SharedBus, slave: SlaveId, m: MasterId, max: u64) -> Response {
        for c in 0..max {
            b.tick(Cycle(c));
            // Immediately service anything that arrived at the slave.
            while let Some(t) = b.slave_pop(slave) {
                b.slave_complete(
                    slave,
                    Response {
                        txn: t.id,
                        data: 0xdead_beef,
                        result: Ok(()),
                        completed_at: Cycle(c),
                    },
                );
            }
            if let Some(r) = b.poll_response(m) {
                return r;
            }
        }
        panic!("no response within {max} cycles");
    }

    #[test]
    fn read_roundtrip() {
        let mut b = bus();
        let m = b.add_master();
        let s = b.add_slave();
        b.map_range(s, AddrRange::new(0x1000, 0x1000)).unwrap();
        let id = b.issue(m, Op::Read, 0x1004, Width::Word, 0, 1, Cycle(0));
        let r = run_to_response(&mut b, s, m, 16);
        assert_eq!(r.txn, id);
        assert!(r.is_ok());
        assert_eq!(r.data, 0xdead_beef);
    }

    #[test]
    fn decode_error_for_unmapped_address() {
        let mut b = bus();
        let m = b.add_master();
        let _s = b.add_slave();
        b.issue(m, Op::Read, 0xdead_0000, Width::Word, 0, 1, Cycle(0));
        b.tick(Cycle(0));
        let r = b.poll_response(m).expect("immediate decode error");
        assert_eq!(r.result, Err(BusError::Decode));
        assert_eq!(b.stats().counter("bus.decode_errors"), 1);
    }

    #[test]
    fn bus_occupancy_blocks_next_grant() {
        let mut b = bus();
        let m0 = b.add_master();
        let m1 = b.add_master();
        let s = b.add_slave();
        b.map_range(s, AddrRange::new(0, 0x1000)).unwrap();
        // burst of 8 words: occupies grant(1) + 8 beats = 9 cycles.
        b.issue(m0, Op::Write, 0x0, Width::Word, 1, 8, Cycle(0));
        b.issue(m1, Op::Write, 0x4, Width::Word, 2, 1, Cycle(0));
        b.tick(Cycle(0));
        assert_eq!(b.trace().len(), 1, "only m0 granted at cycle 0");
        for c in 1..9 {
            b.tick(Cycle(c));
            assert_eq!(b.trace().len(), 1, "bus busy at cycle {c}");
        }
        b.tick(Cycle(9));
        assert_eq!(b.trace().len(), 2, "m1 granted once data phase ends");
        assert_eq!(b.trace().last().unwrap().1.master, m1);
    }

    #[test]
    fn fixed_priority_wins_ties() {
        let mut b = bus();
        let m0 = b.add_master();
        let m1 = b.add_master();
        let s = b.add_slave();
        b.map_range(s, AddrRange::new(0, 0x1000)).unwrap();
        b.issue(m1, Op::Read, 0x0, Width::Word, 0, 1, Cycle(0));
        b.issue(m0, Op::Read, 0x4, Width::Word, 0, 1, Cycle(0));
        b.tick(Cycle(0));
        assert_eq!(b.trace().last().unwrap().1.master, m0);
    }

    #[test]
    fn round_robin_bus_alternates() {
        let mut b = SharedBus::new(
            BusConfig {
                grant_cycles: 1,
                beat_cycles: 0, // make every cycle grantable for the test
                ..BusConfig::default()
            },
            Box::new(RoundRobin::default()),
        );
        let m0 = b.add_master();
        let m1 = b.add_master();
        let s = b.add_slave();
        b.map_range(s, AddrRange::new(0, 0x1000)).unwrap();
        for _ in 0..2 {
            b.issue(m0, Op::Read, 0x0, Width::Word, 0, 1, Cycle(0));
            b.issue(m1, Op::Read, 0x0, Width::Word, 0, 1, Cycle(0));
        }
        let mut order = Vec::new();
        for c in 0..20 {
            b.tick(Cycle(c));
            if let Some(&(_, t)) = b.trace().last() {
                if order.last() != Some(&t.master) || order.len() < b.trace().len() {
                    // capture grant order via trace growth
                }
            }
        }
        for (_, t) in b.trace().iter() {
            order.push(t.master);
        }
        assert_eq!(order, vec![m0, m1, m0, m1]);
    }

    #[test]
    fn responses_route_to_correct_master() {
        let mut b = bus();
        let m0 = b.add_master();
        let m1 = b.add_master();
        let s = b.add_slave();
        b.map_range(s, AddrRange::new(0, 0x1000)).unwrap();
        let id1 = b.issue(m1, Op::Read, 0x8, Width::Word, 0, 1, Cycle(0));
        b.tick(Cycle(0));
        let t = b.slave_pop(s).unwrap();
        assert_eq!(t.id, id1);
        b.slave_complete(
            s,
            Response {
                txn: t.id,
                data: 7,
                result: Ok(()),
                completed_at: Cycle(1),
            },
        );
        b.tick(Cycle(2));
        assert!(b.poll_response(m0).is_none());
        let r = b.poll_response(m1).unwrap();
        assert_eq!(r.data, 7);
        assert_eq!(r.completed_at, Cycle(2));
    }

    #[test]
    fn grant_wait_statistics_recorded() {
        let mut b = bus();
        let m = b.add_master();
        let s = b.add_slave();
        b.map_range(s, AddrRange::new(0, 0x1000)).unwrap();
        b.issue(m, Op::Read, 0x0, Width::Word, 0, 1, Cycle(0));
        b.tick(Cycle(5)); // granted 5 cycles after issue
        let h = b.stats().histogram("bus.grant_wait").unwrap();
        assert_eq!(h.max(), Some(5));
        assert_eq!(b.stats().counter("bus.grants"), 1);
    }

    #[test]
    fn multiple_ranges_one_slave() {
        let mut b = bus();
        let m = b.add_master();
        let s = b.add_slave();
        b.map_range(s, AddrRange::new(0x0, 0x100)).unwrap();
        b.map_range(s, AddrRange::new(0x9000, 0x100)).unwrap();
        b.issue(m, Op::Read, 0x9004, Width::Word, 0, 1, Cycle(0));
        b.tick(Cycle(0));
        assert!(b.slave_pop(s).is_some());
    }

    #[test]
    fn completing_unknown_txn_is_dropped_fail_secure() {
        let mut b = bus();
        let m = b.add_master();
        let s = b.add_slave();
        b.slave_complete(
            s,
            Response {
                txn: TxnId(99),
                data: 0xbad,
                result: Ok(()),
                completed_at: Cycle(0),
            },
        );
        b.tick(Cycle(0));
        assert!(b.poll_response(m).is_none(), "orphan data reaches nobody");
        assert_eq!(b.stats().counter("bus.orphan_completions"), 1);
        assert_eq!(
            b.drain_orphans(),
            vec![OrphanCompletion {
                slave: s,
                txn: TxnId(99)
            }]
        );
        assert!(b.drain_orphans().is_empty(), "drain consumes the backlog");
    }

    #[test]
    fn late_completion_after_cancel_is_an_orphan() {
        let mut b = bus();
        let m = b.add_master();
        let s = b.add_slave();
        b.map_range(s, AddrRange::new(0, 0x1000)).unwrap();
        let id = b.issue(m, Op::Read, 0x0, Width::Word, 0, 1, Cycle(0));
        b.tick(Cycle(0));
        let t = b.slave_pop(s).unwrap();
        // Watchdog cancels while the slave still holds the transaction.
        assert_eq!(b.cancel_inflight(id), Some(m));
        b.slave_complete(
            s,
            Response {
                txn: t.id,
                data: 1,
                result: Ok(()),
                completed_at: Cycle(5),
            },
        );
        b.tick(Cycle(6));
        assert!(b.poll_response(m).is_none(), "stale answer dropped");
        assert_eq!(b.drain_orphans().len(), 1);
    }

    #[test]
    fn lost_grant_consumes_request_without_delivery() {
        let mut b = bus();
        let m = b.add_master();
        let s = b.add_slave();
        b.map_range(s, AddrRange::new(0, 0x1000)).unwrap();
        b.inject_lose_grant();
        let id = b.issue(m, Op::Read, 0x0, Width::Word, 0, 1, Cycle(0));
        for c in 0..32 {
            b.tick(Cycle(c));
        }
        assert!(b.slave_peek(s).is_none(), "slave never sees the txn");
        assert!(b.poll_response(m).is_none(), "master never hears back");
        assert!(!b.is_inflight(id));
        assert_eq!(b.trace().len(), 0, "a lost grant is not a granted txn");
        assert_eq!(b.stats().counter("bus.fault.lost_grants"), 1);
    }

    #[test]
    fn corrupt_response_flips_data_on_return_path() {
        let mut b = bus();
        let m = b.add_master();
        let s = b.add_slave();
        b.map_range(s, AddrRange::new(0, 0x1000)).unwrap();
        b.issue(m, Op::Read, 0x0, Width::Word, 0, 1, Cycle(0));
        b.tick(Cycle(0));
        let t = b.slave_pop(s).unwrap();
        b.slave_complete(
            s,
            Response {
                txn: t.id,
                data: 0x1234_5678,
                result: Ok(()),
                completed_at: Cycle(1),
            },
        );
        b.inject_corrupt_response(0xff);
        b.tick(Cycle(2));
        let r = b.poll_response(m).unwrap();
        assert_eq!(r.data, 0x1234_5678 ^ 0xff);
        assert_eq!(b.stats().counter("bus.fault.corrupted_responses"), 1);
    }

    #[test]
    fn cancel_inflight_purges_slave_inbox() {
        let mut b = bus();
        let m = b.add_master();
        let s = b.add_slave();
        b.map_range(s, AddrRange::new(0, 0x1000)).unwrap();
        let id = b.issue(m, Op::Read, 0x0, Width::Word, 0, 1, Cycle(0));
        b.tick(Cycle(0));
        assert!(b.is_inflight(id));
        assert_eq!(b.cancel_inflight(id), Some(m));
        assert!(b.slave_peek(s).is_none(), "queued txn removed from inbox");
        assert!(!b.is_inflight(id));
        assert_eq!(b.cancel_inflight(id), None, "second cancel is a no-op");
        assert_eq!(b.stats().counter("bus.cancelled"), 1);
    }

    #[test]
    fn full_master_queue_refuses_instead_of_growing() {
        let mut b = SharedBus::new(
            BusConfig {
                master_queue_capacity: 2,
                ..BusConfig::default()
            },
            Box::new(FixedPriority),
        );
        let m = b.add_master();
        let s = b.add_slave();
        b.map_range(s, AddrRange::new(0, 0x1000)).unwrap();
        assert!(b
            .try_issue_at(m, Op::Read, 0x0, Width::Word, 0, 1, Cycle(0), Cycle(0))
            .is_some());
        assert!(b
            .try_issue_at(m, Op::Read, 0x4, Width::Word, 0, 1, Cycle(0), Cycle(0))
            .is_some());
        assert_eq!(b.master_queue_free(m), 0);
        assert!(
            b.try_issue_at(m, Op::Read, 0x8, Width::Word, 0, 1, Cycle(0), Cycle(0))
                .is_none(),
            "third request refused at capacity 2"
        );
        assert_eq!(b.stats().counter("bus.issue_refused"), 1);
        assert_eq!(b.pending_requests(m), 2, "queue never exceeds its bound");
        // Draining one grant frees a slot again.
        b.tick(Cycle(0));
        assert!(b
            .try_issue_at(m, Op::Read, 0x8, Width::Word, 0, 1, Cycle(1), Cycle(1))
            .is_some());
    }

    #[test]
    fn full_slave_inbox_backpressures_without_loss() {
        let mut b = SharedBus::new(
            BusConfig {
                grant_cycles: 1,
                beat_cycles: 0, // every cycle grantable
                slave_queue_capacity: 1,
                ..BusConfig::default()
            },
            Box::new(FixedPriority),
        );
        let m = b.add_master();
        let s = b.add_slave();
        b.map_range(s, AddrRange::new(0, 0x1000)).unwrap();
        for i in 0..3 {
            b.issue(m, Op::Read, i * 4, Width::Word, 0, 1, Cycle(0));
        }
        // First grant fills the inbox; while the slave does not service
        // it, no further grant happens — the requests wait, unharmed.
        for c in 0..10 {
            b.tick(Cycle(c));
        }
        assert_eq!(b.trace().len(), 1, "inbox bound holds grants back");
        assert_eq!(b.pending_requests(m), 2, "ungranted requests still queued");
        assert!(b.stats().counter("bus.backpressure_stalls") > 0);
        // Conservation: servicing the inbox releases the stalled queue.
        let mut completed = 0;
        for c in 10..40 {
            while let Some(t) = b.slave_pop(s) {
                b.slave_complete(
                    s,
                    Response {
                        txn: t.id,
                        data: 0,
                        result: Ok(()),
                        completed_at: Cycle(c),
                    },
                );
            }
            b.tick(Cycle(c));
            while b.poll_response(m).is_some() {
                completed += 1;
            }
        }
        assert_eq!(completed, 3, "every backpressured request completes");
    }

    #[test]
    fn burst_zero_normalised_to_one() {
        let mut b = bus();
        let m = b.add_master();
        let s = b.add_slave();
        b.map_range(s, AddrRange::new(0, 0x100)).unwrap();
        b.issue(m, Op::Write, 0, Width::Word, 0, 0, Cycle(0));
        b.tick(Cycle(0));
        assert_eq!(b.slave_pop(s).unwrap().burst, 1);
    }
}
