//! # secbus-bus — the shared system bus of the simulated MPSoC
//!
//! The paper's architecture is bus-based: "a limited number of IPs are
//! connected together" on a single shared bus inside the FPGA, with the
//! external memory hanging off a bridge. This crate models that bus at the
//! transaction level with cycle-accurate arbitration and occupancy:
//!
//! * [`Transaction`] / [`Response`] — what masters issue and receive.
//!   Transactions carry the originating master, the operation (read/write),
//!   the address, the access width (8/16/32 bit — the paper's *Allowed Data
//!   Format* checks depend on it) and a burst length.
//! * [`AddressMap`] — decodes addresses to slaves, rejecting overlaps.
//! * [`Arbiter`] implementations — fixed priority, round robin and TDMA.
//! * [`SharedBus`] — the single-granted shared medium. It owns all master
//!   and slave queues; the SoC mediates between devices and the bus, so no
//!   component ever holds a reference to another (see DESIGN.md §5).
//!
//! Security is deliberately *not* implemented here: the paper's firewalls
//! are a layer between each IP and the bus that leaves the bus protocol
//! untouched, and the crate boundary enforces the same separation.

pub mod addrmap;
pub mod arbiter;
pub mod bus;
pub mod txn;

pub use addrmap::{AddrRange, AddressMap};
pub use arbiter::{Arbiter, FixedPriority, RoundRobin, Tdma};
pub use bus::{BusConfig, BusQuiet, BusTrace, OrphanCompletion, SharedBus};
pub use txn::{BusError, MasterId, Op, Response, SlaveId, Transaction, TxnId, Width};
