//! Bus arbitration policies.
//!
//! A shared bus grants one master per cycle. The case study in the paper
//! uses a PLB-style bus whose arbiter is fixed-priority; round-robin and
//! TDMA are provided as well because the traffic-overhead ablation (S-2 in
//! DESIGN.md) sweeps arbitration fairness, and because a TDMA arbiter is
//! itself a classic DoS countermeasure worth contrasting with the paper's
//! firewall approach.

use secbus_sim::Cycle;

use crate::txn::MasterId;

/// Chooses which of the currently requesting masters is granted the bus.
pub trait Arbiter: Send {
    /// Pick a winner among `requesting` (sorted by master id, no
    /// duplicates). Returns `None` iff `requesting` is empty or the policy
    /// refuses to grant this cycle (TDMA outside the owner's slot).
    fn grant(&mut self, requesting: &[MasterId], now: Cycle) -> Option<MasterId>;

    /// Human-readable policy name for reports.
    fn name(&self) -> &'static str;
}

/// Lowest master id wins — models a PLB-style static priority chain.
#[derive(Debug, Default, Clone)]
pub struct FixedPriority;

impl Arbiter for FixedPriority {
    fn grant(&mut self, requesting: &[MasterId], _now: Cycle) -> Option<MasterId> {
        requesting.iter().min().copied()
    }

    fn name(&self) -> &'static str {
        "fixed-priority"
    }
}

/// Fair rotation: the winner moves to the back of the rotation.
#[derive(Debug, Default, Clone)]
pub struct RoundRobin {
    last: Option<MasterId>,
}

impl Arbiter for RoundRobin {
    fn grant(&mut self, requesting: &[MasterId], _now: Cycle) -> Option<MasterId> {
        if requesting.is_empty() {
            return None;
        }
        let winner = match self.last {
            None => requesting[0],
            Some(last) => *requesting
                .iter()
                .find(|&&m| m > last)
                .unwrap_or(&requesting[0]),
        };
        self.last = Some(winner);
        Some(winner)
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Time-division multiple access: the schedule assigns each slot of
/// `slot_len` cycles to one master; only the slot owner may be granted.
#[derive(Debug, Clone)]
pub struct Tdma {
    schedule: Vec<MasterId>,
    slot_len: u64,
}

impl Tdma {
    /// Build a TDMA arbiter.
    ///
    /// # Panics
    /// Panics on an empty schedule or zero slot length.
    pub fn new(schedule: Vec<MasterId>, slot_len: u64) -> Self {
        assert!(!schedule.is_empty(), "TDMA schedule must be non-empty");
        assert!(slot_len > 0, "TDMA slot length must be positive");
        Tdma { schedule, slot_len }
    }

    /// The master owning the slot active at `now`.
    pub fn slot_owner(&self, now: Cycle) -> MasterId {
        let slot = (now.get() / self.slot_len) as usize % self.schedule.len();
        self.schedule[slot]
    }
}

impl Arbiter for Tdma {
    fn grant(&mut self, requesting: &[MasterId], now: Cycle) -> Option<MasterId> {
        let owner = self.slot_owner(now);
        requesting.iter().find(|&&m| m == owner).copied()
    }

    fn name(&self) -> &'static str {
        "tdma"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(ids: &[u8]) -> Vec<MasterId> {
        ids.iter().map(|&i| MasterId(i)).collect()
    }

    #[test]
    fn fixed_priority_prefers_lowest() {
        let mut a = FixedPriority;
        assert_eq!(a.grant(&m(&[2, 0, 1]), Cycle(0)), Some(MasterId(0)));
        assert_eq!(a.grant(&m(&[3, 1]), Cycle(1)), Some(MasterId(1)));
        assert_eq!(a.grant(&[], Cycle(2)), None);
    }

    #[test]
    fn fixed_priority_can_starve() {
        let mut a = FixedPriority;
        for _ in 0..100 {
            assert_eq!(a.grant(&m(&[0, 1]), Cycle(0)), Some(MasterId(0)));
        }
    }

    #[test]
    fn round_robin_rotates() {
        let mut a = RoundRobin::default();
        let req = m(&[0, 1, 2]);
        let w1 = a.grant(&req, Cycle(0)).unwrap();
        let w2 = a.grant(&req, Cycle(1)).unwrap();
        let w3 = a.grant(&req, Cycle(2)).unwrap();
        let w4 = a.grant(&req, Cycle(3)).unwrap();
        assert_eq!(
            [w1, w2, w3, w4],
            [MasterId(0), MasterId(1), MasterId(2), MasterId(0)]
        );
    }

    #[test]
    fn round_robin_skips_idle_masters() {
        let mut a = RoundRobin::default();
        assert_eq!(a.grant(&m(&[0, 2]), Cycle(0)), Some(MasterId(0)));
        // master 1 not requesting: rotation jumps to 2
        assert_eq!(a.grant(&m(&[0, 2]), Cycle(1)), Some(MasterId(2)));
        assert_eq!(a.grant(&m(&[0, 2]), Cycle(2)), Some(MasterId(0)));
    }

    #[test]
    fn round_robin_is_starvation_free() {
        let mut a = RoundRobin::default();
        let req = m(&[0, 1, 2, 3]);
        let mut counts = [0u32; 4];
        for i in 0..400 {
            counts[a.grant(&req, Cycle(i)).unwrap().0 as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 100), "{counts:?}");
    }

    #[test]
    fn tdma_grants_only_slot_owner() {
        let mut a = Tdma::new(m(&[0, 1]), 10);
        assert_eq!(a.slot_owner(Cycle(0)), MasterId(0));
        assert_eq!(a.slot_owner(Cycle(9)), MasterId(0));
        assert_eq!(a.slot_owner(Cycle(10)), MasterId(1));
        // Owner not requesting => no grant even though others want the bus.
        assert_eq!(a.grant(&m(&[1]), Cycle(0)), None);
        assert_eq!(a.grant(&m(&[0, 1]), Cycle(0)), Some(MasterId(0)));
        assert_eq!(a.grant(&m(&[0, 1]), Cycle(10)), Some(MasterId(1)));
    }

    #[test]
    fn tdma_schedule_wraps() {
        let a = Tdma::new(m(&[0, 1, 2]), 5);
        assert_eq!(a.slot_owner(Cycle(15)), MasterId(0));
        assert_eq!(a.slot_owner(Cycle(29)), MasterId(2));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn tdma_empty_schedule_panics() {
        Tdma::new(vec![], 1);
    }

    #[test]
    fn names() {
        assert_eq!(FixedPriority.name(), "fixed-priority");
        assert_eq!(RoundRobin::default().name(), "round-robin");
        assert_eq!(Tdma::new(m(&[0]), 1).name(), "tdma");
    }
}
