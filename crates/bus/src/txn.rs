//! Bus transactions, responses and the identifiers that tie them together.

use core::fmt;

use secbus_sim::Cycle;
/// Identifies a bus master (a processor, DMA engine or dedicated IP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MasterId(pub u8);

/// Identifies a bus slave (an internal memory, the external-memory bridge,
/// or the slave port of a dedicated IP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SlaveId(pub u8);

/// A unique, monotonically increasing transaction identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TxnId(pub u64);

/// Read or write — the paper's RWA (Read/Write Access) rules gate on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Data flows slave → master.
    Read,
    /// Data flows master → slave.
    Write,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Op::Read => "R",
            Op::Write => "W",
        })
    }
}

/// Access width — the paper's ADF (Allowed Data Format) parameter admits
/// data lengths "8 up to 32 bits" per policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Width {
    /// 8-bit access.
    Byte,
    /// 16-bit access.
    Half,
    /// 32-bit access.
    Word,
}

impl Width {
    /// Width in bytes.
    #[inline]
    pub const fn bytes(self) -> u32 {
        match self {
            Width::Byte => 1,
            Width::Half => 2,
            Width::Word => 4,
        }
    }

    /// Width in bits.
    #[inline]
    pub const fn bits(self) -> u32 {
        self.bytes() * 8
    }

    /// All widths, narrowest first.
    pub const ALL: [Width; 3] = [Width::Byte, Width::Half, Width::Word];

    /// Mask selecting the low `bits()` bits of a word.
    #[inline]
    pub const fn mask(self) -> u32 {
        match self {
            Width::Byte => 0xff,
            Width::Half => 0xffff,
            Width::Word => 0xffff_ffff,
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}b", self.bits())
    }
}

/// A single bus transaction as issued by a master-side interface.
///
/// `data` carries the write payload for the *first* beat; bursts model the
/// bus-occupancy of block transfers (DMA, cache-line-like fills) without
/// dragging full payload vectors through the interconnect hot path — the
/// memory models apply burst payloads directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transaction {
    /// Unique id, assigned by the bus when the master issues the request.
    pub id: TxnId,
    /// The issuing master.
    pub master: MasterId,
    /// Read or write.
    pub op: Op,
    /// Byte address of the first beat.
    pub addr: u32,
    /// Access width of each beat.
    pub width: Width,
    /// Write payload for the first beat (ignored for reads).
    pub data: u32,
    /// Number of beats (>= 1); beat `i` addresses `addr + i*width.bytes()`.
    pub burst: u16,
    /// Cycle at which the master handed the request to its interface.
    pub issued_at: Cycle,
}

impl Transaction {
    /// Total bytes moved by this transaction.
    #[inline]
    pub fn total_bytes(&self) -> u32 {
        u32::from(self.burst.max(1)) * self.width.bytes()
    }

    /// Exclusive end address of the transfer.
    #[inline]
    pub fn end_addr(&self) -> u64 {
        u64::from(self.addr) + u64::from(self.total_bytes())
    }

    /// Whether every byte touched lies within `[base, base+len)`.
    pub fn within(&self, base: u32, len: u32) -> bool {
        u64::from(self.addr) >= u64::from(base)
            && self.end_addr() <= u64::from(base) + u64::from(len)
    }

    /// Whether the address is naturally aligned for the access width.
    #[inline]
    pub fn aligned(&self) -> bool {
        self.addr.is_multiple_of(self.width.bytes())
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] M{} {} {:#010x} {} x{}",
            self.id.0, self.master.0, self.op, self.addr, self.width, self.burst
        )
    }
}

/// Why a transaction failed at the bus or slave level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusError {
    /// No slave is mapped at the requested address.
    Decode,
    /// The slave exists but rejected the access (e.g. out-of-range offset).
    Slave,
    /// The slave-side firewall discarded the transaction (paper §IV-B: "the
    /// data is discarded"); the master sees an error response, the slave
    /// never sees the access.
    Discarded,
    /// Integrity verification failed on an external-memory read: the value
    /// must not be forwarded to the requesting IP.
    IntegrityViolation,
    /// No completion arrived within the watchdog window; the transaction
    /// was cancelled and this error response synthesized in its place.
    Timeout,
    /// The master's bounded request queue was full: the access was refused
    /// at admission (load shedding) and never reached arbitration. The
    /// refusal is always accompanied by a counted alert — never silent.
    Overload,
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BusError::Decode => "address decode error",
            BusError::Slave => "slave error",
            BusError::Discarded => "discarded by firewall",
            BusError::IntegrityViolation => "integrity violation",
            BusError::Timeout => "watchdog timeout",
            BusError::Overload => "shed at admission (queue full)",
        })
    }
}

/// The completion of a transaction, delivered back to the issuing master.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Response {
    /// The transaction this responds to.
    pub txn: TxnId,
    /// Read data for the first beat (zero for writes and errors).
    pub data: u32,
    /// `Ok(())` on success, or the failure cause.
    pub result: Result<(), BusError>,
    /// Cycle at which the response reached the master-side interface.
    pub completed_at: Cycle,
}

impl Response {
    /// Whether the transaction completed successfully.
    #[inline]
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(addr: u32, width: Width, burst: u16) -> Transaction {
        Transaction {
            id: TxnId(1),
            master: MasterId(0),
            op: Op::Read,
            addr,
            width,
            data: 0,
            burst,
            issued_at: Cycle(0),
        }
    }

    #[test]
    fn width_sizes() {
        assert_eq!(Width::Byte.bytes(), 1);
        assert_eq!(Width::Half.bits(), 16);
        assert_eq!(Width::Word.mask(), 0xffff_ffff);
        assert_eq!(Width::Half.mask(), 0xffff);
    }

    #[test]
    fn total_bytes_counts_bursts() {
        assert_eq!(txn(0, Width::Word, 1).total_bytes(), 4);
        assert_eq!(txn(0, Width::Word, 8).total_bytes(), 32);
        assert_eq!(txn(0, Width::Byte, 3).total_bytes(), 3);
        // burst 0 is treated as a single beat
        assert_eq!(txn(0, Width::Half, 0).total_bytes(), 2);
    }

    #[test]
    fn within_checks_whole_burst() {
        let t = txn(0x100, Width::Word, 4); // touches 0x100..0x110
        assert!(t.within(0x100, 0x10));
        assert!(t.within(0x0, 0x200));
        assert!(!t.within(0x100, 0xf));
        assert!(!t.within(0x104, 0x100));
    }

    #[test]
    fn within_handles_address_space_end() {
        let t = txn(0xffff_fffc, Width::Word, 1);
        assert!(t.within(0xffff_fff0, 0x10));
        let t2 = txn(0xffff_fffc, Width::Word, 2); // crosses 2^32
        assert!(!t2.within(0xffff_fff0, 0x10));
    }

    #[test]
    fn alignment() {
        assert!(txn(0x100, Width::Word, 1).aligned());
        assert!(!txn(0x102, Width::Word, 1).aligned());
        assert!(txn(0x102, Width::Half, 1).aligned());
        assert!(txn(0x103, Width::Byte, 1).aligned());
    }

    #[test]
    fn display_formats() {
        let t = txn(0x44a0_0000, Width::Word, 2);
        let s = t.to_string();
        assert!(s.contains("M0") && s.contains("0x44a00000") && s.contains("32b"));
        assert_eq!(Op::Write.to_string(), "W");
        assert_eq!(BusError::Decode.to_string(), "address decode error");
    }

    #[test]
    fn response_ok_flag() {
        let ok = Response {
            txn: TxnId(9),
            data: 5,
            result: Ok(()),
            completed_at: Cycle(3),
        };
        let err = Response {
            result: Err(BusError::Discarded),
            ..ok
        };
        assert!(ok.is_ok());
        assert!(!err.is_ok());
    }
}
