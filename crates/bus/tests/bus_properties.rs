//! Randomized tests on the shared bus: every issued transaction completes
//! exactly once, per-master ordering holds, and the trace is consistent
//! with the grant counter — under arbitrary traffic patterns and
//! arbitration policies. Traffic is generated from a seeded [`SimRng`], so
//! every case is exactly reproducible.

use secbus_bus::{
    AddrRange, Arbiter, BusConfig, FixedPriority, MasterId, Op, Response, RoundRobin, SharedBus,
    Tdma, Width,
};
use secbus_sim::{Cycle, SimRng};

#[derive(Debug, Clone)]
struct Issue {
    master: u8,
    addr_sel: u8,
    write: bool,
    burst: u8,
}

fn random_issues(rng: &mut SimRng) -> Vec<Issue> {
    let count = 1 + rng.below(59) as usize;
    (0..count)
        .map(|_| Issue {
            master: rng.below(3) as u8,
            addr_sel: rng.next_u32() as u8,
            write: rng.chance(0.5),
            burst: 1 + rng.below(3) as u8,
        })
        .collect()
}

fn arbiter_for(sel: u8) -> Box<dyn Arbiter> {
    match sel % 3 {
        0 => Box::new(FixedPriority),
        1 => Box::new(RoundRobin::default()),
        _ => Box::new(Tdma::new(vec![MasterId(0), MasterId(1), MasterId(2)], 4)),
    }
}

#[test]
fn every_transaction_completes_exactly_once() {
    for case in 0u64..64 {
        let mut rng = SimRng::new(0xb5_0001 + case);
        let issues = random_issues(&mut rng);
        let arb_sel = (case % 3) as u8;
        let mut bus = SharedBus::new(BusConfig::default(), arbiter_for(arb_sel));
        let masters: Vec<MasterId> = (0..3).map(|_| bus.add_master()).collect();
        let slave = bus.add_slave();
        bus.map_range(slave, AddrRange::new(0, 0x100)).unwrap();
        // Half the address space is unmapped -> decode errors are part of
        // the property.
        let mut issued = Vec::new();
        let mut cycle = 0u64;
        let mut pending = issues.clone();
        let mut responses: Vec<(MasterId, Response)> = Vec::new();

        let budget = 20_000;
        while cycle < budget && (!pending.is_empty() || !issued.is_empty()) {
            if !pending.is_empty() {
                let i = pending.remove(0);
                let m = masters[(i.master % 3) as usize];
                let addr = if i.addr_sel < 128 {
                    u32::from(i.addr_sel % 32) * 4 // mapped
                } else {
                    0x8000_0000 + u32::from(i.addr_sel) // unmapped
                };
                let op = if i.write { Op::Write } else { Op::Read };
                let id = bus.issue(
                    m,
                    op,
                    addr,
                    Width::Word,
                    0,
                    u16::from(i.burst),
                    Cycle(cycle),
                );
                issued.push((m, id));
            }
            bus.tick(Cycle(cycle));
            while let Some(t) = bus.slave_pop(slave) {
                bus.slave_complete(
                    slave,
                    Response {
                        txn: t.id,
                        data: t.addr,
                        result: Ok(()),
                        completed_at: Cycle(cycle),
                    },
                );
            }
            for &m in &masters {
                while let Some(r) = bus.poll_response(m) {
                    responses.push((m, r));
                    issued.retain(|&(im, id)| !(im == m && id == r.txn));
                }
            }
            cycle += 1;
        }

        assert!(
            issued.is_empty(),
            "case {case}: transactions left in flight: {issued:?}"
        );
        // No duplicate completions.
        let mut ids: Vec<u64> = responses.iter().map(|(_, r)| r.txn.0).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before, "case {case}: duplicate completion");
        // Trace length equals the grant counter.
        assert_eq!(
            bus.trace().total(),
            bus.stats().counter("bus.grants"),
            "case {case}"
        );
    }
}

#[test]
fn per_master_responses_preserve_issue_order() {
    for case in 0u64..48 {
        let mut rng = SimRng::new(0xb5_0100 + case);
        let count = 1 + rng.below(19) as usize;
        let arb_sel = (case % 3) as u8;
        let mut bus = SharedBus::new(BusConfig::default(), arbiter_for(arb_sel));
        let m = bus.add_master();
        let _m2 = bus.add_master();
        let _m3 = bus.add_master();
        let slave = bus.add_slave();
        bus.map_range(slave, AddrRange::new(0, 0x1000)).unwrap();
        let ids: Vec<_> = (0..count)
            .map(|i| {
                bus.issue(
                    m,
                    Op::Read,
                    (i as u32 % 64) * 4,
                    Width::Word,
                    0,
                    1,
                    Cycle(0),
                )
            })
            .collect();
        let mut got = Vec::new();
        for c in 0..50_000u64 {
            bus.tick(Cycle(c));
            while let Some(t) = bus.slave_pop(slave) {
                bus.slave_complete(
                    slave,
                    Response {
                        txn: t.id,
                        data: 0,
                        result: Ok(()),
                        completed_at: Cycle(c),
                    },
                );
            }
            while let Some(r) = bus.poll_response(m) {
                got.push(r.txn);
            }
            if got.len() == count {
                break;
            }
        }
        assert_eq!(got, ids, "case {case}: FIFO order per master");
    }
}
