//! Randomized tests on the mesh: every injected packet is delivered
//! exactly once at its destination, regardless of the traffic pattern.
//! Patterns come from a seeded [`SimRng`], so each case is reproducible.

use secbus_bus::{Op, Width};
use secbus_noc::{Mesh, NocConfig, NodeId, Packet, Topology};
use secbus_sim::{Cycle, SimRng};

#[test]
fn every_packet_delivers_exactly_once() {
    for case in 0u64..64 {
        let mut rng = SimRng::new(0x0e5 + case);
        let cols = 2 + rng.below(3) as u8;
        let rows = 2 + rng.below(3) as u8;
        let topology = Topology::new(cols, rows);
        let mut mesh = Mesh::new(topology, NocConfig::default());
        let mut expected: Vec<(NodeId, u64)> = Vec::new();
        let routes = 1 + rng.below(39) as usize;
        for _ in 0..routes {
            let s = rng.below(25) as u8;
            let d = rng.below(25) as u8;
            let flits = 1 + rng.below(5) as u16;
            let at = rng.below(50);
            let src = NodeId::new(s % cols, (s / cols) % rows);
            let dst = NodeId::new(d % cols, (d / cols) % rows);
            let id = mesh.alloc_id();
            mesh.inject(
                Packet {
                    id,
                    src,
                    dst,
                    op: Op::Read,
                    addr: 0,
                    width: Width::Word,
                    data: 0,
                    flits,
                    injected_at: Cycle(at),
                },
                Cycle(at),
            );
            expected.push((dst, id.0));
        }
        let total = expected.len();
        let mut delivered: Vec<(NodeId, u64)> = Vec::new();
        for c in 0..200_000u64 {
            mesh.tick(Cycle(c));
            for node in topology.nodes() {
                while let Some(p) = mesh.deliver(node) {
                    delivered.push((node, p.id.0));
                }
            }
            if delivered.len() == total && mesh.in_flight() == 0 {
                break;
            }
        }
        assert_eq!(
            mesh.in_flight(),
            0,
            "case {case}: packets stuck in the mesh"
        );
        delivered.sort_unstable_by_key(|&(_, id)| id);
        expected.sort_unstable_by_key(|&(_, id)| id);
        assert_eq!(
            delivered, expected,
            "case {case}: every packet exactly once, at its dst"
        );
    }
}
