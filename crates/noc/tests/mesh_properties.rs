//! Property tests on the mesh: every injected packet is delivered exactly
//! once at its destination, regardless of the traffic pattern.

use proptest::prelude::*;
use secbus_bus::{Op, Width};
use secbus_noc::{Mesh, NocConfig, NodeId, Packet, Topology};
use secbus_sim::Cycle;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_packet_delivers_exactly_once(
        cols in 2u8..5,
        rows in 2u8..5,
        routes in proptest::collection::vec((0u8..25, 0u8..25, 1u16..6, 0u64..50), 1..40),
    ) {
        let topology = Topology::new(cols, rows);
        let mut mesh = Mesh::new(topology, NocConfig::default());
        let mut expected: Vec<(NodeId, u64)> = Vec::new();
        for (s, d, flits, at) in routes {
            let src = NodeId::new(s % cols, (s / cols) % rows);
            let dst = NodeId::new(d % cols, (d / cols) % rows);
            let id = mesh.alloc_id();
            mesh.inject(
                Packet {
                    id,
                    src,
                    dst,
                    op: Op::Read,
                    addr: 0,
                    width: Width::Word,
                    data: 0,
                    flits,
                    injected_at: Cycle(at),
                },
                Cycle(at),
            );
            expected.push((dst, id.0));
        }
        let total = expected.len();
        let mut delivered: Vec<(NodeId, u64)> = Vec::new();
        for c in 0..200_000u64 {
            mesh.tick(Cycle(c));
            for node in topology.nodes() {
                while let Some(p) = mesh.deliver(node) {
                    delivered.push((node, p.id.0));
                }
            }
            if delivered.len() == total && mesh.in_flight() == 0 {
                break;
            }
        }
        prop_assert_eq!(mesh.in_flight(), 0, "packets stuck in the mesh");
        delivered.sort_unstable_by_key(|&(_, id)| id);
        expected.sort_unstable_by_key(|&(_, id)| id);
        prop_assert_eq!(delivered, expected, "every packet exactly once, at its dst");
    }
}
