//! The packet-switched mesh, with an optional fault-tolerant transport.
//!
//! Packet-level model: a packet follows its precomputed route; at each
//! hop it competes FIFO for the output link of the current router. A hop
//! costs `router_cycles` (pipeline) plus `flits × flit_cycles`
//! (serialization), and a link carries one packet at a time. This captures
//! what matters for the comparison with the shared bus: per-hop latency,
//! path parallelism (disjoint routes do not contend) and hot-spot
//! contention (everyone heading to one memory node queues on its links).
//!
//! With [`NocConfig::protected`] on, every hop runs the condensed form of
//! the [`crate::link`] protocol — flit CRC-32, per-link sequence numbers,
//! ack/nack, bounded retransmission — and the mesh maintains a
//! [`FaultMap`] fed by two deterministic detectors:
//!
//! * **consecutive-CRC/ack-failure streaks** declare a directed link dead
//!   after [`NocConfig::link_fail_streak`] back-to-back failures;
//! * **heartbeats** declare a router dead [`NocConfig::heartbeat_timeout`]
//!   cycles after it stops responding.
//!
//! Detected failures trigger fault-region-aware rerouting
//! ([`adaptive_route`]); an unroutable destination **fails secure** — the
//! packet is converted into a [`NocAlert`] (containment signal for the
//! requesting interface), never silently dropped and never delivered
//! anywhere other than its destination's network interface. The clean
//! path costs exactly the same cycles as the unprotected mesh, so every
//! seed latency test holds for both modes.

use std::collections::VecDeque;

use secbus_bus::{Op, Width};
use secbus_fault::FaultKind;
use secbus_sim::{Cycle, Stats, TraceEvent, Tracer};

use crate::link::crc32;
use crate::topology::{adaptive_route, direction_index, xy_route, FaultMap, NodeId, Topology};

/// Unique packet identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketId(pub u64);

/// A request or response moving through the mesh.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Unique id.
    pub id: PacketId,
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
    /// Read or write (requests) / completion flag (responses reuse Op).
    pub op: Op,
    /// Target byte address (requests).
    pub addr: u32,
    /// Access width.
    pub width: Width,
    /// Payload word.
    pub data: u32,
    /// Payload length in flits (serialization cost).
    pub flits: u16,
    /// Injection time.
    pub injected_at: Cycle,
}

/// End-to-end content stamp: CRC-32 over the fields a wire fault can
/// corrupt (header address + payload word). The ground-truth observer
/// the S-15 soak uses to count *undetected* corruptions.
fn content_stamp(p: &Packet) -> u32 {
    let mut bytes = [0u8; 8];
    bytes[..4].copy_from_slice(&p.addr.to_le_bytes());
    bytes[4..].copy_from_slice(&p.data.to_le_bytes());
    crc32(&bytes)
}

/// Mesh timing and protection parameters.
#[derive(Debug, Clone, Copy)]
pub struct NocConfig {
    /// Router pipeline depth per hop.
    pub router_cycles: u64,
    /// Serialization cost per flit on each link.
    pub flit_cycles: u64,
    /// Link-level protection: flit CRC + ack/nack + retransmission,
    /// failure detection and security-preserving adaptive rerouting.
    /// Off reproduces the bare mesh cycle for cycle.
    pub protected: bool,
    /// Consecutive CRC/ack failures before a link enters the fault map.
    pub link_fail_streak: u32,
    /// Retransmission budget per hop before the packet escalates to an
    /// alert (livelock bound on a flapping link).
    pub max_retx_per_hop: u32,
    /// Reroute budget per packet (livelock bound on cascading failures).
    pub max_reroutes: u32,
    /// Cycles without a heartbeat before neighbors declare a router dead.
    pub heartbeat_timeout: u64,
    /// Buffer credits per router: the maximum number of packets resident
    /// in one node. Injection at a full source is refused (admission
    /// control) and a hop into a full downstream router waits for a
    /// credit, so mesh memory is bounded by `nodes × node_capacity`.
    pub node_capacity: usize,
    /// Protected mode only: cycles a flight may wait for a downstream
    /// credit before it escalates to a [`LossReason::CreditStall`] alert
    /// (the anti-wedge bound; the bare mesh waits forever, like
    /// hardware without a timeout).
    pub max_credit_wait: u64,
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            router_cycles: 3,
            flit_cycles: 1,
            protected: false,
            link_fail_streak: 3,
            max_retx_per_hop: 8,
            max_reroutes: 8,
            heartbeat_timeout: 48,
            node_capacity: 64,
            max_credit_wait: 256,
        }
    }
}

impl NocConfig {
    /// The default timing with the fault-tolerant transport enabled.
    pub fn protected() -> Self {
        NocConfig {
            protected: true,
            ..NocConfig::default()
        }
    }
}

/// Why a packet could not be delivered. Every loss in protected mode is
/// accounted with exactly one of these (fail secure: alert, never a
/// silent drop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossReason {
    /// No believed-healthy path to the destination exists (or the
    /// destination's own router is dead).
    Unroutable,
    /// The router the packet was resident in was declared dead.
    RouterFailed,
    /// The per-hop retransmission budget ran out on a flapping link.
    RetriesExhausted,
    /// The per-packet reroute budget ran out (cascading failures).
    RerouteBudgetExhausted,
    /// A flight carried an empty route — a routing-layer fault caught at
    /// delivery instead of a panic.
    EmptyRoute,
    /// The route terminated somewhere other than the destination; the
    /// packet was withheld rather than delivered past its enforcement
    /// point.
    Misrouted,
    /// Buffer credits ran out: admission was refused at a full source
    /// node, or a flight waited longer than
    /// [`NocConfig::max_credit_wait`] for a downstream credit.
    CreditStall,
}

impl LossReason {
    /// Stable short name (stats/report key).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            LossReason::Unroutable => "unroutable",
            LossReason::RouterFailed => "router_failed",
            LossReason::RetriesExhausted => "retries_exhausted",
            LossReason::RerouteBudgetExhausted => "reroute_budget",
            LossReason::EmptyRoute => "empty_route",
            LossReason::Misrouted => "misrouted",
            LossReason::CreditStall => "credit_stall",
        }
    }

    /// Full stats key (`noc.alert.<mnemonic>`), precomputed so the alert
    /// path never allocates.
    pub fn stat_key(&self) -> &'static str {
        match self {
            LossReason::Unroutable => "noc.alert.unroutable",
            LossReason::RouterFailed => "noc.alert.router_failed",
            LossReason::RetriesExhausted => "noc.alert.retries_exhausted",
            LossReason::RerouteBudgetExhausted => "noc.alert.reroute_budget",
            LossReason::EmptyRoute => "noc.alert.empty_route",
            LossReason::Misrouted => "noc.alert.misrouted",
            LossReason::CreditStall => "noc.alert.credit_stall",
        }
    }

    /// Every reason, in report-column order.
    pub const ALL: [LossReason; 7] = [
        LossReason::Unroutable,
        LossReason::RouterFailed,
        LossReason::RetriesExhausted,
        LossReason::RerouteBudgetExhausted,
        LossReason::EmptyRoute,
        LossReason::Misrouted,
        LossReason::CreditStall,
    ];
}

/// A fail-secure containment signal: the transport could not deliver
/// `packet` and says so instead of dropping it.
#[derive(Debug, Clone)]
pub struct NocAlert {
    /// The undeliverable packet.
    pub packet: Packet,
    /// Why it could not be delivered.
    pub reason: LossReason,
    /// When the transport gave up.
    pub at: Cycle,
}

/// Per-delivery transport metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryInfo {
    /// Ground truth: the delivered content matches what was injected.
    pub clean: bool,
    /// Reroutes this packet took.
    pub reroutes: u32,
    /// Retransmissions this packet needed.
    pub retransmissions: u32,
}

/// One in-flight packet's progress.
struct Flight {
    packet: Packet,
    route: Vec<NodeId>,
    /// Index of the NEXT hop to traverse (route[hop-1] -> route[hop]).
    hop: usize,
    /// Cycle at which the current hop finishes (packet sits at
    /// route[hop-1] until then).
    ready_at: u64,
    /// Content stamp taken at injection (ground-truth observer).
    stamp: u32,
    /// Retransmissions spent on the current hop.
    retx_hop: u32,
    /// Total retransmissions for this packet.
    retransmissions: u32,
    /// Reroutes taken.
    reroutes: u32,
    /// Consecutive cycles spent waiting for a downstream buffer credit.
    credit_wait: u64,
    /// Wedged inside a stuck router (unprotected mode only).
    parked: bool,
}

impl Flight {
    /// The router the packet currently sits in.
    fn position(&self) -> Option<NodeId> {
        self.route.get(self.hop.saturating_sub(1)).copied()
    }
}

/// Per-directed-link state: timing, ground-truth faults, and the
/// condensed link-protocol bookkeeping.
#[derive(Debug, Clone, Copy, Default)]
struct LinkState {
    /// Cycle at which the link is free again.
    free_at: u64,
    /// Pending one-shot wire corruption: (xor, hits_header).
    transient: Option<(u32, bool)>,
    /// Ground truth: the link is physically dead.
    broken: bool,
    /// Consecutive CRC/ack failures (detector input).
    streak: u32,
    /// Per-link transmit sequence counter (successful transfers).
    tx_seq: u64,
}

/// Per-router ground-truth state.
#[derive(Debug, Clone, Copy, Default)]
struct RouterState {
    /// Cycle the router died at (ground truth; heartbeat detection
    /// declares it dead `heartbeat_timeout` cycles later).
    stuck_since: Option<u64>,
}

enum Outcome {
    Finished(usize),
    Lost(usize, LossReason),
    SilentDrop(usize),
}

/// The mesh network.
pub struct Mesh {
    topology: Topology,
    config: NocConfig,
    links: Vec<LinkState>,
    routers: Vec<RouterState>,
    fault_map: FaultMap,
    flights: Vec<Flight>,
    /// Packets resident per node — the credit counter backing
    /// [`NocConfig::node_capacity`].
    occupancy: Vec<u32>,
    delivered: Vec<VecDeque<(Packet, DeliveryInfo)>>,
    alerts: VecDeque<NocAlert>,
    next_id: u64,
    stats: Stats,
    /// Observability spine, if attached.
    tracer: Option<Tracer>,
}

/// Trace lane used for NoC-raised alerts (no firewall id applies).
const NOC_ALERT_LANE: u8 = u8::MAX;

impl Mesh {
    /// Create a mesh.
    pub fn new(topology: Topology, config: NocConfig) -> Self {
        Mesh {
            links: vec![LinkState::default(); topology.len() * 4],
            routers: vec![RouterState::default(); topology.len()],
            fault_map: FaultMap::new(topology),
            occupancy: vec![0; topology.len()],
            delivered: (0..topology.len()).map(|_| VecDeque::new()).collect(),
            topology,
            config,
            flights: Vec::new(),
            alerts: VecDeque::new(),
            next_id: 0,
            stats: Stats::new(),
            tracer: None,
        }
    }

    /// Attach the observability spine; the mesh records per-hop,
    /// retransmission, and containment-alert events.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// The mesh shape.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// The transport configuration.
    pub fn config(&self) -> &NocConfig {
        &self.config
    }

    /// The *detected* degraded state (what routing believes).
    pub fn fault_map(&self) -> &FaultMap {
        &self.fault_map
    }

    /// Allocate a packet id.
    pub fn alloc_id(&mut self) -> PacketId {
        let id = PacketId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Apply a scheduled hardware fault to the mesh. Returns `true` for
    /// the NoC fault classes (consumed), `false` for classes that have no
    /// surface here (bus/DDR/crypto faults).
    pub fn apply_fault(&mut self, kind: &FaultKind, now: Cycle) -> bool {
        let nodes = self.topology.len();
        match *kind {
            FaultKind::LinkBitFlip {
                node,
                dir,
                xor,
                header,
            } => {
                let idx = (node as usize % nodes) * 4 + usize::from(dir & 3);
                self.links[idx].transient = Some((xor, header));
                self.stats.incr("noc.fault.link_bitflip");
                true
            }
            FaultKind::LinkDrop { node, dir } => {
                let idx = (node as usize % nodes) * 4 + usize::from(dir & 3);
                self.links[idx].broken = true;
                self.stats.incr("noc.fault.link_drop");
                true
            }
            FaultKind::RouterStuck { node } => {
                let r = node as usize % nodes;
                self.routers[r].stuck_since.get_or_insert(now.get());
                self.stats.incr("noc.fault.router_stuck");
                true
            }
            _ => false,
        }
    }

    fn raise_alert(&mut self, packet: Packet, reason: LossReason, at: Cycle) {
        self.stats.incr("noc.alerts");
        self.stats.incr(reason.stat_key());
        if let Some(t) = &self.tracer {
            t.record(
                at,
                TraceEvent::Alert {
                    firewall: NOC_ALERT_LANE,
                    violation: reason.mnemonic(),
                },
            );
        }
        self.alerts.push_back(NocAlert { packet, reason, at });
    }

    /// Pop the next pending containment alert.
    pub fn take_alert(&mut self) -> Option<NocAlert> {
        self.alerts.pop_front()
    }

    /// Inject a packet, refusing admission when the source node's buffer
    /// credits are exhausted. Returns `true` when the packet entered the
    /// mesh (or failed secure into an alert), `false` when it was
    /// refused.
    ///
    /// A refusal at a protected source raises a
    /// [`LossReason::CreditStall`] alert — the caller gets a typed
    /// overload signal, never a silent loss. The bare mesh drops the
    /// packet on the floor (ground truth counted in
    /// `noc.silent_drops`), which is exactly the wedge/loss behavior the
    /// protected transport exists to prevent.
    ///
    /// # Panics
    /// Panics if source or destination are outside the mesh.
    pub fn try_inject(&mut self, packet: Packet, now: Cycle) -> bool {
        assert!(self.topology.contains(packet.src), "src outside mesh");
        let src = self.topology.index(packet.src);
        if self.occupancy[src] >= self.config.node_capacity as u32 {
            self.stats.incr("noc.ingress_refused");
            if self.config.protected {
                self.raise_alert(packet, LossReason::CreditStall, now);
            } else {
                self.stats.incr("noc.silent_drops");
            }
            return false;
        }
        self.inject(packet, now);
        true
    }

    /// Inject a packet at its source node at time `now`, bypassing
    /// admission control (the closed-loop harnesses self-limit).
    ///
    /// In protected mode an already-unroutable destination fails secure
    /// immediately: the packet becomes a [`NocAlert`] instead of entering
    /// the mesh.
    ///
    /// # Panics
    /// Panics if source or destination are outside the mesh.
    pub fn inject(&mut self, packet: Packet, now: Cycle) {
        assert!(self.topology.contains(packet.src), "src outside mesh");
        assert!(self.topology.contains(packet.dst), "dst outside mesh");
        self.stats.incr("noc.injected");
        let route = if self.config.protected {
            match adaptive_route(packet.src, packet.dst, &self.fault_map) {
                Some(r) => r,
                None => {
                    self.raise_alert(packet, LossReason::Unroutable, now);
                    return;
                }
            }
        } else {
            xy_route(packet.src, packet.dst)
        };
        let stamp = content_stamp(&packet);
        let local = route.len() == 1;
        self.occupancy[self.topology.index(packet.src)] += 1;
        self.flights.push(Flight {
            ready_at: if local {
                // Local delivery: just the router pipeline once.
                now.get() + self.config.router_cycles
            } else {
                now.get()
            },
            packet,
            route,
            hop: 1,
            stamp,
            retx_hop: 0,
            retransmissions: 0,
            reroutes: 0,
            credit_wait: 0,
            parked: false,
        });
    }

    /// Remove a flight, returning its node's buffer credit.
    fn remove_flight(&mut self, idx: usize) -> Flight {
        let flight = self.flights.swap_remove(idx);
        if let Some(pos) = flight.position() {
            let n = self.topology.index(pos);
            self.occupancy[n] = self.occupancy[n].saturating_sub(1);
        }
        flight
    }

    /// Heartbeat detector: `heartbeat_timeout` cycles after a router
    /// stops responding, its neighbors declare it dead. Packets resident
    /// in the dead router are converted into alerts (the containment
    /// notification), and the fault map steers future routes around it.
    fn detect_dead_routers(&mut self, now: Cycle) {
        if !self.config.protected {
            return;
        }
        for idx in 0..self.routers.len() {
            let Some(since) = self.routers[idx].stuck_since else {
                continue;
            };
            if now.get() < since + self.config.heartbeat_timeout {
                continue;
            }
            let node = NodeId::new(
                (idx % usize::from(self.topology.cols)) as u8,
                (idx / usize::from(self.topology.cols)) as u8,
            );
            if !self.fault_map.fail_router(node) {
                continue; // already known
            }
            self.stats.incr("noc.router_failures_detected");
            // Collect the packets that died inside the router.
            let mut lost = Vec::new();
            let mut i = 0;
            while i < self.flights.len() {
                if self.flights[i].position() == Some(node) {
                    lost.push(self.flights.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            self.occupancy[idx] = self.occupancy[idx].saturating_sub(lost.len() as u32);
            for flight in lost {
                self.raise_alert(flight.packet, LossReason::RouterFailed, now);
            }
        }
    }

    /// Reroute `flight` from its current position. Returns the loss
    /// reason when the packet must be abandoned (fail secure).
    fn reroute(
        flight: &mut Flight,
        fault_map: &FaultMap,
        config: &NocConfig,
        stats: &mut Stats,
        now: Cycle,
    ) -> Option<LossReason> {
        let Some(from) = flight.position() else {
            return Some(LossReason::EmptyRoute);
        };
        flight.reroutes += 1;
        if flight.reroutes > config.max_reroutes {
            return Some(LossReason::RerouteBudgetExhausted);
        }
        match adaptive_route(from, flight.packet.dst, fault_map) {
            Some(route) => {
                stats.incr("noc.reroutes");
                flight.route = route;
                flight.hop = 1;
                flight.retx_hop = 0;
                // Route recomputation charges one router pipeline pass.
                flight.ready_at = now.get() + config.router_cycles;
                None
            }
            None => Some(LossReason::Unroutable),
        }
    }

    /// Advance the network one cycle: move every flight whose current hop
    /// completed and whose next link is free.
    pub fn tick(&mut self, now: Cycle) {
        self.detect_dead_routers(now);
        let mut outcomes: Vec<Outcome> = Vec::new();
        for (idx, flight) in self.flights.iter_mut().enumerate() {
            if flight.parked || flight.ready_at > now.get() {
                continue;
            }
            if flight.hop >= flight.route.len() {
                outcomes.push(Outcome::Finished(idx));
                continue;
            }
            let from = flight.route[flight.hop - 1];
            let to = flight.route[flight.hop];
            let from_idx = self.topology.index(from);
            // A dead router cannot forward what it holds. Protected mode
            // waits for the heartbeat detector to collect the packet
            // (alert); the bare mesh wedges, exactly like hardware.
            if self.routers[from_idx].stuck_since.is_some() {
                if !self.config.protected {
                    flight.parked = true;
                    self.stats.incr("noc.parked_in_dead_router");
                }
                continue;
            }
            if self.config.protected
                && (!self.fault_map.router_ok(to) || !self.fault_map.link_ok(from, to))
            {
                // The fault map already knows this hop is dead: detour.
                if let Some(reason) =
                    Self::reroute(flight, &self.fault_map, &self.config, &mut self.stats, now)
                {
                    outcomes.push(Outcome::Lost(idx, reason));
                }
                continue;
            }
            let to_idx = self.topology.index(to);
            // Credit-based flow control: do not transmit into a router
            // with no free buffer slot. Protected flights escalate to a
            // CreditStall alert after `max_credit_wait` cycles (anti-
            // wedge bound); the bare mesh waits indefinitely.
            if self.occupancy[to_idx] >= self.config.node_capacity as u32 {
                self.stats.incr("noc.credit_wait_cycles");
                flight.credit_wait += 1;
                if self.config.protected && flight.credit_wait > self.config.max_credit_wait {
                    outcomes.push(Outcome::Lost(idx, LossReason::CreditStall));
                }
                continue;
            }
            let link = from_idx * 4 + direction_index(from, to);
            if self.links[link].free_at > now.get() {
                self.stats.incr("noc.link_wait_cycles");
                continue; // contend next cycle
            }
            let hop_cost = self.config.router_cycles
                + self.config.flit_cycles * u64::from(flight.packet.flits.max(1));
            let to_dead = self.routers[to_idx].stuck_since.is_some();
            let broken = self.links[link].broken;
            if broken || to_dead {
                // Ground truth: nothing on the far side acks this
                // transfer.
                self.links[link].free_at = now.get() + hop_cost;
                if !self.config.protected {
                    if broken {
                        // The flits leave the sender and vanish.
                        outcomes.push(Outcome::SilentDrop(idx));
                    } else {
                        // The link works; the packet enters the dead
                        // router and parks there (handled next tick).
                        flight.ready_at = now.get() + hop_cost;
                        flight.hop += 1;
                        flight.credit_wait = 0;
                        self.occupancy[from_idx] = self.occupancy[from_idx].saturating_sub(1);
                        self.occupancy[to_idx] += 1;
                        self.stats.incr("noc.hops");
                        self.stats.record("noc.hop_latency", hop_cost);
                        if let Some(t) = &self.tracer {
                            t.record(
                                now,
                                TraceEvent::NocHop {
                                    packet: flight.packet.id.0,
                                    node: from_idx as u16,
                                    latency: hop_cost,
                                },
                            );
                        }
                    }
                    continue;
                }
                // Protected: ack timeout → retransmit, feed the streak
                // detector.
                flight.ready_at = now.get() + hop_cost;
                flight.retx_hop += 1;
                flight.retransmissions += 1;
                self.stats.incr("noc.ack_timeouts");
                self.stats.incr("noc.retransmissions");
                if let Some(t) = &self.tracer {
                    t.record(
                        now,
                        TraceEvent::Retransmit {
                            id: flight.packet.id.0,
                            layer: "noc",
                        },
                    );
                }
                self.links[link].streak += 1;
                if self.links[link].streak >= self.config.link_fail_streak {
                    let dir = direction_index(from, to);
                    if self.fault_map.fail_link(from, dir) {
                        self.stats.incr("noc.link_failures_detected");
                    }
                } else if flight.retx_hop >= self.config.max_retx_per_hop {
                    outcomes.push(Outcome::Lost(idx, LossReason::RetriesExhausted));
                }
                continue;
            }
            if let Some((xor, header)) = self.links[link].transient.take() {
                if self.config.protected {
                    // CRC-32 catches any ≤32-bit wire burst: the receiver
                    // nacks, the sender retransmits the pristine flit.
                    self.links[link].free_at = now.get() + hop_cost;
                    flight.ready_at = now.get() + hop_cost;
                    flight.retx_hop += 1;
                    flight.retransmissions += 1;
                    self.stats.incr("noc.crc_detected");
                    self.stats.incr("noc.retransmissions");
                    if let Some(t) = &self.tracer {
                        t.record(
                            now,
                            TraceEvent::Retransmit {
                                id: flight.packet.id.0,
                                layer: "noc",
                            },
                        );
                    }
                    self.links[link].streak += 1;
                    if flight.retx_hop >= self.config.max_retx_per_hop {
                        outcomes.push(Outcome::Lost(idx, LossReason::RetriesExhausted));
                    }
                    continue;
                }
                // Bare mesh: the corruption rides to the endpoint.
                if header {
                    flight.packet.addr ^= xor;
                } else {
                    flight.packet.data ^= xor;
                }
                self.stats.incr("noc.wire_corruptions");
            }
            // Clean transfer: advance, reset the detectors.
            self.links[link].free_at = now.get() + hop_cost;
            self.links[link].streak = 0;
            self.links[link].tx_seq += 1;
            flight.retx_hop = 0;
            flight.credit_wait = 0;
            flight.ready_at = now.get() + hop_cost;
            flight.hop += 1;
            self.occupancy[from_idx] = self.occupancy[from_idx].saturating_sub(1);
            self.occupancy[to_idx] += 1;
            self.stats.incr("noc.hops");
            self.stats.record("noc.hop_latency", hop_cost);
            if let Some(t) = &self.tracer {
                t.record(
                    now,
                    TraceEvent::NocHop {
                        packet: flight.packet.id.0,
                        node: from_idx as u16,
                        latency: hop_cost,
                    },
                );
            }
        }
        // Apply outcomes back to front so swap_remove indices stay valid.
        for outcome in outcomes.into_iter().rev() {
            match outcome {
                Outcome::Finished(idx) => {
                    let flight = self.remove_flight(idx);
                    self.finish(flight, now);
                }
                Outcome::Lost(idx, reason) => {
                    let flight = self.remove_flight(idx);
                    self.raise_alert(flight.packet, reason, now);
                }
                Outcome::SilentDrop(idx) => {
                    let _ = self.remove_flight(idx);
                    // Ground truth only: nothing in the system knows.
                    self.stats.incr("noc.silent_drops");
                }
            }
        }
    }

    /// Hand a completed flight to its destination interface — or fail
    /// secure when the route is defective.
    fn finish(&mut self, flight: Flight, now: Cycle) {
        let Some(&last) = flight.route.last() else {
            // An empty route is a detected routing fault, not a panic.
            self.stats.incr("noc.empty_route_alerts");
            self.raise_alert(flight.packet, LossReason::EmptyRoute, now);
            return;
        };
        if last != flight.packet.dst {
            // Never deliver anywhere but the destination's enforcement
            // point: a misrouted packet is withheld and alerted.
            self.raise_alert(flight.packet, LossReason::Misrouted, now);
            return;
        }
        let clean = content_stamp(&flight.packet) == flight.stamp;
        if !clean {
            self.stats.incr("noc.delivered_corrupt");
        }
        self.stats.incr("noc.delivered");
        let node = self.topology.index(last);
        self.delivered[node].push_back((
            flight.packet,
            DeliveryInfo {
                clean,
                reroutes: flight.reroutes,
                retransmissions: flight.retransmissions,
            },
        ));
    }

    /// Pop the next packet delivered to endpoint `node`.
    pub fn deliver(&mut self, node: NodeId) -> Option<Packet> {
        self.deliver_with_info(node).map(|(p, _)| p)
    }

    /// Pop the next delivery with its transport metadata.
    pub fn deliver_with_info(&mut self, node: NodeId) -> Option<(Packet, DeliveryInfo)> {
        self.delivered[self.topology.index(node)].pop_front()
    }

    /// Packets currently in flight.
    pub fn in_flight(&self) -> usize {
        self.flights.len()
    }

    /// Packets wedged inside dead routers (bare mesh only; the protected
    /// transport converts these into alerts).
    pub fn parked(&self) -> usize {
        self.flights.iter().filter(|f| f.parked).count()
    }

    /// Packets resident at `node` — the consumed buffer credits out of
    /// [`NocConfig::node_capacity`].
    pub fn node_occupancy(&self, node: NodeId) -> u32 {
        self.occupancy[self.topology.index(node)]
    }

    /// Network statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Whether any delivered packet is waiting to be popped by a
    /// destination (the runner's delivery step has work to do).
    pub fn has_pending_deliveries(&self) -> bool {
        self.delivered.iter().any(|q| !q.is_empty())
    }

    /// Whether any alert is waiting to be taken.
    pub fn has_pending_alerts(&self) -> bool {
        !self.alerts.is_empty()
    }

    /// Event-core seam: classify what ticking the mesh at `now` would
    /// do. `MeshQuiet::Active` — the tick may move a flight, account a
    /// wait cycle, or fire the heartbeat detector; it must run.
    /// `MeshQuiet::Until(c)` — every tick strictly before `c` is a
    /// state no-op (all flights parked or not yet ready, no detection
    /// due); tick again at `c`. `MeshQuiet::Idle` — ticks are pure
    /// until new packets are injected.
    ///
    /// Deliberately conservative: any unparked flight whose `ready_at`
    /// has passed makes the mesh Active even if its next hop is
    /// blocked, because blocked-hop ticks charge per-cycle wait
    /// statistics that must stay byte-identical.
    pub fn next_event(&self, now: Cycle) -> MeshQuiet {
        let mut next: Option<u64> = None;
        let mut merge = |c: u64| {
            next = Some(next.map_or(c, |n| n.min(c)));
        };
        for flight in &self.flights {
            if flight.parked {
                continue; // wedged forever (bare mesh); pure
            }
            if flight.ready_at <= now.get() {
                return MeshQuiet::Active;
            }
            merge(flight.ready_at);
        }
        if self.config.protected {
            for (idx, router) in self.routers.iter().enumerate() {
                let Some(since) = router.stuck_since else {
                    continue;
                };
                let node = NodeId::new(
                    (idx % usize::from(self.topology.cols)) as u8,
                    (idx / usize::from(self.topology.cols)) as u8,
                );
                if !self.fault_map.router_ok(node) {
                    continue; // already detected; detector is pure
                }
                let deadline = since + self.config.heartbeat_timeout;
                if deadline <= now.get() {
                    return MeshQuiet::Active;
                }
                merge(deadline);
            }
        }
        match next {
            Some(c) => MeshQuiet::Until(Cycle(c)),
            None => MeshQuiet::Idle,
        }
    }
}

/// What ticking the mesh would do, as reported by
/// [`Mesh::next_event`] — the event-driven core's skip seam.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeshQuiet {
    /// Tick may change state this cycle; do not skip.
    Active,
    /// Ticks strictly before the cycle are pure; tick again at it.
    Until(Cycle),
    /// Ticks are pure until new packets are injected.
    Idle,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(mesh: &mut Mesh, src: NodeId, dst: NodeId, flits: u16, now: Cycle) -> PacketId {
        let id = mesh.alloc_id();
        mesh.inject(
            Packet {
                id,
                src,
                dst,
                op: Op::Read,
                addr: 0,
                width: Width::Word,
                data: 0,
                flits,
                injected_at: now,
            },
            now,
        );
        id
    }

    fn run_until_delivered(mesh: &mut Mesh, dst: NodeId, max: u64) -> (Packet, u64) {
        for c in 0..max {
            mesh.tick(Cycle(c));
            if let Some(p) = mesh.deliver(dst) {
                return (p, c);
            }
        }
        panic!("not delivered within {max} cycles");
    }

    #[test]
    fn single_hop_latency_is_router_plus_flits() {
        let mut mesh = Mesh::new(Topology::new(2, 1), NocConfig::default());
        let dst = NodeId::new(1, 0);
        packet(&mut mesh, NodeId::new(0, 0), dst, 1, Cycle(0));
        let (_, at) = run_until_delivered(&mut mesh, dst, 100);
        // 1 hop: 3 (router) + 1 (flit) = 4 cycles; delivery observed on
        // the tick after ready.
        assert_eq!(at, 4);
    }

    #[test]
    fn latency_grows_with_distance() {
        let mut a = Mesh::new(Topology::new(4, 4), NocConfig::default());
        let near = NodeId::new(1, 0);
        packet(&mut a, NodeId::new(0, 0), near, 1, Cycle(0));
        let (_, t_near) = run_until_delivered(&mut a, near, 100);

        let mut b = Mesh::new(Topology::new(4, 4), NocConfig::default());
        let far = NodeId::new(3, 3);
        packet(&mut b, NodeId::new(0, 0), far, 1, Cycle(0));
        let (_, t_far) = run_until_delivered(&mut b, far, 100);
        assert!(t_far > t_near);
        // 6 hops × 4 cycles = 24 (+1 observation tick).
        assert_eq!(t_far, 24);
    }

    #[test]
    fn protection_costs_nothing_on_a_clean_mesh() {
        // The protected transport must not change clean-path timing.
        let mut mesh = Mesh::new(Topology::new(4, 4), NocConfig::protected());
        let far = NodeId::new(3, 3);
        packet(&mut mesh, NodeId::new(0, 0), far, 1, Cycle(0));
        let (_, at) = run_until_delivered(&mut mesh, far, 100);
        assert_eq!(at, 24);
        assert_eq!(mesh.stats().counter("noc.retransmissions"), 0);
    }

    #[test]
    fn disjoint_routes_do_not_contend() {
        let mut mesh = Mesh::new(Topology::new(4, 2), NocConfig::default());
        // Two packets on disjoint rows.
        let d0 = NodeId::new(3, 0);
        let d1 = NodeId::new(3, 1);
        packet(&mut mesh, NodeId::new(0, 0), d0, 1, Cycle(0));
        packet(&mut mesh, NodeId::new(0, 1), d1, 1, Cycle(0));
        let mut got = 0;
        let mut when = [0u64; 2];
        for c in 0..200 {
            mesh.tick(Cycle(c));
            if mesh.deliver(d0).is_some() {
                when[0] = c;
                got += 1;
            }
            if mesh.deliver(d1).is_some() {
                when[1] = c;
                got += 1;
            }
            if got == 2 {
                break;
            }
        }
        assert_eq!(got, 2);
        assert_eq!(when[0], when[1], "parallel rows deliver simultaneously");
    }

    #[test]
    fn shared_link_serializes() {
        let mut mesh = Mesh::new(Topology::new(2, 1), NocConfig::default());
        let dst = NodeId::new(1, 0);
        // Two packets over the same single link.
        packet(&mut mesh, NodeId::new(0, 0), dst, 1, Cycle(0));
        packet(&mut mesh, NodeId::new(0, 0), dst, 1, Cycle(0));
        let mut deliveries = Vec::new();
        for c in 0..100 {
            mesh.tick(Cycle(c));
            while mesh.deliver(dst).is_some() {
                deliveries.push(c);
            }
            if deliveries.len() == 2 {
                break;
            }
        }
        assert_eq!(deliveries.len(), 2);
        assert!(deliveries[1] >= deliveries[0] + 4, "{deliveries:?}");
        assert!(mesh.stats().counter("noc.link_wait_cycles") > 0);
    }

    #[test]
    fn local_delivery_works() {
        let mut mesh = Mesh::new(Topology::new(2, 2), NocConfig::default());
        let n = NodeId::new(1, 1);
        packet(&mut mesh, n, n, 1, Cycle(0));
        let (_, at) = run_until_delivered(&mut mesh, n, 10);
        assert!(at <= 4);
    }

    #[test]
    fn larger_packets_occupy_links_longer() {
        let mut mesh = Mesh::new(Topology::new(2, 1), NocConfig::default());
        let dst = NodeId::new(1, 0);
        packet(&mut mesh, NodeId::new(0, 0), dst, 8, Cycle(0));
        let (_, at) = run_until_delivered(&mut mesh, dst, 100);
        assert_eq!(at, 11); // 3 + 8 = 11
    }

    #[test]
    #[should_panic(expected = "outside mesh")]
    fn inject_outside_mesh_panics() {
        let mut mesh = Mesh::new(Topology::new(2, 2), NocConfig::default());
        packet(&mut mesh, NodeId::new(0, 0), NodeId::new(5, 5), 1, Cycle(0));
    }

    // ------------------------------------------------------------------
    // Fault-tolerant transport
    // ------------------------------------------------------------------

    fn bitflip(node: u16, dir: u8, xor: u32, header: bool) -> FaultKind {
        FaultKind::LinkBitFlip {
            node,
            dir,
            xor,
            header,
        }
    }

    #[test]
    fn protected_mesh_retransmits_through_wire_corruption() {
        let mut mesh = Mesh::new(Topology::new(2, 1), NocConfig::protected());
        let dst = NodeId::new(1, 0);
        // Corrupt the eastward link out of (0,0).
        mesh.apply_fault(&bitflip(0, 2, 0xDEAD_BEEF, false), Cycle(0));
        packet(&mut mesh, NodeId::new(0, 0), dst, 1, Cycle(0));
        let (p, at) = run_until_delivered(&mut mesh, dst, 100);
        assert_eq!(p.data, 0, "delivered content is pristine");
        assert_eq!(at, 8, "one retransmission costs one extra hop slot");
        assert_eq!(mesh.stats().counter("noc.crc_detected"), 1);
        assert_eq!(mesh.stats().counter("noc.retransmissions"), 1);
        assert_eq!(mesh.stats().counter("noc.delivered_corrupt"), 0);
    }

    #[test]
    fn bare_mesh_delivers_wire_corruption_silently() {
        let mut mesh = Mesh::new(Topology::new(2, 1), NocConfig::default());
        let dst = NodeId::new(1, 0);
        mesh.apply_fault(&bitflip(0, 2, 0x55, false), Cycle(0));
        packet(&mut mesh, NodeId::new(0, 0), dst, 1, Cycle(0));
        let (p, _) = run_until_delivered(&mut mesh, dst, 100);
        assert_eq!(p.data, 0x55, "corruption reached the endpoint");
        assert_eq!(mesh.stats().counter("noc.delivered_corrupt"), 1);
    }

    #[test]
    fn header_corruption_is_caught_too() {
        let mut mesh = Mesh::new(Topology::new(2, 1), NocConfig::protected());
        let dst = NodeId::new(1, 0);
        mesh.apply_fault(&bitflip(0, 2, 0x1000, true), Cycle(0));
        packet(&mut mesh, NodeId::new(0, 0), dst, 1, Cycle(0));
        let (p, _) = run_until_delivered(&mut mesh, dst, 100);
        assert_eq!(p.addr, 0, "address survives intact");
        assert_eq!(mesh.stats().counter("noc.crc_detected"), 1);
    }

    #[test]
    fn broken_link_is_detected_and_rerouted_around() {
        let mut mesh = Mesh::new(Topology::new(3, 2), NocConfig::protected());
        let src = NodeId::new(0, 0);
        let dst = NodeId::new(2, 0);
        mesh.apply_fault(&FaultKind::LinkDrop { node: 0, dir: 2 }, Cycle(0));
        packet(&mut mesh, src, dst, 1, Cycle(0));
        let (p, _) = run_until_delivered(&mut mesh, dst, 400);
        assert_eq!(p.dst, dst);
        assert!(mesh.stats().counter("noc.ack_timeouts") >= 3);
        assert_eq!(mesh.stats().counter("noc.link_failures_detected"), 1);
        assert_eq!(mesh.stats().counter("noc.reroutes"), 1);
        assert!(!mesh.fault_map().is_clean());
        // The detour is remembered: a second packet reroutes at
        // injection with no further timeouts.
        let before = mesh.stats().counter("noc.ack_timeouts");
        packet(&mut mesh, src, dst, 1, Cycle(400));
        for c in 400..800 {
            mesh.tick(Cycle(c));
            if mesh.deliver(dst).is_some() {
                break;
            }
        }
        assert_eq!(mesh.stats().counter("noc.ack_timeouts"), before);
    }

    #[test]
    fn bare_mesh_drops_on_broken_link_silently() {
        let mut mesh = Mesh::new(Topology::new(3, 2), NocConfig::default());
        mesh.apply_fault(&FaultKind::LinkDrop { node: 0, dir: 2 }, Cycle(0));
        packet(&mut mesh, NodeId::new(0, 0), NodeId::new(2, 0), 1, Cycle(0));
        for c in 0..200 {
            mesh.tick(Cycle(c));
        }
        assert_eq!(mesh.in_flight(), 0);
        assert_eq!(mesh.stats().counter("noc.delivered"), 0);
        assert_eq!(mesh.stats().counter("noc.silent_drops"), 1);
        assert_eq!(mesh.stats().counter("noc.alerts"), 0, "nobody was told");
    }

    #[test]
    fn dead_router_is_detected_and_routed_around() {
        let mut mesh = Mesh::new(Topology::new(3, 3), NocConfig::protected());
        let src = NodeId::new(0, 0);
        let dst = NodeId::new(2, 0);
        // The router in the middle of the XY path dies before injection.
        mesh.apply_fault(&FaultKind::RouterStuck { node: 1 }, Cycle(0));
        packet(&mut mesh, src, dst, 1, Cycle(0));
        let (p, _) = run_until_delivered(&mut mesh, dst, 600);
        assert_eq!(p.dst, dst);
        assert!(
            mesh.fault_map().failed_router_count() == 1
                || mesh.fault_map().failed_link_count() >= 1,
            "some detector fired"
        );
    }

    #[test]
    fn packet_resident_in_dead_router_becomes_an_alert() {
        let mut mesh = Mesh::new(Topology::new(3, 1), NocConfig::protected());
        let src = NodeId::new(0, 0);
        let dst = NodeId::new(2, 0);
        packet(&mut mesh, src, dst, 1, Cycle(0));
        // Let the packet reach router (1,0) (first hop completes at
        // cycle 4), then kill that router while it is still resident.
        for c in 0..3 {
            mesh.tick(Cycle(c));
        }
        mesh.apply_fault(&FaultKind::RouterStuck { node: 1 }, Cycle(3));
        let mut alert = None;
        for c in 3..400 {
            mesh.tick(Cycle(c));
            if let Some(a) = mesh.take_alert() {
                alert = Some(a);
                break;
            }
        }
        let alert = alert.expect("resident packet must be alerted, not lost");
        assert_eq!(alert.reason, LossReason::RouterFailed);
        assert_eq!(alert.packet.dst, dst);
        assert_eq!(mesh.in_flight(), 0, "no deadlock");
    }

    #[test]
    fn unroutable_destination_fails_secure() {
        let mut mesh = Mesh::new(Topology::new(3, 3), NocConfig::protected());
        let dst = NodeId::new(2, 2);
        mesh.apply_fault(&FaultKind::RouterStuck { node: 8 }, Cycle(0));
        // Heartbeat detection declares (2,2) dead...
        for c in 0..(mesh.config().heartbeat_timeout + 2) {
            mesh.tick(Cycle(c));
        }
        // ...so injection to it alerts instead of entering the mesh.
        packet(&mut mesh, NodeId::new(0, 0), dst, 1, Cycle(60));
        let alert = mesh.take_alert().expect("unroutable must alert");
        assert_eq!(alert.reason, LossReason::Unroutable);
        assert_eq!(mesh.in_flight(), 0);
        assert_eq!(mesh.stats().counter("noc.delivered"), 0);
    }

    #[test]
    fn bare_mesh_wedges_in_a_dead_router() {
        let mut mesh = Mesh::new(Topology::new(3, 1), NocConfig::default());
        mesh.apply_fault(&FaultKind::RouterStuck { node: 1 }, Cycle(0));
        packet(&mut mesh, NodeId::new(0, 0), NodeId::new(2, 0), 1, Cycle(0));
        for c in 0..500 {
            mesh.tick(Cycle(c));
        }
        assert_eq!(mesh.in_flight(), 1, "the packet is wedged");
        assert_eq!(mesh.parked(), 1);
        assert_eq!(mesh.stats().counter("noc.alerts"), 0);
    }

    #[test]
    fn transient_streaks_do_not_kill_a_healthy_link() {
        // One transient on a link must not push it into the fault map.
        let mut mesh = Mesh::new(Topology::new(2, 1), NocConfig::protected());
        mesh.apply_fault(&bitflip(0, 2, 0xFF, false), Cycle(0));
        packet(&mut mesh, NodeId::new(0, 0), NodeId::new(1, 0), 1, Cycle(0));
        run_until_delivered(&mut mesh, NodeId::new(1, 0), 100);
        assert!(mesh.fault_map().is_clean());
    }

    #[test]
    fn fault_application_selectors_wrap() {
        let mut mesh = Mesh::new(Topology::new(2, 2), NocConfig::protected());
        // node 7 on a 4-node mesh wraps to node 3; dir 9 wraps to 1.
        assert!(mesh.apply_fault(&FaultKind::RouterStuck { node: 7 }, Cycle(0)));
        assert!(mesh.apply_fault(&FaultKind::LinkDrop { node: 6, dir: 9 }, Cycle(0)));
        // Non-NoC classes are not consumed.
        assert!(!mesh.apply_fault(&FaultKind::BusLoseGrant, Cycle(0)));
        assert!(!mesh.apply_fault(&FaultKind::DdrBitFlip { offset: 0, bit: 0 }, Cycle(0)));
    }

    fn try_packet(mesh: &mut Mesh, src: NodeId, dst: NodeId, now: Cycle) -> bool {
        let id = mesh.alloc_id();
        mesh.try_inject(
            Packet {
                id,
                src,
                dst,
                op: Op::Read,
                addr: 0,
                width: Width::Word,
                data: 0,
                flits: 1,
                injected_at: now,
            },
            now,
        )
    }

    #[test]
    fn full_source_refuses_admission_with_a_typed_alert() {
        let cfg = NocConfig {
            node_capacity: 2,
            ..NocConfig::protected()
        };
        let mut mesh = Mesh::new(Topology::new(2, 1), cfg);
        let src = NodeId::new(0, 0);
        let dst = NodeId::new(1, 0);
        assert!(try_packet(&mut mesh, src, dst, Cycle(0)));
        assert!(try_packet(&mut mesh, src, dst, Cycle(0)));
        assert_eq!(mesh.node_occupancy(src), 2);
        // Third packet finds no credit: refused, alerted, never lost.
        assert!(!try_packet(&mut mesh, src, dst, Cycle(0)));
        let alert = mesh.take_alert().expect("refusal must alert");
        assert_eq!(alert.reason, LossReason::CreditStall);
        assert_eq!(mesh.stats().counter("noc.ingress_refused"), 1);
        assert_eq!(mesh.stats().counter("noc.silent_drops"), 0);
        // Draining the mesh returns the credits.
        for c in 0..100 {
            mesh.tick(Cycle(c));
        }
        assert_eq!(mesh.node_occupancy(src), 0);
        assert!(try_packet(&mut mesh, src, dst, Cycle(100)));
    }

    #[test]
    fn bare_mesh_sheds_silently_at_a_full_source() {
        let cfg = NocConfig {
            node_capacity: 1,
            ..NocConfig::default()
        };
        let mut mesh = Mesh::new(Topology::new(2, 1), cfg);
        let src = NodeId::new(0, 0);
        let dst = NodeId::new(1, 0);
        assert!(try_packet(&mut mesh, src, dst, Cycle(0)));
        assert!(!try_packet(&mut mesh, src, dst, Cycle(0)));
        assert_eq!(mesh.stats().counter("noc.silent_drops"), 1);
        assert_eq!(mesh.stats().counter("noc.alerts"), 0);
    }

    #[test]
    fn credit_backpressure_bounds_downstream_occupancy() {
        // A destination with one buffer slot: the second packet must wait
        // upstream until the first is consumed, never overrunning.
        let cfg = NocConfig {
            node_capacity: 1,
            ..NocConfig::default()
        };
        let mut mesh = Mesh::new(Topology::new(3, 1), cfg);
        let dst = NodeId::new(2, 0);
        assert!(try_packet(&mut mesh, NodeId::new(0, 0), dst, Cycle(0)));
        assert!(try_packet(&mut mesh, NodeId::new(1, 0), dst, Cycle(0)));
        let mut delivered = 0;
        for c in 0..400 {
            mesh.tick(Cycle(c));
            assert!(mesh.node_occupancy(dst) <= 1, "credit bound violated");
            if mesh.deliver(dst).is_some() {
                delivered += 1;
            }
        }
        assert_eq!(delivered, 2, "backpressure delays but never loses");
        assert!(mesh.stats().counter("noc.credit_wait_cycles") > 0);
    }

    #[test]
    fn protected_credit_stall_escalates_instead_of_wedging() {
        // Pin node 1's only buffer credit with a resident stuck mid-route
        // (its router dies under it, and the heartbeat detector is kept
        // quiet), then watch a second flight headed into node 1 escalate
        // to a CreditStall alert once max_credit_wait expires instead of
        // waiting forever.
        let cfg = NocConfig {
            node_capacity: 1,
            max_credit_wait: 16,
            heartbeat_timeout: 100_000,
            ..NocConfig::protected()
        };
        let mut mesh = Mesh::new(Topology::new(3, 1), cfg);
        let mid = NodeId::new(1, 0);
        // Packet A: node0 -> node2, advances into node1 on tick 0.
        assert!(try_packet(
            &mut mesh,
            NodeId::new(0, 0),
            NodeId::new(2, 0),
            Cycle(0)
        ));
        for c in 0..3 {
            mesh.tick(Cycle(c));
        }
        assert_eq!(mesh.node_occupancy(mid), 1);
        mesh.apply_fault(&FaultKind::RouterStuck { node: 1 }, Cycle(2));
        // Packet B: node0 -> node1, finds no credit at its next hop.
        assert!(try_packet(&mut mesh, NodeId::new(0, 0), mid, Cycle(3)));
        for c in 3..100 {
            mesh.tick(Cycle(c));
        }
        let alert = mesh.take_alert().expect("stalled flight must alert");
        assert_eq!(alert.reason, LossReason::CreditStall);
        assert_eq!(mesh.stats().counter("noc.alert.credit_stall"), 1);
        assert!(mesh.stats().counter("noc.credit_wait_cycles") >= 16);
    }
}
