//! The packet-switched mesh.
//!
//! Packet-level model: a packet follows its precomputed XY route; at each
//! hop it competes FIFO for the output link of the current router. A hop
//! costs `router_cycles` (pipeline) plus `flits × flit_cycles`
//! (serialization), and a link carries one packet at a time. This captures
//! what matters for the comparison with the shared bus: per-hop latency,
//! path parallelism (disjoint routes do not contend) and hot-spot
//! contention (everyone heading to one memory node queues on its links).

use std::collections::VecDeque;

use secbus_bus::{Op, Width};
use secbus_sim::{Cycle, Stats};

use crate::topology::{xy_route, NodeId, Topology};

/// Unique packet identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketId(pub u64);

/// A request or response moving through the mesh.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Unique id.
    pub id: PacketId,
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
    /// Read or write (requests) / completion flag (responses reuse Op).
    pub op: Op,
    /// Target byte address (requests).
    pub addr: u32,
    /// Access width.
    pub width: Width,
    /// Payload word.
    pub data: u32,
    /// Payload length in flits (serialization cost).
    pub flits: u16,
    /// Injection time.
    pub injected_at: Cycle,
}

/// Mesh timing parameters.
#[derive(Debug, Clone, Copy)]
pub struct NocConfig {
    /// Router pipeline depth per hop.
    pub router_cycles: u64,
    /// Serialization cost per flit on each link.
    pub flit_cycles: u64,
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            router_cycles: 3,
            flit_cycles: 1,
        }
    }
}

/// One in-flight packet's progress.
struct Flight {
    packet: Packet,
    route: Vec<NodeId>,
    /// Index of the NEXT hop to traverse (route[hop-1] -> route[hop]).
    hop: usize,
    /// Cycle at which the current hop finishes (packet sits at
    /// route[hop-1] until then).
    ready_at: u64,
}

/// The mesh network.
pub struct Mesh {
    topology: Topology,
    config: NocConfig,
    /// Per-directed-link availability time, indexed by
    /// `from_index * 4 + direction` (N=0,S=1,E=2,W=3).
    link_free_at: Vec<u64>,
    flights: Vec<Flight>,
    delivered: Vec<VecDeque<Packet>>,
    next_id: u64,
    stats: Stats,
}

fn direction(from: NodeId, to: NodeId) -> usize {
    if to.y < from.y {
        0 // north
    } else if to.y > from.y {
        1 // south
    } else if to.x > from.x {
        2 // east
    } else {
        3 // west
    }
}

impl Mesh {
    /// Create a mesh.
    pub fn new(topology: Topology, config: NocConfig) -> Self {
        Mesh {
            link_free_at: vec![0; topology.len() * 4],
            delivered: (0..topology.len()).map(|_| VecDeque::new()).collect(),
            topology,
            config,
            flights: Vec::new(),
            next_id: 0,
            stats: Stats::new(),
        }
    }

    /// The mesh shape.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Allocate a packet id.
    pub fn alloc_id(&mut self) -> PacketId {
        let id = PacketId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Inject a packet at its source node at time `now`.
    ///
    /// # Panics
    /// Panics if source or destination are outside the mesh.
    pub fn inject(&mut self, packet: Packet, now: Cycle) {
        assert!(self.topology.contains(packet.src), "src outside mesh");
        assert!(self.topology.contains(packet.dst), "dst outside mesh");
        self.stats.incr("noc.injected");
        let route = xy_route(packet.src, packet.dst);
        if route.len() == 1 {
            // Local delivery: just the router pipeline once.
            let at = now.get() + self.config.router_cycles;
            self.flights.push(Flight {
                packet,
                route,
                hop: 1,
                ready_at: at,
            });
            return;
        }
        self.flights.push(Flight {
            packet,
            route,
            hop: 1,
            ready_at: now.get(),
        });
    }

    /// Advance the network one cycle: move every flight whose current hop
    /// completed and whose next link is free.
    pub fn tick(&mut self, now: Cycle) {
        let mut finished = Vec::new();
        for (idx, flight) in self.flights.iter_mut().enumerate() {
            if flight.ready_at > now.get() {
                continue;
            }
            if flight.hop >= flight.route.len() {
                finished.push(idx);
                continue;
            }
            let from = flight.route[flight.hop - 1];
            let to = flight.route[flight.hop];
            let link = self.topology.index(from) * 4 + direction(from, to);
            if self.link_free_at[link] > now.get() {
                self.stats.incr("noc.link_wait_cycles");
                continue; // contend next cycle
            }
            let hop_cost = self.config.router_cycles
                + self.config.flit_cycles * u64::from(flight.packet.flits.max(1));
            self.link_free_at[link] = now.get() + hop_cost;
            flight.ready_at = now.get() + hop_cost;
            flight.hop += 1;
            self.stats.incr("noc.hops");
        }
        // Deliver completed flights (iterate back to front for swap_remove).
        for idx in finished.into_iter().rev() {
            let flight = self.flights.swap_remove(idx);
            let node = self
                .topology
                .index(*flight.route.last().expect("non-empty route"));
            self.stats.incr("noc.delivered");
            self.delivered[node].push_back(flight.packet);
        }
    }

    /// Pop the next packet delivered to endpoint `node`.
    pub fn deliver(&mut self, node: NodeId) -> Option<Packet> {
        self.delivered[self.topology.index(node)].pop_front()
    }

    /// Packets currently in flight.
    pub fn in_flight(&self) -> usize {
        self.flights.len()
    }

    /// Network statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(mesh: &mut Mesh, src: NodeId, dst: NodeId, flits: u16, now: Cycle) -> PacketId {
        let id = mesh.alloc_id();
        mesh.inject(
            Packet {
                id,
                src,
                dst,
                op: Op::Read,
                addr: 0,
                width: Width::Word,
                data: 0,
                flits,
                injected_at: now,
            },
            now,
        );
        id
    }

    fn run_until_delivered(mesh: &mut Mesh, dst: NodeId, max: u64) -> (Packet, u64) {
        for c in 0..max {
            mesh.tick(Cycle(c));
            if let Some(p) = mesh.deliver(dst) {
                return (p, c);
            }
        }
        panic!("not delivered within {max} cycles");
    }

    #[test]
    fn single_hop_latency_is_router_plus_flits() {
        let mut mesh = Mesh::new(Topology::new(2, 1), NocConfig::default());
        let dst = NodeId::new(1, 0);
        packet(&mut mesh, NodeId::new(0, 0), dst, 1, Cycle(0));
        let (_, at) = run_until_delivered(&mut mesh, dst, 100);
        // 1 hop: 3 (router) + 1 (flit) = 4 cycles; delivery observed on
        // the tick after ready.
        assert_eq!(at, 4);
    }

    #[test]
    fn latency_grows_with_distance() {
        let mut a = Mesh::new(Topology::new(4, 4), NocConfig::default());
        let near = NodeId::new(1, 0);
        packet(&mut a, NodeId::new(0, 0), near, 1, Cycle(0));
        let (_, t_near) = run_until_delivered(&mut a, near, 100);

        let mut b = Mesh::new(Topology::new(4, 4), NocConfig::default());
        let far = NodeId::new(3, 3);
        packet(&mut b, NodeId::new(0, 0), far, 1, Cycle(0));
        let (_, t_far) = run_until_delivered(&mut b, far, 100);
        assert!(t_far > t_near);
        // 6 hops × 4 cycles = 24 (+1 observation tick).
        assert_eq!(t_far, 24);
    }

    #[test]
    fn disjoint_routes_do_not_contend() {
        let mut mesh = Mesh::new(Topology::new(4, 2), NocConfig::default());
        // Two packets on disjoint rows.
        let d0 = NodeId::new(3, 0);
        let d1 = NodeId::new(3, 1);
        packet(&mut mesh, NodeId::new(0, 0), d0, 1, Cycle(0));
        packet(&mut mesh, NodeId::new(0, 1), d1, 1, Cycle(0));
        let mut got = 0;
        let mut when = [0u64; 2];
        for c in 0..200 {
            mesh.tick(Cycle(c));
            if mesh.deliver(d0).is_some() {
                when[0] = c;
                got += 1;
            }
            if mesh.deliver(d1).is_some() {
                when[1] = c;
                got += 1;
            }
            if got == 2 {
                break;
            }
        }
        assert_eq!(got, 2);
        assert_eq!(when[0], when[1], "parallel rows deliver simultaneously");
    }

    #[test]
    fn shared_link_serializes() {
        let mut mesh = Mesh::new(Topology::new(2, 1), NocConfig::default());
        let dst = NodeId::new(1, 0);
        // Two packets over the same single link.
        packet(&mut mesh, NodeId::new(0, 0), dst, 1, Cycle(0));
        packet(&mut mesh, NodeId::new(0, 0), dst, 1, Cycle(0));
        let mut deliveries = Vec::new();
        for c in 0..100 {
            mesh.tick(Cycle(c));
            while mesh.deliver(dst).is_some() {
                deliveries.push(c);
            }
            if deliveries.len() == 2 {
                break;
            }
        }
        assert_eq!(deliveries.len(), 2);
        assert!(deliveries[1] >= deliveries[0] + 4, "{deliveries:?}");
        assert!(mesh.stats().counter("noc.link_wait_cycles") > 0);
    }

    #[test]
    fn local_delivery_works() {
        let mut mesh = Mesh::new(Topology::new(2, 2), NocConfig::default());
        let n = NodeId::new(1, 1);
        packet(&mut mesh, n, n, 1, Cycle(0));
        let (_, at) = run_until_delivered(&mut mesh, n, 10);
        assert!(at <= 4);
    }

    #[test]
    fn larger_packets_occupy_links_longer() {
        let mut mesh = Mesh::new(Topology::new(2, 1), NocConfig::default());
        let dst = NodeId::new(1, 0);
        packet(&mut mesh, NodeId::new(0, 0), dst, 8, Cycle(0));
        let (_, at) = run_until_delivered(&mut mesh, dst, 100);
        assert_eq!(at, 11); // 3 + 8 = 11
    }

    #[test]
    #[should_panic(expected = "outside mesh")]
    fn inject_outside_mesh_panics() {
        let mut mesh = Mesh::new(Topology::new(2, 2), NocConfig::default());
        packet(&mut mesh, NodeId::new(0, 0), NodeId::new(5, 5), 1, Cycle(0));
    }
}
