//! Request/response workloads over the mesh.
//!
//! Initiators sit on the mesh's western column(s), the memory target on
//! the south-east corner (a classic hot-spot). Each initiator keeps one
//! outstanding request: inject → route → memory service → response routes
//! back. With protection enabled, every request passes the initiator's
//! network-interface APU first (adding the same 12-cycle check the bus
//! firewalls charge — mechanism held constant, placement varies) and is
//! checked *again* by the memory node's ingress APU on arrival, so no
//! route — XY or detour — bypasses enforcement.
//!
//! [`run_noc_soak`] drives the same workload under a seed-reproducible
//! [`FaultPlan`] and keeps ground-truth books the transport cannot see:
//! content stamps catch undetected corruption, a silent policy shadow
//! catches security bypasses, and a drain phase at the end separates
//! "slow" from "wedged".

use secbus_bus::{AddrRange, MasterId, Op, Transaction, TxnId, Width};
use secbus_core::{AdfSet, CheckOutcome, ConfigMemory, Rwa, SecurityPolicy};
use secbus_fault::FaultPlan;
use secbus_sim::{Cycle, Histogram, SimCore};

use crate::network::{LossReason, Mesh, MeshQuiet, NocConfig, Packet};
use crate::ni::NetworkInterface;
use crate::topology::{NodeId, Topology};

/// Result of one NoC workload run.
#[derive(Debug, Clone)]
pub struct NocRunReport {
    /// Initiators in the run.
    pub initiators: usize,
    /// Completed request/response round trips.
    pub completed: u64,
    /// Requests dropped by the APUs.
    pub rejected: u64,
    /// Responses that arrived with no request outstanding (protocol
    /// fault, counted instead of panicking).
    pub unsolicited: u64,
    /// Mean round-trip latency in cycles.
    pub mean_latency: Option<f64>,
    /// Total link-contention wait cycles across the mesh.
    pub link_wait_cycles: u64,
    /// Total hops traversed.
    pub hops: u64,
}

struct Initiator {
    node: NodeId,
    ni: Option<NetworkInterface>,
    outstanding: Option<(u64, Cycle)>, // (packet id, issued)
    next_at: u64,
    issued: u64,
    completed: u64,
    rejected: u64,
    latencies: Histogram,
}

const MEM_BASE: u32 = 0x8000_0000;

/// Mesh sizing shared by every workload: a square-ish grid that fits the
/// initiators plus one extra column for the memory node at the
/// south-east corner.
fn mesh_shape(initiators: usize) -> (Topology, NodeId) {
    assert!(initiators >= 1);
    let rows = (initiators as f64).sqrt().ceil() as u8;
    let cols = (initiators as u8).div_ceil(rows) + 1;
    (Topology::new(cols, rows), NodeId::new(cols - 1, rows - 1))
}

/// Where initiator `i` sits on a mesh with `cols` columns.
fn initiator_node(i: usize, cols: u8) -> NodeId {
    NodeId::new((i as u8) % (cols - 1), (i as u8) / (cols - 1))
}

/// Inverse of [`initiator_node`]: which initiator owns `node`, if any.
fn initiator_index(node: NodeId, cols: u8, initiators: usize) -> Option<usize> {
    if node.x >= cols - 1 {
        return None;
    }
    let i = node.y as usize * (cols as usize - 1) + node.x as usize;
    (i < initiators).then_some(i)
}

/// The in-policy address window initiator `i` may touch.
fn initiator_window(i: usize) -> AddrRange {
    AddrRange::new(MEM_BASE + (i as u32) * 0x100, 0x100)
}

/// The union of every initiator's policy — what the memory node's
/// ingress APU enforces, and what the soak runner's silent shadow uses
/// as ground truth for the bypass count. Falls back to an *empty*
/// (default-deny) table if construction fails: a misconfigured firewall
/// must fail secure, never fail open.
fn union_policies(initiators: usize) -> ConfigMemory {
    let policies = (0..initiators)
        .map(|i| {
            SecurityPolicy::internal(
                i as u16 + 1,
                initiator_window(i),
                Rwa::ReadWrite,
                AdfSet::ALL,
            )
        })
        .collect();
    ConfigMemory::with_policies(policies).unwrap_or_else(|_| ConfigMemory::new())
}

/// Run a hot-spot workload: `initiators` endpoints on a mesh sized to
/// fit them, each issuing one word read every `period` cycles to the
/// memory node, for `cycles` cycles. `protected` inserts an APU at every
/// initiator (all generated traffic is in-policy, so the APU adds latency
/// but rejects nothing — the fair overhead comparison).
pub fn run_noc_workload(
    initiators: usize,
    period: u64,
    cycles: u64,
    protected: bool,
) -> NocRunReport {
    run_noc_workload_with_core(initiators, period, cycles, protected, SimCore::from_env())
}

/// [`run_noc_workload`] with an explicit simulator core, so equivalence
/// tests can compare both cores without mutating process environment.
pub fn run_noc_workload_with_core(
    initiators: usize,
    period: u64,
    cycles: u64,
    protected: bool,
    core: SimCore,
) -> NocRunReport {
    let (topology, memory) = mesh_shape(initiators);
    let cols = topology.cols;
    let mem_latency = 10u64;

    let mut mesh = Mesh::new(topology, NocConfig::default());
    let mut inits: Vec<Initiator> = (0..initiators)
        .map(|i| {
            let node = initiator_node(i, cols);
            let ni = protected.then(|| {
                NetworkInterface::new(
                    node,
                    ConfigMemory::with_policies(vec![SecurityPolicy::internal(
                        i as u16 + 1,
                        initiator_window(i),
                        Rwa::ReadWrite,
                        AdfSet::ALL,
                    )])
                    // Fail secure: a policy table that cannot be built
                    // becomes default-deny, not a panic or a bypass.
                    .unwrap_or_else(|_| ConfigMemory::new()),
                )
            });
            Initiator {
                node,
                ni,
                outstanding: None,
                next_at: 0,
                issued: 0,
                completed: 0,
                rejected: 0,
                latencies: Histogram::new(),
            }
        })
        .collect();

    // Memory-side service queue: (ready_at, response packet).
    let mut mem_queue: Vec<(u64, Packet)> = Vec::new();
    let mut unsolicited = 0u64;

    let mut c = 0u64;
    while c < cycles {
        let now = Cycle(c);
        // Initiators.
        for (i, init) in inits.iter_mut().enumerate() {
            if init.outstanding.is_some() || c < init.next_at {
                continue;
            }
            let addr = MEM_BASE + (i as u32) * 0x100 + ((init.issued as u32 * 4) % 0x100);
            let mut inject_delay = 0;
            if let Some(ni) = init.ni.as_mut() {
                let probe = Transaction {
                    id: TxnId(init.issued),
                    master: MasterId(i as u8),
                    op: Op::Read,
                    addr,
                    width: Width::Word,
                    data: 0,
                    burst: 1,
                    issued_at: now,
                };
                match ni.check(&probe, now) {
                    Ok(latency) => inject_delay = latency,
                    Err((_, latency)) => {
                        init.rejected += 1;
                        init.next_at = c + latency.max(1);
                        continue;
                    }
                }
            }
            let id = mesh.alloc_id();
            // The check delay is modelled by holding the injection; the
            // mesh sees the packet once the APU releases it.
            let release = Cycle(c + inject_delay);
            mesh.inject(
                Packet {
                    id,
                    src: init.node,
                    dst: memory,
                    op: Op::Read,
                    addr,
                    width: Width::Word,
                    data: 0,
                    flits: 2,
                    injected_at: release,
                },
                release,
            );
            init.outstanding = Some((id.0, now));
            init.issued += 1;
        }

        mesh.tick(now);

        // Memory node: service arrivals, emit responses.
        while let Some(req) = mesh.deliver(memory) {
            let id = mesh.alloc_id();
            let resp = Packet {
                id,
                src: memory,
                dst: req.src,
                op: req.op,
                addr: req.addr,
                width: req.width,
                data: req.id.0 as u32, // echo request id for correlation
                flits: 2,
                injected_at: Cycle(c),
            };
            mem_queue.push((c + mem_latency, resp));
        }
        let mut staying = Vec::new();
        for (ready, resp) in mem_queue.drain(..) {
            if ready <= c {
                mesh.inject(resp, Cycle(c));
            } else {
                staying.push((ready, resp));
            }
        }
        mem_queue = staying;

        // Responses back at the initiators.
        for init in inits.iter_mut() {
            if let Some(resp) = mesh.deliver(init.node) {
                // A response with no request outstanding is a protocol
                // fault: account for it, drop the packet, keep running.
                let Some((expect, issued)) = init.outstanding.take() else {
                    unsolicited += 1;
                    continue;
                };
                debug_assert_eq!(u64::from(resp.data), expect);
                init.latencies.record(now.saturating_since(issued));
                init.completed += 1;
                init.next_at = c + period;
            }
        }

        c += 1;
        // Event core: fast-forward over provably idle cycles. A cycle
        // does work only if the mesh has traffic to move or deliver, a
        // memory response matures, or an initiator can issue — compute
        // the earliest such cycle and jump there.
        if core == SimCore::Event {
            if c >= cycles || mesh.has_pending_deliveries() || mesh.has_pending_alerts() {
                continue;
            }
            let mut target = cycles;
            for init in &inits {
                if init.outstanding.is_none() {
                    target = target.min(init.next_at.max(c));
                }
            }
            if let Some(ready) = mem_queue.iter().map(|(r, _)| *r).min() {
                target = target.min(ready);
            }
            match mesh.next_event(Cycle(c)) {
                MeshQuiet::Active => continue,
                MeshQuiet::Until(at) => target = target.min(at.get()),
                MeshQuiet::Idle => {}
            }
            c = c.max(target.min(cycles));
        }
    }

    let mut all = Histogram::new();
    for init in &inits {
        all.merge(&init.latencies);
    }
    NocRunReport {
        initiators,
        completed: inits.iter().map(|i| i.completed).sum(),
        rejected: inits.iter().map(|i| i.rejected).sum(),
        unsolicited,
        mean_latency: all.mean(),
        link_wait_cycles: mesh.stats().counter("noc.link_wait_cycles"),
        hops: mesh.stats().counter("noc.hops"),
    }
}

/// Configuration for a fault-injected soak run.
#[derive(Debug, Clone)]
pub struct NocSoakConfig {
    /// Endpoints issuing traffic.
    pub initiators: usize,
    /// Cycles between round trips per initiator.
    pub period: u64,
    /// Issue window: initiators stop injecting after this many cycles.
    pub cycles: u64,
    /// Grace period after the window for in-flight traffic to resolve
    /// (deliver or alert). Anything still unresolved afterwards is
    /// stuck, not slow.
    pub drain_cycles: u64,
    /// Enable the fault-tolerant transport + NI enforcement.
    pub protected: bool,
}

impl Default for NocSoakConfig {
    fn default() -> Self {
        NocSoakConfig {
            initiators: 4,
            period: 16,
            cycles: 10_000,
            drain_cycles: 2_000,
            protected: true,
        }
    }
}

/// Result of one fault-injected soak run. `PartialEq` so determinism is
/// a one-line assertion.
#[derive(Debug, Clone, PartialEq)]
pub struct NocSoakReport {
    /// Endpoints in the run.
    pub initiators: usize,
    /// Whether the fault-tolerant transport was on.
    pub protected: bool,
    /// NoC fault events the mesh accepted from the plan.
    pub faults_applied: u64,
    /// Requests issued.
    pub issued: u64,
    /// Round trips completed.
    pub completed: u64,
    /// Mean round-trip latency in cycles.
    pub mean_latency: Option<f64>,
    /// Fail-secure transport alerts, total and by reason.
    pub alerts: u64,
    /// Alerts by loss reason (mnemonic, count), report-column order.
    pub alerts_by_reason: Vec<(&'static str, u64)>,
    /// Corruptions caught by flit CRC (protected mode).
    pub crc_detected: u64,
    /// Link-level retransmissions.
    pub retransmissions: u64,
    /// Ack timeouts on dead/broken links.
    pub ack_timeouts: u64,
    /// Adaptive reroutes around detected faults.
    pub reroutes: u64,
    /// Links the detector declared failed.
    pub link_failures_detected: u64,
    /// Routers the heartbeat declared failed.
    pub router_failures_detected: u64,
    /// Ground truth: corruptions that went onto the wire uncaught
    /// (bare mode only — the CRC turns these into `crc_detected`).
    pub wire_corruptions: u64,
    /// Ground truth: packets the bare mesh lost without a word.
    pub silent_drops: u64,
    /// Ground truth: packets delivered with content differing from what
    /// was injected (undetected corruption — must be 0 when protected).
    pub delivered_corrupt: u64,
    /// Ground truth: serviced requests the destination's policy table
    /// would refuse (security bypass — must be 0 when protected).
    pub security_bypasses: u64,
    /// Requests refused by the memory node's ingress APU.
    pub ingress_rejected: u64,
    /// Requests refused by an initiator's egress APU.
    pub egress_rejected: u64,
    /// Responses with no request outstanding.
    pub unsolicited_responses: u64,
    /// Responses whose correlation id did not match (corrupted in bare
    /// mode; the initiator is released either way).
    pub mismatched_responses: u64,
    /// Initiators still waiting after the drain phase.
    pub unresolved: u64,
    /// Packets still inside the mesh after the drain phase.
    pub stuck_in_mesh: u64,
    /// Protected-mode guarantee violated: traffic neither delivered nor
    /// alerted within the drain window (livelock/deadlock/lost-update).
    pub wedged: bool,
    /// Rendered [`secbus_sim::MetricsRegistry`] snapshot of the mesh's
    /// counters and histograms (key-sorted JSON, byte-identical per
    /// seed). A string so the report stays `PartialEq`-comparable.
    pub metrics_json: String,
}

/// Run the hot-spot workload under a fault plan and audit the outcome.
///
/// The transport's own books (alerts, retransmissions, reroutes) are
/// reported next to ground-truth observers it cannot influence: content
/// stamps taken at injection, a silent shadow of the destination policy
/// table, and an end-of-run sweep for anything neither delivered nor
/// alerted. In protected mode the acceptance bar is:
/// `delivered_corrupt == 0 && security_bypasses == 0 && !wedged`.
pub fn run_noc_soak(cfg: &NocSoakConfig, plan: FaultPlan) -> NocSoakReport {
    run_noc_soak_with_core(cfg, plan, SimCore::from_env())
}

/// [`run_noc_soak`] with an explicit simulator core, so equivalence
/// tests can compare both cores without mutating process environment.
pub fn run_noc_soak_with_core(
    cfg: &NocSoakConfig,
    mut plan: FaultPlan,
    core: SimCore,
) -> NocSoakReport {
    let (topology, memory) = mesh_shape(cfg.initiators);
    let cols = topology.cols;
    let mem_latency = 10u64;

    let noc_config = if cfg.protected {
        NocConfig::protected()
    } else {
        NocConfig::default()
    };
    let mut mesh = Mesh::new(topology, noc_config);

    // The destination's enforcement point: every arriving request is
    // checked by the memory node's own APU, whatever route it took.
    let mut mem_ni = cfg
        .protected
        .then(|| NetworkInterface::new(memory, union_policies(cfg.initiators)));
    // Ground-truth shadow of the same table: consulted silently in BOTH
    // modes so "serviced but out of policy" is measurable, not assumed.
    let shadow = union_policies(cfg.initiators);

    let mut inits: Vec<Initiator> = (0..cfg.initiators)
        .map(|i| {
            let node = initiator_node(i, cols);
            let ni = cfg.protected.then(|| {
                NetworkInterface::new(
                    node,
                    ConfigMemory::with_policies(vec![SecurityPolicy::internal(
                        i as u16 + 1,
                        initiator_window(i),
                        Rwa::ReadWrite,
                        AdfSet::ALL,
                    )])
                    .unwrap_or_else(|_| ConfigMemory::new()),
                )
            });
            Initiator {
                node,
                ni,
                outstanding: None,
                next_at: 0,
                issued: 0,
                completed: 0,
                rejected: 0,
                latencies: Histogram::new(),
            }
        })
        .collect();

    let mut mem_queue: Vec<(u64, Packet)> = Vec::new();
    let mut faults_applied = 0u64;
    let mut security_bypasses = 0u64;
    let mut ingress_rejected = 0u64;
    let mut unsolicited = 0u64;
    let mut mismatched = 0u64;

    let total = cfg.cycles + cfg.drain_cycles;
    let mut c = 0u64;
    while c < total {
        let now = Cycle(c);

        // Scheduled faults land at the start of the tick.
        for event in plan.take_due(now) {
            if mesh.apply_fault(&event.kind, now) {
                faults_applied += 1;
            }
        }

        // Initiators issue only inside the window.
        if c < cfg.cycles {
            for (i, init) in inits.iter_mut().enumerate() {
                if init.outstanding.is_some() || c < init.next_at {
                    continue;
                }
                let addr = MEM_BASE + (i as u32) * 0x100 + ((init.issued as u32 * 4) % 0x100);
                let mut inject_delay = 0;
                if let Some(ni) = init.ni.as_mut() {
                    let probe = Transaction {
                        id: TxnId(init.issued),
                        master: MasterId(i as u8),
                        op: Op::Read,
                        addr,
                        width: Width::Word,
                        data: 0,
                        burst: 1,
                        issued_at: now,
                    };
                    match ni.check(&probe, now) {
                        Ok(latency) => inject_delay = latency,
                        Err((_, latency)) => {
                            init.rejected += 1;
                            init.next_at = c + latency.max(1);
                            continue;
                        }
                    }
                }
                let id = mesh.alloc_id();
                let release = Cycle(c + inject_delay);
                mesh.inject(
                    Packet {
                        id,
                        src: init.node,
                        dst: memory,
                        op: Op::Read,
                        addr,
                        width: Width::Word,
                        data: 0,
                        flits: 2,
                        injected_at: release,
                    },
                    release,
                );
                init.outstanding = Some((id.0, now));
                init.issued += 1;
            }
        }

        mesh.tick(now);

        // Memory node: ingress enforcement, then service.
        while let Some((req, _info)) = mesh.deliver_with_info(memory) {
            let txn = Transaction {
                id: TxnId(req.id.0),
                master: MasterId(0),
                op: req.op,
                addr: req.addr,
                width: req.width,
                data: req.data,
                burst: 1,
                issued_at: req.injected_at,
            };
            let in_policy = match shadow.lookup(txn.addr) {
                None => false,
                Some(policy) => {
                    matches!(
                        secbus_core::checker::check_all(policy, &txn),
                        CheckOutcome::Pass
                    )
                }
            };
            let serviced = match mem_ni.as_mut() {
                Some(ni) => match ni.check_ingress(&txn, now) {
                    Ok(_) => true,
                    Err(_) => {
                        // Refused at the destination: contain, and free
                        // the issuing initiator so refusal cannot wedge
                        // the endpoint.
                        ingress_rejected += 1;
                        if let Some(i) = initiator_index(req.src, cols, cfg.initiators) {
                            if inits[i].outstanding.is_some() {
                                inits[i].outstanding = None;
                                inits[i].next_at = c + cfg.period;
                            }
                        }
                        false
                    }
                },
                // Bare mode services whatever arrives — which is exactly
                // how a corrupted header becomes a security bypass.
                None => true,
            };
            if serviced {
                if !in_policy {
                    security_bypasses += 1;
                }
                let id = mesh.alloc_id();
                let resp = Packet {
                    id,
                    src: memory,
                    dst: req.src,
                    op: req.op,
                    addr: req.addr,
                    width: req.width,
                    data: req.id.0 as u32,
                    flits: 2,
                    injected_at: Cycle(c),
                };
                mem_queue.push((c + mem_latency, resp));
            }
        }
        let mut staying = Vec::new();
        for (ready, resp) in mem_queue.drain(..) {
            if ready <= c {
                mesh.inject(resp, Cycle(c));
            } else {
                staying.push((ready, resp));
            }
        }
        mem_queue = staying;

        // Responses back at the initiators.
        for init in inits.iter_mut() {
            if let Some((resp, _info)) = mesh.deliver_with_info(init.node) {
                let Some((expect, issued)) = init.outstanding.take() else {
                    unsolicited += 1;
                    continue;
                };
                if u64::from(resp.data) != expect {
                    mismatched += 1;
                }
                init.latencies.record(now.saturating_since(issued));
                init.completed += 1;
                init.next_at = c + cfg.period;
            }
        }

        // Fail-secure alerts: every lost packet frees its initiator.
        while let Some(alert) = mesh.take_alert() {
            let owner = if alert.packet.dst == memory {
                // A lost request: the issuer is the source node.
                initiator_index(alert.packet.src, cols, cfg.initiators)
            } else if alert.packet.src == memory {
                // A lost response: the issuer is the destination node.
                initiator_index(alert.packet.dst, cols, cfg.initiators)
            } else {
                None
            };
            if let Some(i) = owner {
                if inits[i].outstanding.is_some() {
                    inits[i].outstanding = None;
                    inits[i].next_at = c + cfg.period;
                }
            }
        }

        c += 1;
        // Event core: fast-forward over provably idle cycles. Barriers
        // are the next scheduled fault, the next cycle an initiator can
        // issue (inside the window), the next maturing memory response
        // and the mesh's own next event (flit release or a pending
        // dead-router detection deadline).
        if core == SimCore::Event {
            if c >= total || mesh.has_pending_deliveries() || mesh.has_pending_alerts() {
                continue;
            }
            let mut target = total;
            if let Some(at) = plan.next_due() {
                target = target.min(at.get());
            }
            for init in &inits {
                if init.outstanding.is_none() {
                    let t = init.next_at.max(c);
                    if t < cfg.cycles {
                        target = target.min(t);
                    }
                }
            }
            if let Some(ready) = mem_queue.iter().map(|(r, _)| *r).min() {
                target = target.min(ready);
            }
            match mesh.next_event(Cycle(c)) {
                MeshQuiet::Active => continue,
                MeshQuiet::Until(at) => target = target.min(at.get()),
                MeshQuiet::Idle => {}
            }
            c = c.max(target.min(total));
        }
    }

    let mut all = Histogram::new();
    for init in &inits {
        all.merge(&init.latencies);
    }
    let stats = mesh.stats();
    let alerts_by_reason = LossReason::ALL
        .iter()
        .map(|r| (r.mnemonic(), stats.counter(r.stat_key())))
        .collect();
    let mut registry = secbus_sim::MetricsRegistry::new();
    registry.insert("noc", stats);
    let unresolved = inits.iter().filter(|i| i.outstanding.is_some()).count() as u64;
    let stuck_in_mesh = mesh.in_flight() as u64 + mem_queue.len() as u64;
    // The protected transport promises delivery-or-alert: anything still
    // pending after the drain window is a broken promise, not latency.
    let wedged = cfg.protected && (unresolved > 0 || stuck_in_mesh > 0);

    NocSoakReport {
        initiators: cfg.initiators,
        protected: cfg.protected,
        faults_applied,
        issued: inits.iter().map(|i| i.issued).sum(),
        completed: inits.iter().map(|i| i.completed).sum(),
        mean_latency: all.mean(),
        alerts: stats.counter("noc.alerts"),
        alerts_by_reason,
        crc_detected: stats.counter("noc.crc_detected"),
        retransmissions: stats.counter("noc.retransmissions"),
        ack_timeouts: stats.counter("noc.ack_timeouts"),
        reroutes: stats.counter("noc.reroutes"),
        link_failures_detected: stats.counter("noc.link_failures_detected"),
        router_failures_detected: stats.counter("noc.router_failures_detected"),
        wire_corruptions: stats.counter("noc.wire_corruptions"),
        silent_drops: stats.counter("noc.silent_drops"),
        delivered_corrupt: stats.counter("noc.delivered_corrupt"),
        security_bypasses,
        ingress_rejected,
        egress_rejected: inits.iter().map(|i| i.rejected).sum(),
        unsolicited_responses: unsolicited,
        mismatched_responses: mismatched,
        unresolved,
        stuck_in_mesh,
        wedged,
        metrics_json: registry.render(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secbus_fault::{FaultEvent, FaultKind, FaultRates, FaultSpec};

    #[test]
    fn workload_completes_roundtrips() {
        let r = run_noc_workload(4, 16, 5_000, false);
        assert!(r.completed > 100, "completed {}", r.completed);
        assert_eq!(r.rejected, 0);
        assert_eq!(r.unsolicited, 0);
        assert!(r.mean_latency.unwrap() > 0.0);
    }

    #[test]
    fn protection_adds_latency_but_rejects_nothing() {
        let plain = run_noc_workload(4, 16, 10_000, false);
        let protected = run_noc_workload(4, 16, 10_000, true);
        assert_eq!(protected.rejected, 0, "workload is in-policy");
        assert!(
            protected.mean_latency.unwrap() > plain.mean_latency.unwrap(),
            "APU check must cost cycles: {:?} vs {:?}",
            protected.mean_latency,
            plain.mean_latency
        );
        // The added cost is about one 12-cycle check per round trip.
        let delta = protected.mean_latency.unwrap() - plain.mean_latency.unwrap();
        assert!((delta - 12.0).abs() < 4.0, "delta {delta}");
    }

    #[test]
    fn hotspot_contention_grows_with_initiators() {
        let small = run_noc_workload(2, 4, 10_000, false);
        let big = run_noc_workload(12, 4, 10_000, false);
        assert!(
            big.link_wait_cycles > small.link_wait_cycles,
            "{} vs {}",
            big.link_wait_cycles,
            small.link_wait_cycles
        );
        assert!(big.mean_latency.unwrap() > small.mean_latency.unwrap());
    }

    #[test]
    fn deterministic() {
        let a = run_noc_workload(6, 8, 5_000, true);
        let b = run_noc_workload(6, 8, 5_000, true);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.mean_latency, b.mean_latency);
        assert_eq!(a.hops, b.hops);
    }

    fn soak_spec(rate: f64) -> FaultSpec {
        FaultSpec {
            duration: 10_000,
            ddr_bytes: 0,
            firewalls: 0,
            slaves: 0,
            noc_nodes: 9,
            rates: FaultRates {
                link_bitflip: rate,
                ..FaultRates::NONE
            },
        }
    }

    #[test]
    fn clean_soak_matches_its_promises() {
        let r = run_noc_soak(&NocSoakConfig::default(), FaultPlan::empty());
        assert!(r.completed > 100);
        assert_eq!(r.alerts, 0);
        assert_eq!(r.delivered_corrupt, 0);
        assert_eq!(r.security_bypasses, 0);
        assert_eq!(r.unresolved, 0);
        assert!(!r.wedged);
    }

    #[test]
    fn protected_soak_survives_a_bitflip_storm_with_zero_bad_outcomes() {
        let plan = FaultPlan::generate(0xC0FFEE, &soak_spec(40.0));
        let r = run_noc_soak(&NocSoakConfig::default(), plan);
        assert!(r.faults_applied > 0);
        assert!(r.crc_detected > 0, "CRC must catch the flips");
        assert!(r.retransmissions > 0);
        assert_eq!(r.delivered_corrupt, 0, "no undetected corruption");
        assert_eq!(r.security_bypasses, 0, "no policy bypass");
        assert!(!r.wedged);
    }

    #[test]
    fn bare_soak_shows_the_damage_protection_prevents() {
        let plan = FaultPlan::generate(0xC0FFEE, &soak_spec(40.0));
        let cfg = NocSoakConfig {
            protected: false,
            ..NocSoakConfig::default()
        };
        let r = run_noc_soak(&cfg, plan);
        assert!(r.wire_corruptions > 0, "flips reach the wire unchecked");
        assert_eq!(r.crc_detected, 0);
        assert!(!r.wedged, "bare mode makes no promise to break");
    }

    #[test]
    fn protected_soak_reroutes_around_a_dropped_link() {
        let plan = FaultPlan::new(vec![FaultEvent {
            at: Cycle(500),
            kind: FaultKind::LinkDrop { node: 0, dir: 2 },
        }]);
        let r = run_noc_soak(&NocSoakConfig::default(), plan);
        assert!(r.link_failures_detected >= 1);
        assert!(r.reroutes >= 1);
        assert_eq!(r.unresolved, 0, "every packet delivered or alerted");
        assert!(!r.wedged);
    }

    #[test]
    fn bare_soak_wedges_on_a_stuck_router_and_says_so() {
        let plan = FaultPlan::new(vec![FaultEvent {
            at: Cycle(500),
            kind: FaultKind::RouterStuck { node: 1 },
        }]);
        let cfg = NocSoakConfig {
            initiators: 4,
            protected: false,
            ..NocSoakConfig::default()
        };
        let r = run_noc_soak(&cfg, plan);
        assert!(
            r.unresolved > 0 || r.stuck_in_mesh > 0,
            "bare mode strands traffic: {r:?}"
        );
        // The wedged *flag* is the protected-mode guarantee; bare mode
        // reports the stranding through unresolved/stuck instead.
        assert!(!r.wedged);
    }

    #[test]
    fn protected_soak_resolves_a_stuck_router_with_alerts() {
        let plan = FaultPlan::new(vec![FaultEvent {
            at: Cycle(500),
            kind: FaultKind::RouterStuck { node: 1 },
        }]);
        let r = run_noc_soak(&NocSoakConfig::default(), plan);
        assert!(r.router_failures_detected >= 1);
        assert_eq!(r.unresolved, 0);
        assert_eq!(r.stuck_in_mesh, 0);
        assert!(!r.wedged, "{r:?}");
        assert_eq!(r.delivered_corrupt, 0);
        assert_eq!(r.security_bypasses, 0);
    }

    #[test]
    fn soak_event_core_matches_stepped_core() {
        for seed in [1u64, 7, 0xC0FFEE] {
            let plan = FaultPlan::generate(seed, &soak_spec(25.0));
            let cfg = NocSoakConfig::default();
            let stepped = run_noc_soak_with_core(&cfg, plan.clone(), SimCore::Stepped);
            let event = run_noc_soak_with_core(&cfg, plan, SimCore::Event);
            assert_eq!(stepped, event, "seed {seed}");
        }
    }

    #[test]
    fn soak_event_core_matches_stepped_on_stuck_router() {
        // Dead-router detection deadlines are events, not polled state:
        // the fast-forward must not jump past the heartbeat timeout.
        let plan = FaultPlan::new(vec![FaultEvent {
            at: Cycle(500),
            kind: FaultKind::RouterStuck { node: 1 },
        }]);
        let cfg = NocSoakConfig::default();
        let stepped = run_noc_soak_with_core(&cfg, plan.clone(), SimCore::Stepped);
        let event = run_noc_soak_with_core(&cfg, plan, SimCore::Event);
        assert_eq!(stepped, event);
        assert!(event.router_failures_detected >= 1);
    }

    #[test]
    fn soak_event_core_matches_stepped_on_clean_idle_heavy_run() {
        // Low intensity + a long drain tail: most cycles are idle, so
        // this exercises the fast-forward path hardest.
        let cfg = NocSoakConfig {
            initiators: 2,
            period: 500,
            cycles: 20_000,
            drain_cycles: 20_000,
            ..NocSoakConfig::default()
        };
        let stepped = run_noc_soak_with_core(&cfg, FaultPlan::empty(), SimCore::Stepped);
        let event = run_noc_soak_with_core(&cfg, FaultPlan::empty(), SimCore::Event);
        assert_eq!(stepped, event);
        assert!(event.completed > 0);
    }

    #[test]
    fn workload_event_core_matches_stepped_core() {
        let stepped = run_noc_workload_with_core(4, 64, 8_000, true, SimCore::Stepped);
        let event = run_noc_workload_with_core(4, 64, 8_000, true, SimCore::Event);
        assert_eq!(stepped.completed, event.completed);
        assert_eq!(stepped.rejected, event.rejected);
        assert_eq!(stepped.unsolicited, event.unsolicited);
        assert_eq!(stepped.mean_latency, event.mean_latency);
        assert_eq!(stepped.link_wait_cycles, event.link_wait_cycles);
        assert_eq!(stepped.hops, event.hops);
    }

    #[test]
    fn soak_is_seed_deterministic() {
        let run = |seed| {
            run_noc_soak(
                &NocSoakConfig::default(),
                FaultPlan::generate(seed, &soak_spec(25.0)),
            )
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds must differ");
    }
}
