//! Request/response workloads over the mesh.
//!
//! Initiators sit on the mesh's western column(s), the memory target on
//! the south-east corner (a classic hot-spot). Each initiator keeps one
//! outstanding request: inject → route → memory service → response routes
//! back. With protection enabled, every request passes the initiator's
//! network-interface APU first (adding the same 12-cycle check the bus
//! firewalls charge — mechanism held constant, placement varies).

use secbus_bus::{AddrRange, MasterId, Op, Transaction, TxnId, Width};
use secbus_core::{AdfSet, ConfigMemory, Rwa, SecurityPolicy};
use secbus_sim::{Cycle, Histogram};

use crate::network::{Mesh, NocConfig, Packet};
use crate::ni::NetworkInterface;
use crate::topology::{NodeId, Topology};

/// Result of one NoC workload run.
#[derive(Debug, Clone)]
pub struct NocRunReport {
    /// Initiators in the run.
    pub initiators: usize,
    /// Completed request/response round trips.
    pub completed: u64,
    /// Requests dropped by the APUs.
    pub rejected: u64,
    /// Mean round-trip latency in cycles.
    pub mean_latency: Option<f64>,
    /// Total link-contention wait cycles across the mesh.
    pub link_wait_cycles: u64,
    /// Total hops traversed.
    pub hops: u64,
}

struct Initiator {
    node: NodeId,
    ni: Option<NetworkInterface>,
    outstanding: Option<(u64, Cycle)>, // (packet id, issued)
    next_at: u64,
    issued: u64,
    completed: u64,
    rejected: u64,
    latencies: Histogram,
}

const MEM_BASE: u32 = 0x8000_0000;

/// Run a hot-spot workload: `initiators` endpoints on a mesh sized to
/// fit them, each issuing one word read every `period` cycles to the
/// memory node, for `cycles` cycles. `protected` inserts an APU at every
/// initiator (all generated traffic is in-policy, so the APU adds latency
/// but rejects nothing — the fair overhead comparison).
pub fn run_noc_workload(
    initiators: usize,
    period: u64,
    cycles: u64,
    protected: bool,
) -> NocRunReport {
    assert!(initiators >= 1);
    // Square-ish mesh with one extra column for the memory node.
    let rows = (initiators as f64).sqrt().ceil() as u8;
    let cols = (initiators as u8).div_ceil(rows) + 1;
    let topology = Topology::new(cols, rows);
    let memory = NodeId::new(cols - 1, rows - 1);
    let mem_latency = 10u64;

    let mut mesh = Mesh::new(topology, NocConfig::default());
    let mut inits: Vec<Initiator> = (0..initiators)
        .map(|i| {
            let node = NodeId::new((i as u8) % (cols - 1), (i as u8) / (cols - 1));
            let ni = protected.then(|| {
                let window = AddrRange::new(MEM_BASE + (i as u32) * 0x100, 0x100);
                NetworkInterface::new(
                    node,
                    ConfigMemory::with_policies(vec![SecurityPolicy::internal(
                        i as u16 + 1,
                        window,
                        Rwa::ReadWrite,
                        AdfSet::ALL,
                    )])
                    .unwrap(),
                )
            });
            Initiator {
                node,
                ni,
                outstanding: None,
                next_at: 0,
                issued: 0,
                completed: 0,
                rejected: 0,
                latencies: Histogram::new(),
            }
        })
        .collect();

    // Memory-side service queue: (ready_at, response packet).
    let mut mem_queue: Vec<(u64, Packet)> = Vec::new();

    for c in 0..cycles {
        let now = Cycle(c);
        // Initiators.
        for (i, init) in inits.iter_mut().enumerate() {
            if init.outstanding.is_some() || c < init.next_at {
                continue;
            }
            let addr = MEM_BASE + (i as u32) * 0x100 + ((init.issued as u32 * 4) % 0x100);
            let mut inject_delay = 0;
            if let Some(ni) = init.ni.as_mut() {
                let probe = Transaction {
                    id: TxnId(init.issued),
                    master: MasterId(i as u8),
                    op: Op::Read,
                    addr,
                    width: Width::Word,
                    data: 0,
                    burst: 1,
                    issued_at: now,
                };
                match ni.check(&probe, now) {
                    Ok(latency) => inject_delay = latency,
                    Err((_, latency)) => {
                        init.rejected += 1;
                        init.next_at = c + latency.max(1);
                        continue;
                    }
                }
            }
            let id = mesh.alloc_id();
            // The check delay is modelled by holding the injection; the
            // mesh sees the packet once the APU releases it.
            let release = Cycle(c + inject_delay);
            mesh.inject(
                Packet {
                    id,
                    src: init.node,
                    dst: memory,
                    op: Op::Read,
                    addr,
                    width: Width::Word,
                    data: 0,
                    flits: 2,
                    injected_at: release,
                },
                release,
            );
            init.outstanding = Some((id.0, now));
            init.issued += 1;
        }

        mesh.tick(now);

        // Memory node: service arrivals, emit responses.
        while let Some(req) = mesh.deliver(memory) {
            let id = mesh.alloc_id();
            let resp = Packet {
                id,
                src: memory,
                dst: req.src,
                op: req.op,
                addr: req.addr,
                width: req.width,
                data: req.id.0 as u32, // echo request id for correlation
                flits: 2,
                injected_at: Cycle(c),
            };
            mem_queue.push((c + mem_latency, resp));
        }
        let mut staying = Vec::new();
        for (ready, resp) in mem_queue.drain(..) {
            if ready <= c {
                mesh.inject(resp, Cycle(c));
            } else {
                staying.push((ready, resp));
            }
        }
        mem_queue = staying;

        // Responses back at the initiators.
        for init in inits.iter_mut() {
            if let Some(resp) = mesh.deliver(init.node) {
                let (expect, issued) = init.outstanding.take().expect("unsolicited response");
                debug_assert_eq!(u64::from(resp.data), expect);
                init.latencies.record(now.saturating_since(issued));
                init.completed += 1;
                init.next_at = c + period;
            }
        }
    }

    let mut all = Histogram::new();
    for init in &inits {
        all.merge(&init.latencies);
    }
    NocRunReport {
        initiators,
        completed: inits.iter().map(|i| i.completed).sum(),
        rejected: inits.iter().map(|i| i.rejected).sum(),
        mean_latency: all.mean(),
        link_wait_cycles: mesh.stats().counter("noc.link_wait_cycles"),
        hops: mesh.stats().counter("noc.hops"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_completes_roundtrips() {
        let r = run_noc_workload(4, 16, 5_000, false);
        assert!(r.completed > 100, "completed {}", r.completed);
        assert_eq!(r.rejected, 0);
        assert!(r.mean_latency.unwrap() > 0.0);
    }

    #[test]
    fn protection_adds_latency_but_rejects_nothing() {
        let plain = run_noc_workload(4, 16, 10_000, false);
        let protected = run_noc_workload(4, 16, 10_000, true);
        assert_eq!(protected.rejected, 0, "workload is in-policy");
        assert!(
            protected.mean_latency.unwrap() > plain.mean_latency.unwrap(),
            "APU check must cost cycles: {:?} vs {:?}",
            protected.mean_latency,
            plain.mean_latency
        );
        // The added cost is about one 12-cycle check per round trip.
        let delta = protected.mean_latency.unwrap() - plain.mean_latency.unwrap();
        assert!((delta - 12.0).abs() < 4.0, "delta {delta}");
    }

    #[test]
    fn hotspot_contention_grows_with_initiators() {
        let small = run_noc_workload(2, 4, 10_000, false);
        let big = run_noc_workload(12, 4, 10_000, false);
        assert!(
            big.link_wait_cycles > small.link_wait_cycles,
            "{} vs {}",
            big.link_wait_cycles,
            small.link_wait_cycles
        );
        assert!(big.mean_latency.unwrap() > small.mean_latency.unwrap());
    }

    #[test]
    fn deterministic() {
        let a = run_noc_workload(6, 8, 5_000, true);
        let b = run_noc_workload(6, 8, 5_000, true);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.mean_latency, b.mean_latency);
        assert_eq!(a.hops, b.hops);
    }
}
