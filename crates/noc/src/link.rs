//! The flit-level link protocol: CRC-32, per-link sequence numbers,
//! ack/nack and bounded retransmission.
//!
//! This is the NoC counterpart of the bus layer's retry stack: every
//! flit crossing a mesh link carries a sequence number and a CRC-32 over
//! its header and payload; the receiving router acks intact in-order
//! flits, nacks corrupted ones, and the sender retransmits from a bounded
//! budget. A sender that exhausts its budget declares the link *down* —
//! the signal the mesh's fault map consumes to reroute around the link.
//!
//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB8_8320`) detects every
//! error burst of 32 bits or fewer, which covers the whole
//! [`secbus_fault::FaultKind::LinkBitFlip`] surface (a 32-bit XOR on one
//! flit): a protected link therefore *never* delivers an injected wire
//! corruption silently — the property the S-15 soak measures as "zero
//! undetected corruptions".
//!
//! The [`Mesh`](crate::network::Mesh) models this protocol in condensed
//! form (one attempt per hop per serialization slot); this module is the
//! bit-exact reference the condensed model and its tests are written
//! against.

use std::collections::VecDeque;

/// Payload bytes per flit.
pub const FLIT_PAYLOAD_BYTES: usize = 8;

/// Default retransmission budget per flit before a link is declared down.
pub const DEFAULT_MAX_RETRIES: u32 = 3;

/// CRC-32 (IEEE 802.3), bit-serial, table-free. Detects all error bursts
/// of length ≤ 32 bits.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One flit on the wire: sequence number, tail marker, payload, CRC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Per-link sequence number.
    pub seq: u32,
    /// Last flit of the packet.
    pub last: bool,
    /// Payload bytes.
    pub payload: [u8; FLIT_PAYLOAD_BYTES],
    /// CRC-32 over `seq`, `last` and `payload`.
    pub crc: u32,
}

impl Flit {
    /// Seal a flit: compute the CRC over header + payload.
    pub fn seal(seq: u32, last: bool, payload: [u8; FLIT_PAYLOAD_BYTES]) -> Flit {
        let mut f = Flit {
            seq,
            last,
            payload,
            crc: 0,
        };
        f.crc = f.compute_crc();
        f
    }

    fn compute_crc(&self) -> u32 {
        let mut covered = [0u8; 5 + FLIT_PAYLOAD_BYTES];
        covered[..4].copy_from_slice(&self.seq.to_le_bytes());
        covered[4] = u8::from(self.last);
        covered[5..].copy_from_slice(&self.payload);
        crc32(&covered)
    }

    /// Whether the CRC still matches header + payload.
    pub fn intact(&self) -> bool {
        self.crc == self.compute_crc()
    }

    /// XOR a wire error burst into the payload (fault-model hook).
    pub fn corrupt_payload(&mut self, xor: u32) {
        let word = u32::from_le_bytes([
            self.payload[0],
            self.payload[1],
            self.payload[2],
            self.payload[3],
        ]) ^ xor;
        self.payload[..4].copy_from_slice(&word.to_le_bytes());
    }
}

/// Split packet bytes into sealed flits starting at `first_seq`.
pub fn packetize(bytes: &[u8], first_seq: u32) -> Vec<Flit> {
    let chunks: Vec<&[u8]> = if bytes.is_empty() {
        vec![&[]]
    } else {
        bytes.chunks(FLIT_PAYLOAD_BYTES).collect()
    };
    let n = chunks.len();
    chunks
        .into_iter()
        .enumerate()
        .map(|(i, chunk)| {
            let mut payload = [0u8; FLIT_PAYLOAD_BYTES];
            payload[..chunk.len()].copy_from_slice(chunk);
            Flit::seal(first_seq.wrapping_add(i as u32), i + 1 == n, payload)
        })
        .collect()
}

/// Reassemble accepted flits back into packet bytes (`len` trims the
/// final flit's zero padding). Returns `None` if any flit fails its CRC
/// or the sequence numbers are not contiguous.
pub fn reassemble(flits: &[Flit], len: usize) -> Option<Vec<u8>> {
    if flits.is_empty() || len > flits.len() * FLIT_PAYLOAD_BYTES {
        return None;
    }
    let first = flits[0].seq;
    let mut bytes = Vec::with_capacity(flits.len() * FLIT_PAYLOAD_BYTES);
    for (i, f) in flits.iter().enumerate() {
        if !f.intact() || f.seq != first.wrapping_add(i as u32) {
            return None;
        }
        if f.last != (i + 1 == flits.len()) {
            return None;
        }
        bytes.extend_from_slice(&f.payload);
    }
    bytes.truncate(len);
    Some(bytes)
}

/// The receiver's verdict on one wire transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkReply {
    /// Flit `seq` accepted (or already held: duplicate re-ack).
    Ack(u32),
    /// The receiver needs `seq` (retransmission request).
    Nack(u32),
}

/// Sender-side outcome of one reply (or timeout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxStatus {
    /// The in-flight flit was delivered; the next one may go out.
    Advanced,
    /// Retransmitting the same flit (`retries_left` remaining).
    Retrying(u32),
    /// Retry budget exhausted: the link is down.
    Down,
}

/// Sender endpoint: owns the per-link transmit sequence counter and the
/// bounded retransmission budget.
#[derive(Debug)]
pub struct LinkTx {
    queue: VecDeque<Flit>,
    next_seq: u32,
    retries_left: u32,
    max_retries: u32,
    down: bool,
    retransmissions: u64,
}

impl LinkTx {
    /// A fresh sender with `max_retries` retransmissions per flit.
    pub fn new(max_retries: u32) -> Self {
        LinkTx {
            queue: VecDeque::new(),
            next_seq: 0,
            retries_left: max_retries,
            max_retries,
            down: false,
            retransmissions: 0,
        }
    }

    /// Queue packet bytes for transmission; returns the flit count.
    pub fn submit(&mut self, bytes: &[u8]) -> usize {
        let flits = packetize(bytes, self.next_seq);
        self.next_seq = self.next_seq.wrapping_add(flits.len() as u32);
        let n = flits.len();
        self.queue.extend(flits);
        n
    }

    /// The flit currently on offer for the wire (None when idle or down).
    pub fn offer(&self) -> Option<Flit> {
        if self.down {
            None
        } else {
            self.queue.front().copied()
        }
    }

    /// Consume the receiver's reply for the offered flit (`None` models
    /// an ack timeout — the flit or its ack was lost on the wire).
    pub fn on_reply(&mut self, reply: Option<LinkReply>) -> TxStatus {
        debug_assert!(!self.down, "replies on a downed link");
        let offered = match self.queue.front() {
            Some(f) => f.seq,
            None => return TxStatus::Advanced, // spurious reply; idle
        };
        match reply {
            Some(LinkReply::Ack(seq)) if seq == offered => {
                self.queue.pop_front();
                self.retries_left = self.max_retries;
                TxStatus::Advanced
            }
            // Nack for the offered flit, a stale ack, or a timeout: the
            // transfer did not land — spend one retry.
            _ => {
                if self.retries_left == 0 {
                    self.down = true;
                    return TxStatus::Down;
                }
                self.retries_left -= 1;
                self.retransmissions += 1;
                TxStatus::Retrying(self.retries_left)
            }
        }
    }

    /// Whether the retry budget declared this link down.
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Flits waiting (including the offered one).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total retransmissions performed.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }
}

/// Receiver endpoint: owns the per-link expected sequence counter,
/// dedupes duplicates and nacks corruption/gaps.
#[derive(Debug)]
pub struct LinkRx {
    expected: u32,
    accepted: Vec<Flit>,
    crc_failures: u64,
    duplicates: u64,
    seq_gaps: u64,
}

impl LinkRx {
    /// A fresh receiver expecting sequence 0.
    pub fn new() -> Self {
        LinkRx {
            expected: 0,
            accepted: Vec::new(),
            crc_failures: 0,
            duplicates: 0,
            seq_gaps: 0,
        }
    }

    /// Process one wire transfer. `None` models a flit dropped on the
    /// wire — the receiver stays silent and the sender's ack timer fires.
    pub fn receive(&mut self, flit: Option<Flit>) -> Option<LinkReply> {
        let flit = flit?;
        if !flit.intact() {
            self.crc_failures += 1;
            return Some(LinkReply::Nack(self.expected));
        }
        if flit.seq == self.expected {
            self.expected = self.expected.wrapping_add(1);
            self.accepted.push(flit);
            Some(LinkReply::Ack(flit.seq))
        } else if flit.seq.wrapping_sub(self.expected) > u32::MAX / 2 {
            // Behind the window: a duplicate whose ack was lost — re-ack
            // without re-accepting (per-link dedup).
            self.duplicates += 1;
            Some(LinkReply::Ack(flit.seq))
        } else {
            // Ahead of the window: an earlier flit vanished entirely.
            self.seq_gaps += 1;
            Some(LinkReply::Nack(self.expected))
        }
    }

    /// Flits accepted so far, in order.
    pub fn accepted(&self) -> &[Flit] {
        &self.accepted
    }

    /// Drain the accepted flits (hand the reassembled packet upward).
    pub fn take_accepted(&mut self) -> Vec<Flit> {
        std::mem::take(&mut self.accepted)
    }

    /// CRC failures observed (each answered with a nack).
    pub fn crc_failures(&self) -> u64 {
        self.crc_failures
    }

    /// Duplicate flits discarded (lost-ack retransmissions).
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Sequence gaps observed (whole-flit drops caught by numbering).
    pub fn seq_gaps(&self) -> u64 {
        self.seq_gaps
    }
}

impl Default for LinkRx {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive tx→rx over a fallible wire until the queue drains or the
    /// link dies. `wire` may corrupt or drop each offered flit.
    fn drive(
        tx: &mut LinkTx,
        rx: &mut LinkRx,
        mut wire: impl FnMut(u64, Flit) -> Option<Flit>,
        max_transfers: u64,
    ) -> u64 {
        let mut transfers = 0;
        while let Some(flit) = tx.offer() {
            if transfers >= max_transfers {
                break;
            }
            let reply = rx.receive(wire(transfers, flit));
            transfers += 1;
            if tx.on_reply(reply) == TxStatus::Down {
                break;
            }
        }
        transfers
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn packetize_reassemble_roundtrip() {
        for len in [0usize, 1, 7, 8, 9, 16, 23] {
            let bytes: Vec<u8> = (0..len as u8).collect();
            let flits = packetize(&bytes, 100);
            assert_eq!(flits.len(), len.div_ceil(FLIT_PAYLOAD_BYTES).max(1));
            assert!(flits.iter().all(Flit::intact));
            assert_eq!(
                reassemble(&flits, len).as_deref(),
                Some(&bytes[..]),
                "{len}"
            );
        }
    }

    #[test]
    fn any_single_word_burst_is_detected() {
        // CRC-32 detects every burst of ≤32 bits: sweep a pile of XOR
        // patterns including single bits, dense words and boundary cases.
        let flit = Flit::seal(7, true, [0xA5; FLIT_PAYLOAD_BYTES]);
        let mut patterns: Vec<u32> = (0..32).map(|b| 1u32 << b).collect();
        patterns.extend([0xFFFF_FFFF, 0xDEAD_BEEF, 0x8000_0001, 0x0101_0101]);
        for xor in patterns {
            let mut hit = flit;
            hit.corrupt_payload(xor);
            assert!(!hit.intact(), "xor {xor:#010x} escaped the CRC");
        }
    }

    #[test]
    fn clean_wire_delivers_in_order_without_retransmission() {
        let mut tx = LinkTx::new(DEFAULT_MAX_RETRIES);
        let mut rx = LinkRx::new();
        let bytes: Vec<u8> = (0..40).collect();
        let flits = tx.submit(&bytes);
        assert_eq!(flits, 5);
        let transfers = drive(&mut tx, &mut rx, |_, f| Some(f), 100);
        assert_eq!(transfers, 5);
        assert_eq!(tx.retransmissions(), 0);
        assert_eq!(
            reassemble(rx.accepted(), bytes.len()).as_deref(),
            Some(&bytes[..])
        );
    }

    #[test]
    fn corrupted_flit_is_nacked_and_retransmitted() {
        let mut tx = LinkTx::new(DEFAULT_MAX_RETRIES);
        let mut rx = LinkRx::new();
        let bytes: Vec<u8> = (0..24).collect();
        tx.submit(&bytes);
        // Corrupt transfer #1 (the second flit's first attempt) only.
        drive(
            &mut tx,
            &mut rx,
            |n, mut f| {
                if n == 1 {
                    f.corrupt_payload(0x0004_0000);
                }
                Some(f)
            },
            100,
        );
        assert!(!tx.is_down());
        assert_eq!(tx.retransmissions(), 1);
        assert_eq!(rx.crc_failures(), 1);
        assert_eq!(
            reassemble(rx.accepted(), bytes.len()).as_deref(),
            Some(&bytes[..]),
            "the delivered packet is clean after retransmission"
        );
    }

    #[test]
    fn dropped_flit_times_out_and_recovers() {
        let mut tx = LinkTx::new(DEFAULT_MAX_RETRIES);
        let mut rx = LinkRx::new();
        let bytes: Vec<u8> = (0..16).collect();
        tx.submit(&bytes);
        drive(&mut tx, &mut rx, |n, f| (n != 0).then_some(f), 100);
        assert_eq!(tx.retransmissions(), 1);
        assert_eq!(
            reassemble(rx.accepted(), bytes.len()).as_deref(),
            Some(&bytes[..])
        );
    }

    #[test]
    fn duplicate_after_lost_ack_is_deduped() {
        let mut tx = LinkTx::new(DEFAULT_MAX_RETRIES);
        let mut rx = LinkRx::new();
        tx.submit(&[1, 2, 3]);
        let flit = tx.offer().unwrap();
        // First delivery succeeds at the receiver but the ack is lost.
        assert_eq!(rx.receive(Some(flit)), Some(LinkReply::Ack(0)));
        assert_eq!(
            tx.on_reply(None),
            TxStatus::Retrying(DEFAULT_MAX_RETRIES - 1)
        );
        // The retransmission is recognised as a duplicate and re-acked.
        let again = tx.offer().unwrap();
        assert_eq!(again.seq, 0);
        let reply = rx.receive(Some(again));
        assert_eq!(reply, Some(LinkReply::Ack(0)));
        assert_eq!(rx.duplicates(), 1);
        assert_eq!(rx.accepted().len(), 1, "accepted exactly once");
        assert_eq!(tx.on_reply(reply), TxStatus::Advanced);
    }

    #[test]
    fn seq_gap_is_nacked() {
        let mut rx = LinkRx::new();
        // Flit 0 never arrives; flit 1 shows up first.
        let stray = Flit::seal(1, true, [0; FLIT_PAYLOAD_BYTES]);
        assert_eq!(rx.receive(Some(stray)), Some(LinkReply::Nack(0)));
        assert_eq!(rx.seq_gaps(), 1);
        assert!(rx.accepted().is_empty());
    }

    #[test]
    fn dead_wire_exhausts_the_budget_and_downs_the_link() {
        let mut tx = LinkTx::new(DEFAULT_MAX_RETRIES);
        let mut rx = LinkRx::new();
        tx.submit(&[9; 8]);
        let transfers = drive(&mut tx, &mut rx, |_, _| None, 100);
        // 1 first attempt + DEFAULT_MAX_RETRIES retransmissions.
        assert_eq!(transfers, u64::from(DEFAULT_MAX_RETRIES) + 1);
        assert!(tx.is_down());
        assert_eq!(tx.offer(), None, "a down link offers nothing");
        assert!(rx.accepted().is_empty());
    }

    #[test]
    fn persistent_corruption_also_downs_the_link() {
        let mut tx = LinkTx::new(2);
        let mut rx = LinkRx::new();
        tx.submit(&[5; 4]);
        drive(
            &mut tx,
            &mut rx,
            |_, mut f| {
                f.corrupt_payload(0x80);
                Some(f)
            },
            100,
        );
        assert!(tx.is_down());
        assert_eq!(rx.crc_failures(), 3, "every attempt was nacked");
        assert!(rx.accepted().is_empty(), "nothing corrupt was accepted");
    }
}
