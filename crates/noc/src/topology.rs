//! Mesh coordinates, XY (dimension-ordered) routing, and the degraded
//! variants: a [`FaultMap`] of failed links/routers and
//! [`adaptive_route`], the fault-region-aware XY router that detours
//! around them.

use core::fmt;
use std::collections::VecDeque;

/// A router/endpoint position in the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId {
    /// Column (0-based, grows east).
    pub x: u8,
    /// Row (0-based, grows south).
    pub y: u8,
}

impl NodeId {
    /// Construct a node id.
    pub const fn new(x: u8, y: u8) -> Self {
        NodeId { x, y }
    }

    /// Manhattan distance to another node.
    pub fn distance(self, other: NodeId) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// The mesh shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Columns.
    pub cols: u8,
    /// Rows.
    pub rows: u8,
}

impl Topology {
    /// Construct a topology.
    ///
    /// # Panics
    /// Panics on an empty mesh.
    pub fn new(cols: u8, rows: u8) -> Self {
        assert!(cols > 0 && rows > 0, "mesh must be non-empty");
        Topology { cols, rows }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        usize::from(self.cols) * usize::from(self.rows)
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `n` lies inside the mesh.
    pub fn contains(&self, n: NodeId) -> bool {
        n.x < self.cols && n.y < self.rows
    }

    /// Iterate all nodes row-major.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        let cols = self.cols;
        (0..self.rows).flat_map(move |y| (0..cols).map(move |x| NodeId::new(x, y)))
    }

    /// Dense index of a node (row-major).
    pub fn index(&self, n: NodeId) -> usize {
        debug_assert!(self.contains(n));
        usize::from(n.y) * usize::from(self.cols) + usize::from(n.x)
    }
}

/// Deterministic XY route: move along X to the destination column, then
/// along Y. Returns every node visited including `src` and `dst`.
pub fn xy_route(src: NodeId, dst: NodeId) -> Vec<NodeId> {
    let mut path = vec![src];
    let mut cur = src;
    while cur.x != dst.x {
        cur.x = if dst.x > cur.x { cur.x + 1 } else { cur.x - 1 };
        path.push(cur);
    }
    while cur.y != dst.y {
        cur.y = if dst.y > cur.y { cur.y + 1 } else { cur.y - 1 };
        path.push(cur);
    }
    path
}

/// Mesh direction index: N=0, S=1, E=2, W=3 (shared with the mesh's
/// per-directed-link arrays and `secbus-fault`'s link selectors).
pub fn direction_index(from: NodeId, to: NodeId) -> usize {
    if to.y < from.y {
        0 // north
    } else if to.y > from.y {
        1 // south
    } else if to.x > from.x {
        2 // east
    } else {
        3 // west
    }
}

/// The neighbor of `n` in direction `dir` (N=0,S=1,E=2,W=3), if it lies
/// inside the mesh.
pub fn neighbor(topology: Topology, n: NodeId, dir: usize) -> Option<NodeId> {
    match dir {
        0 => (n.y > 0).then(|| NodeId::new(n.x, n.y - 1)),
        1 => (n.y + 1 < topology.rows).then(|| NodeId::new(n.x, n.y + 1)),
        2 => (n.x + 1 < topology.cols).then(|| NodeId::new(n.x + 1, n.y)),
        3 => (n.x > 0).then(|| NodeId::new(n.x - 1, n.y)),
        _ => None,
    }
}

/// The *detected* degraded state of a mesh: which directed links and
/// routers the fault-detection layer (CRC streaks, heartbeats) has
/// declared dead. Routing consults this map — never the ground truth —
/// so an undetected failure costs retransmissions before it costs a
/// detour, exactly like real hardware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultMap {
    topology: Topology,
    /// Directed link health, indexed `node_index * 4 + direction`.
    failed_links: Vec<bool>,
    /// Router health, indexed by node index.
    failed_routers: Vec<bool>,
}

impl FaultMap {
    /// A clean map: everything healthy.
    pub fn new(topology: Topology) -> Self {
        FaultMap {
            failed_links: vec![false; topology.len() * 4],
            failed_routers: vec![false; topology.len()],
            topology,
        }
    }

    /// The mesh this map describes.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Declare the directed link leaving `from` in direction `dir` dead.
    /// Returns `true` when this is new information.
    pub fn fail_link(&mut self, from: NodeId, dir: usize) -> bool {
        let idx = self.topology.index(from) * 4 + (dir & 3);
        !std::mem::replace(&mut self.failed_links[idx], true)
    }

    /// Declare router `n` dead (all its links die with it). Returns
    /// `true` when this is new information.
    pub fn fail_router(&mut self, n: NodeId) -> bool {
        let idx = self.topology.index(n);
        !std::mem::replace(&mut self.failed_routers[idx], true)
    }

    /// Whether the directed link `from → to` is believed healthy
    /// (requires both endpoints' routers alive).
    pub fn link_ok(&self, from: NodeId, to: NodeId) -> bool {
        let idx = self.topology.index(from) * 4 + direction_index(from, to);
        !self.failed_links[idx] && self.router_ok(from) && self.router_ok(to)
    }

    /// Whether router `n` is believed alive.
    pub fn router_ok(&self, n: NodeId) -> bool {
        !self.failed_routers[self.topology.index(n)]
    }

    /// Count of links declared dead.
    pub fn failed_link_count(&self) -> usize {
        self.failed_links.iter().filter(|&&f| f).count()
    }

    /// Count of routers declared dead.
    pub fn failed_router_count(&self) -> usize {
        self.failed_routers.iter().filter(|&&f| f).count()
    }

    /// Whether the map still believes the mesh is fully healthy.
    pub fn is_clean(&self) -> bool {
        self.failed_link_count() == 0 && self.failed_router_count() == 0
    }
}

/// Fault-region-aware XY routing: the plain XY route when every hop on
/// it is believed healthy (the deterministic, deadlock-free fast path),
/// otherwise a deterministic shortest detour over the healthy subgraph.
///
/// The detour is a breadth-first search whose per-node expansion order
/// prefers the XY direction of travel (X toward the destination, then Y,
/// then the remaining directions in N,S,E,W order), so minimal paths
/// keep the XY shape wherever the fault region allows. Routes are
/// loop-free by construction (BFS visits each router once) and computed
/// before injection, so the transport cannot hold-and-wait across
/// routers — freedom from deadlock reduces to bounded rerouting, which
/// the mesh enforces with an explicit reroute budget.
///
/// Returns `None` when `dst` (or `src`) is believed dead or no healthy
/// path exists — the caller must fail secure (alert), never deliver.
pub fn adaptive_route(src: NodeId, dst: NodeId, map: &FaultMap) -> Option<Vec<NodeId>> {
    if !map.router_ok(src) || !map.router_ok(dst) {
        return None;
    }
    if src == dst {
        return Some(vec![src]);
    }
    let xy = xy_route(src, dst);
    if xy.windows(2).all(|w| map.link_ok(w[0], w[1])) {
        return Some(xy);
    }
    // BFS over believed-healthy links, deterministic expansion order.
    let t = map.topology();
    let mut parent: Vec<Option<NodeId>> = vec![None; t.len()];
    let mut visited = vec![false; t.len()];
    visited[t.index(src)] = true;
    let mut frontier = VecDeque::from([src]);
    while let Some(cur) = frontier.pop_front() {
        if cur == dst {
            let mut path = vec![dst];
            let mut walk = dst;
            while let Some(p) = parent[t.index(walk)] {
                path.push(p);
                walk = p;
            }
            path.reverse();
            return Some(path);
        }
        for dir in preferred_directions(cur, dst) {
            let Some(next) = neighbor(t, cur, dir) else {
                continue;
            };
            if visited[t.index(next)] || !map.link_ok(cur, next) {
                continue;
            }
            visited[t.index(next)] = true;
            parent[t.index(next)] = Some(cur);
            frontier.push_back(next);
        }
    }
    None
}

/// Expansion order for the detour search: X toward `dst` first, then Y
/// toward `dst`, then the remaining directions in fixed N,S,E,W order.
fn preferred_directions(cur: NodeId, dst: NodeId) -> [usize; 4] {
    let mut order = [usize::MAX; 4];
    let mut n = 0;
    let push = |d: usize, order: &mut [usize; 4], n: &mut usize| {
        if !order[..*n].contains(&d) {
            order[*n] = d;
            *n += 1;
        }
    };
    if dst.x > cur.x {
        push(2, &mut order, &mut n);
    } else if dst.x < cur.x {
        push(3, &mut order, &mut n);
    }
    if dst.y > cur.y {
        push(1, &mut order, &mut n);
    } else if dst.y < cur.y {
        push(0, &mut order, &mut n);
    }
    for d in 0..4 {
        push(d, &mut order, &mut n);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_length_is_manhattan_plus_one() {
        let a = NodeId::new(0, 0);
        let b = NodeId::new(3, 2);
        let route = xy_route(a, b);
        assert_eq!(route.len() as u32, a.distance(b) + 1);
        assert_eq!(route.first(), Some(&a));
        assert_eq!(route.last(), Some(&b));
    }

    #[test]
    fn route_goes_x_first() {
        let route = xy_route(NodeId::new(0, 0), NodeId::new(2, 1));
        assert_eq!(
            route,
            vec![
                NodeId::new(0, 0),
                NodeId::new(1, 0),
                NodeId::new(2, 0),
                NodeId::new(2, 1)
            ]
        );
    }

    #[test]
    fn self_route_is_single_node() {
        let n = NodeId::new(1, 1);
        assert_eq!(xy_route(n, n), vec![n]);
    }

    #[test]
    fn westward_and_northward_routes() {
        let route = xy_route(NodeId::new(3, 3), NodeId::new(1, 0));
        assert_eq!(route.len(), 6);
        assert_eq!(route.last(), Some(&NodeId::new(1, 0)));
    }

    #[test]
    fn topology_membership_and_indexing() {
        let t = Topology::new(4, 2);
        assert_eq!(t.len(), 8);
        assert!(t.contains(NodeId::new(3, 1)));
        assert!(!t.contains(NodeId::new(4, 0)));
        assert!(!t.contains(NodeId::new(0, 2)));
        let all: Vec<NodeId> = t.nodes().collect();
        assert_eq!(all.len(), 8);
        for (i, n) in all.iter().enumerate() {
            assert_eq!(t.index(*n), i);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_mesh_panics() {
        Topology::new(0, 3);
    }

    fn assert_valid_route(route: &[NodeId], src: NodeId, dst: NodeId, map: &FaultMap) {
        assert_eq!(route.first(), Some(&src));
        assert_eq!(
            route.last(),
            Some(&dst),
            "route must END at the destination"
        );
        let mut seen = route.to_vec();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), route.len(), "loop-free");
        for w in route.windows(2) {
            assert_eq!(w[0].distance(w[1]), 1, "hops are mesh-adjacent");
            assert!(map.link_ok(w[0], w[1]), "route uses only healthy links");
        }
    }

    #[test]
    fn adaptive_route_is_xy_on_a_clean_mesh() {
        let map = FaultMap::new(Topology::new(4, 4));
        for s in map.topology().nodes() {
            for d in map.topology().nodes() {
                assert_eq!(adaptive_route(s, d, &map), Some(xy_route(s, d)));
            }
        }
    }

    #[test]
    fn adaptive_route_detours_around_a_dead_link() {
        let t = Topology::new(3, 3);
        let mut map = FaultMap::new(t);
        // Kill the eastward link (0,0)→(1,0) that XY would take.
        map.fail_link(NodeId::new(0, 0), 2);
        let src = NodeId::new(0, 0);
        let dst = NodeId::new(2, 0);
        let route = adaptive_route(src, dst, &map).expect("detour exists");
        assert_ne!(route, xy_route(src, dst));
        assert_valid_route(&route, src, dst, &map);
        assert_eq!(route.len(), 5, "shortest detour: down, across, up");
    }

    #[test]
    fn adaptive_route_detours_around_a_dead_router() {
        let t = Topology::new(3, 3);
        let mut map = FaultMap::new(t);
        map.fail_router(NodeId::new(1, 0)); // middle of the XY path
        let src = NodeId::new(0, 0);
        let dst = NodeId::new(2, 0);
        let route = adaptive_route(src, dst, &map).expect("detour exists");
        assert!(!route.contains(&NodeId::new(1, 0)));
        assert_valid_route(&route, src, dst, &map);
    }

    #[test]
    fn unreachable_destination_is_none_not_a_bad_route() {
        let t = Topology::new(3, 1);
        let mut map = FaultMap::new(t);
        map.fail_router(NodeId::new(1, 0)); // severs the 1-row mesh
        assert_eq!(
            adaptive_route(NodeId::new(0, 0), NodeId::new(2, 0), &map),
            None
        );
        // A dead destination is never routed to.
        let mut map2 = FaultMap::new(Topology::new(3, 3));
        map2.fail_router(NodeId::new(2, 2));
        assert_eq!(
            adaptive_route(NodeId::new(0, 0), NodeId::new(2, 2), &map2),
            None
        );
    }

    /// Every single-link and single-router failure on meshes from 2×2 to
    /// 4×4: for every (src, dst) pair the adaptive route either reaches
    /// dst over healthy elements only, or is `None` (fail secure) —
    /// never a path that skips the destination or touches dead hardware.
    #[test]
    fn adaptive_route_survives_every_single_failure() {
        for (cols, rows) in [(2u8, 2u8), (3, 2), (3, 3), (4, 3), (4, 4)] {
            let t = Topology::new(cols, rows);
            let mut cases: Vec<FaultMap> = Vec::new();
            for n in t.nodes() {
                for dir in 0..4 {
                    if neighbor(t, n, dir).is_some() {
                        let mut m = FaultMap::new(t);
                        m.fail_link(n, dir);
                        cases.push(m);
                    }
                }
                let mut m = FaultMap::new(t);
                m.fail_router(n);
                cases.push(m);
            }
            for map in &cases {
                for s in t.nodes() {
                    for d in t.nodes() {
                        match adaptive_route(s, d, map) {
                            Some(route) => assert_valid_route(&route, s, d, map),
                            None => {
                                // Only acceptable when an endpoint died:
                                // one dead link or router never partitions
                                // a 2D mesh with ≥2 rows and columns.
                                assert!(
                                    !map.router_ok(s) || !map.router_ok(d),
                                    "{s}->{d} unroutable without a dead endpoint"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn adaptive_route_is_deterministic() {
        let t = Topology::new(4, 4);
        let mut map = FaultMap::new(t);
        map.fail_link(NodeId::new(1, 1), 2);
        map.fail_router(NodeId::new(2, 2));
        for s in t.nodes() {
            for d in t.nodes() {
                assert_eq!(adaptive_route(s, d, &map), adaptive_route(s, d, &map));
            }
        }
    }

    #[test]
    fn neighbor_and_direction_agree() {
        let t = Topology::new(3, 3);
        let c = NodeId::new(1, 1);
        for dir in 0..4 {
            let n = neighbor(t, c, dir).unwrap();
            assert_eq!(direction_index(c, n), dir);
        }
        assert_eq!(neighbor(t, NodeId::new(0, 0), 0), None); // no north
        assert_eq!(neighbor(t, NodeId::new(2, 2), 1), None); // no south
    }

    /// Exhaustive over the 6×6 mesh: routes stay inside the mesh and never
    /// repeat a node (XY routes are minimal and loop-free).
    #[test]
    fn routes_stay_inside_any_containing_mesh() {
        let t = Topology::new(6, 6);
        for sx in 0u8..6 {
            for sy in 0u8..6 {
                for dx in 0u8..6 {
                    for dy in 0u8..6 {
                        let route = xy_route(NodeId::new(sx, sy), NodeId::new(dx, dy));
                        for hop in &route {
                            assert!(t.contains(*hop));
                        }
                        let mut sorted = route.clone();
                        sorted.sort();
                        sorted.dedup();
                        assert_eq!(sorted.len(), route.len());
                    }
                }
            }
        }
    }
}
