//! Mesh coordinates and XY (dimension-ordered) routing.

use core::fmt;

/// A router/endpoint position in the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId {
    /// Column (0-based, grows east).
    pub x: u8,
    /// Row (0-based, grows south).
    pub y: u8,
}

impl NodeId {
    /// Construct a node id.
    pub const fn new(x: u8, y: u8) -> Self {
        NodeId { x, y }
    }

    /// Manhattan distance to another node.
    pub fn distance(self, other: NodeId) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// The mesh shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Columns.
    pub cols: u8,
    /// Rows.
    pub rows: u8,
}

impl Topology {
    /// Construct a topology.
    ///
    /// # Panics
    /// Panics on an empty mesh.
    pub fn new(cols: u8, rows: u8) -> Self {
        assert!(cols > 0 && rows > 0, "mesh must be non-empty");
        Topology { cols, rows }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        usize::from(self.cols) * usize::from(self.rows)
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `n` lies inside the mesh.
    pub fn contains(&self, n: NodeId) -> bool {
        n.x < self.cols && n.y < self.rows
    }

    /// Iterate all nodes row-major.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        let cols = self.cols;
        (0..self.rows).flat_map(move |y| (0..cols).map(move |x| NodeId::new(x, y)))
    }

    /// Dense index of a node (row-major).
    pub fn index(&self, n: NodeId) -> usize {
        debug_assert!(self.contains(n));
        usize::from(n.y) * usize::from(self.cols) + usize::from(n.x)
    }
}

/// Deterministic XY route: move along X to the destination column, then
/// along Y. Returns every node visited including `src` and `dst`.
pub fn xy_route(src: NodeId, dst: NodeId) -> Vec<NodeId> {
    let mut path = vec![src];
    let mut cur = src;
    while cur.x != dst.x {
        cur.x = if dst.x > cur.x { cur.x + 1 } else { cur.x - 1 };
        path.push(cur);
    }
    while cur.y != dst.y {
        cur.y = if dst.y > cur.y { cur.y + 1 } else { cur.y - 1 };
        path.push(cur);
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_length_is_manhattan_plus_one() {
        let a = NodeId::new(0, 0);
        let b = NodeId::new(3, 2);
        let route = xy_route(a, b);
        assert_eq!(route.len() as u32, a.distance(b) + 1);
        assert_eq!(route.first(), Some(&a));
        assert_eq!(route.last(), Some(&b));
    }

    #[test]
    fn route_goes_x_first() {
        let route = xy_route(NodeId::new(0, 0), NodeId::new(2, 1));
        assert_eq!(
            route,
            vec![
                NodeId::new(0, 0),
                NodeId::new(1, 0),
                NodeId::new(2, 0),
                NodeId::new(2, 1)
            ]
        );
    }

    #[test]
    fn self_route_is_single_node() {
        let n = NodeId::new(1, 1);
        assert_eq!(xy_route(n, n), vec![n]);
    }

    #[test]
    fn westward_and_northward_routes() {
        let route = xy_route(NodeId::new(3, 3), NodeId::new(1, 0));
        assert_eq!(route.len(), 6);
        assert_eq!(route.last(), Some(&NodeId::new(1, 0)));
    }

    #[test]
    fn topology_membership_and_indexing() {
        let t = Topology::new(4, 2);
        assert_eq!(t.len(), 8);
        assert!(t.contains(NodeId::new(3, 1)));
        assert!(!t.contains(NodeId::new(4, 0)));
        assert!(!t.contains(NodeId::new(0, 2)));
        let all: Vec<NodeId> = t.nodes().collect();
        assert_eq!(all.len(), 8);
        for (i, n) in all.iter().enumerate() {
            assert_eq!(t.index(*n), i);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_mesh_panics() {
        Topology::new(0, 3);
    }

    /// Exhaustive over the 6×6 mesh: routes stay inside the mesh and never
    /// repeat a node (XY routes are minimal and loop-free).
    #[test]
    fn routes_stay_inside_any_containing_mesh() {
        let t = Topology::new(6, 6);
        for sx in 0u8..6 {
            for sy in 0u8..6 {
                for dx in 0u8..6 {
                    for dy in 0u8..6 {
                        let route = xy_route(NodeId::new(sx, sy), NodeId::new(dx, dy));
                        for hop in &route {
                            assert!(t.contains(*hop));
                        }
                        let mut sorted = route.clone();
                        sorted.sort();
                        sorted.dedup();
                        assert_eq!(sorted.len(), route.len());
                    }
                }
            }
        }
    }
}
