//! # secbus-noc — the NoC-based comparators from the paper's related work
//!
//! The paper's §II surveys NoC-centric protection schemes: Diguet/Evain's
//! NoC-centric security \[2\], Fiorin's Address Protection Units at the
//! network interfaces \[3\] and Fiorin's monitoring probes \[4\]. The paper
//! itself targets a *bus*; this crate builds the NoC alternative at the
//! same abstraction level so the placement question — firewall at a bus
//! interface vs firewall at a network interface — can be *measured*
//! instead of cited:
//!
//! * [`topology`] — 2D mesh coordinates and deterministic XY routing;
//! * [`network`] — a packet-level mesh with per-output-link contention
//!   and per-hop router latency;
//! * [`ni`] — the network interface, embedding the *same*
//!   `secbus-core` policy machinery as the bus firewalls (that is the
//!   point of the comparison) plus Fiorin-style event probes;
//! * [`system`] — request/response workloads over the mesh, with and
//!   without NI protection, producing latency/throughput numbers the
//!   `noc_compare` bench puts side by side with the shared bus.

pub mod network;
pub mod ni;
pub mod system;
pub mod topology;

pub use network::{Mesh, NocConfig, Packet, PacketId};
pub use ni::{NetworkInterface, ProbeReport};
pub use system::{run_noc_workload, NocRunReport};
pub use topology::{xy_route, NodeId, Topology};
