//! # secbus-noc — the NoC-based comparators from the paper's related work
//!
//! The paper's §II surveys NoC-centric protection schemes: Diguet/Evain's
//! NoC-centric security \[2\], Fiorin's Address Protection Units at the
//! network interfaces \[3\] and Fiorin's monitoring probes \[4\]. The paper
//! itself targets a *bus*; this crate builds the NoC alternative at the
//! same abstraction level so the placement question — firewall at a bus
//! interface vs firewall at a network interface — can be *measured*
//! instead of cited:
//!
//! * [`topology`] — 2D mesh coordinates, deterministic XY routing, the
//!   [`topology::FaultMap`] of *detected* link/router failures and the
//!   fault-region-aware [`topology::adaptive_route`] that detours
//!   around them;
//! * [`link`] — the flit-level link protocol: CRC-32 framing,
//!   ack/nack sequencing and bounded retransmission;
//! * [`network`] — a packet-level mesh with per-output-link contention,
//!   per-hop router latency and (when protected) the fault-tolerant
//!   transport: CRC detection, retransmission, heartbeat router-failure
//!   detection, adaptive rerouting and fail-secure
//!   [`network::NocAlert`]s for anything undeliverable;
//! * [`ni`] — the network interface, embedding the *same*
//!   `secbus-core` policy machinery as the bus firewalls (that is the
//!   point of the comparison) plus Fiorin-style event probes, enforced
//!   at egress *and* at the destination's ingress so rerouted traffic
//!   cannot bypass it;
//! * [`system`] — request/response workloads over the mesh, with and
//!   without NI protection, producing latency/throughput numbers the
//!   `noc_compare` bench puts side by side with the shared bus, and a
//!   fault-plan-driven soak runner the `noc_soak` bench builds on.

pub mod link;
pub mod network;
pub mod ni;
pub mod overload;
pub mod system;
pub mod topology;

pub use link::{crc32, Flit, LinkReply, LinkRx, LinkTx, TxStatus};
pub use network::{
    DeliveryInfo, LossReason, Mesh, MeshQuiet, NocAlert, NocConfig, Packet, PacketId,
};
pub use ni::{NetworkInterface, ProbeReport};
pub use overload::{run_overload, run_overload_with_core, OverloadConfig, OverloadReport};
pub use system::{
    run_noc_soak, run_noc_soak_with_core, run_noc_workload, run_noc_workload_with_core,
    NocRunReport, NocSoakConfig, NocSoakReport,
};
pub use topology::{adaptive_route, xy_route, FaultMap, NodeId, Topology};
