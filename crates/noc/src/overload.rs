//! Open-loop overload runner: offered load fixed by the seed, fabric
//! response measured against it.
//!
//! Unlike [`crate::system`]'s closed-loop harnesses (one outstanding
//! request per initiator, so offered load self-limits), this runner
//! replays a [`secbus_workload`] arrival schedule verbatim: arrivals do
//! not wait for the fabric. Sustained intensity above service capacity
//! therefore *must* be resolved by the fabric's own overload machinery —
//! source-side admission control ([`Mesh::try_inject`]) backed by
//! per-node buffer credits — and the runner audits the outcome with a
//! conservation law no implementation detail can hide behind:
//!
//! ```text
//! offered == delivered + alerted(shed + lost) [+ silent_drops, bare only]
//!            + still_in_flight
//! ```
//!
//! In protected mode `silent_drops` must be zero and `still_in_flight`
//! must reach zero within the drain window (delivery-or-alert, even
//! under overload). The bare mesh is run with the same schedule to show
//! what the credits buy: silent losses and unbounded residue.

use secbus_bus::{Op, Width};
use secbus_sim::{Cycle, SimCore};
use secbus_workload::{Pattern, Workload, WorkloadConfig};

use crate::network::{LossReason, Mesh, MeshQuiet, NocConfig, Packet};
use crate::topology::{NodeId, Topology};

/// Configuration for one open-loop overload run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadConfig {
    /// Mesh width.
    pub cols: u8,
    /// Mesh height.
    pub rows: u8,
    /// Arrival shape (every node is a source; destinations per the
    /// pattern).
    pub pattern: Pattern,
    /// Expected arrivals per node per active cycle.
    pub intensity: f64,
    /// Injection window length.
    pub cycles: u64,
    /// Grace period after the window for residue to deliver or alert.
    pub drain_cycles: u64,
    /// Fault-tolerant transport + credit alerts on/off.
    pub protected: bool,
    /// Buffer credits per router.
    pub node_capacity: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            cols: 4,
            rows: 4,
            pattern: Pattern::Poisson,
            intensity: 0.1,
            cycles: 5_000,
            drain_cycles: 2_000,
            protected: true,
            node_capacity: 8,
            seed: 1,
        }
    }
}

/// Result of one overload run. `PartialEq` so the serial-vs-parallel and
/// seed-determinism checks are one-line assertions.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadReport {
    /// Mesh width and height.
    pub cols: u8,
    /// Mesh height.
    pub rows: u8,
    /// Whether the transport was protected.
    pub protected: bool,
    /// Arrivals the schedule offered.
    pub offered: u64,
    /// Packets delivered to their destination.
    pub delivered: u64,
    /// Arrivals refused at injection (admission control). Protected mode
    /// raises a CreditStall alert for each; the bare mesh drops them.
    pub shed_at_ingress: u64,
    /// Fail-secure transport alerts, total (includes the ingress sheds
    /// in protected mode).
    pub alerts: u64,
    /// Alerts by loss reason (mnemonic, count), report-column order.
    pub alerts_by_reason: Vec<(&'static str, u64)>,
    /// Ground truth: packets lost with no alert (bare mode only).
    pub silent_drops: u64,
    /// Cycles flights spent waiting for downstream buffer credits.
    pub credit_wait_cycles: u64,
    /// Peak packets simultaneously inside the mesh (bounded by
    /// `nodes × node_capacity` when credits work).
    pub max_in_flight: u64,
    /// Cycles after the injection window until the mesh emptied, or
    /// `None` if it never did.
    pub drain_cycles_used: Option<u64>,
    /// Packets still inside the mesh after the drain window.
    pub residue: u64,
    /// `offered == delivered + alerts + silent_drops + residue` — the
    /// books balance (no unaccounted packet, in either mode).
    pub conservation_ok: bool,
    /// Protected-mode promise broken: residue after drain, or any
    /// silent drop.
    pub wedged: bool,
    /// Rendered metrics snapshot (key-sorted JSON, byte-identical per
    /// seed).
    pub metrics_json: String,
}

/// Node `i` on a `cols`-wide mesh.
fn node(i: usize, cols: u8) -> NodeId {
    NodeId::new((i % usize::from(cols)) as u8, (i / usize::from(cols)) as u8)
}

/// Replay an open-loop schedule against the mesh and audit conservation.
/// The run-loop core comes from `SECBUS_SIM_CORE` (event-driven by
/// default); the two cores produce identical reports per seed.
pub fn run_overload(cfg: &OverloadConfig) -> OverloadReport {
    run_overload_with_core(cfg, SimCore::from_env())
}

/// [`run_overload`] with an explicit run-loop core (equivalence tests
/// and benches force both without touching the process environment).
pub fn run_overload_with_core(cfg: &OverloadConfig, core: SimCore) -> OverloadReport {
    let topology = Topology::new(cfg.cols, cfg.rows);
    let nodes = topology.len();
    let noc_config = NocConfig {
        protected: cfg.protected,
        node_capacity: cfg.node_capacity,
        ..NocConfig::default()
    };
    let mut mesh = Mesh::new(topology, noc_config);
    let mut workload = Workload::new(WorkloadConfig {
        pattern: cfg.pattern,
        sources: nodes,
        dests: nodes,
        cols: usize::from(cfg.cols),
        intensity: cfg.intensity,
        cycles: cfg.cycles,
        seed: cfg.seed,
        ..WorkloadConfig::default()
    });

    // Event core: pre-materialize the open-loop schedule (it is a pure
    // function of the seed, so arrival cycles are known exactly and the
    // per-cycle RNG draws are consumed identically to the stepped walk).
    let schedule = match core {
        SimCore::Event => Some(workload.schedule()),
        SimCore::Stepped => None,
    };
    let mut next_arrival = 0usize;

    let mut offered = 0u64;
    let mut delivered = 0u64;
    let mut alerts = 0u64;
    let mut max_in_flight = 0u64;
    let mut drain_cycles_used = None;
    let mut arrivals = Vec::new();

    let total = cfg.cycles + cfg.drain_cycles;
    let mut c = 0u64;
    while c < total {
        let now = Cycle(c);
        arrivals.clear();
        match &schedule {
            Some(all) => {
                while next_arrival < all.len() && all[next_arrival].at == c {
                    arrivals.push(all[next_arrival]);
                    next_arrival += 1;
                }
            }
            None => workload.arrivals_at(c, &mut arrivals),
        }
        for a in &arrivals {
            offered += 1;
            let id = mesh.alloc_id();
            mesh.try_inject(
                Packet {
                    id,
                    src: node(a.source, cfg.cols),
                    dst: node(a.dest, cfg.cols),
                    op: if a.write { Op::Write } else { Op::Read },
                    addr: a.addr,
                    width: Width::Word,
                    data: a.addr ^ (id.0 as u32),
                    flits: 2,
                    injected_at: now,
                },
                now,
            );
        }
        mesh.tick(now);
        for i in 0..nodes {
            while mesh.deliver(node(i, cfg.cols)).is_some() {
                delivered += 1;
            }
        }
        while mesh.take_alert().is_some() {
            alerts += 1;
        }
        max_in_flight = max_in_flight.max(mesh.in_flight() as u64);
        if c >= cfg.cycles && drain_cycles_used.is_none() && mesh.in_flight() == 0 {
            drain_cycles_used = Some(c - cfg.cycles);
        }
        c += 1;
        // Fast-forward over provably idle cycles: no arrival due, the
        // mesh quiet, nothing queued for delivery or alert, and no
        // pending drain-boundary bookkeeping. Skipped cycles are exact
        // no-ops in the stepped walk (max_in_flight and the drain check
        // cannot change while the mesh is quiet).
        if let Some(all) = &schedule {
            if c >= total || mesh.has_pending_deliveries() || mesh.has_pending_alerts() {
                continue;
            }
            let mut target = total;
            if next_arrival < all.len() {
                target = target.min(all[next_arrival].at);
            }
            if drain_cycles_used.is_none() && c < cfg.cycles {
                // The drain check fires at the first post-window cycle.
                target = target.min(cfg.cycles);
            }
            match mesh.next_event(Cycle(c)) {
                MeshQuiet::Active => continue,
                MeshQuiet::Until(at) => target = target.min(at.get()),
                MeshQuiet::Idle => {}
            }
            c = c.max(target.min(total));
        }
    }

    let stats = mesh.stats();
    let silent_drops = stats.counter("noc.silent_drops");
    let residue = mesh.in_flight() as u64;
    let conservation_ok = offered == delivered + alerts + silent_drops + residue;
    let wedged = cfg.protected && (residue > 0 || silent_drops > 0);
    let alerts_by_reason = LossReason::ALL
        .iter()
        .map(|r| (r.mnemonic(), stats.counter(r.stat_key())))
        .collect();
    let mut registry = secbus_sim::MetricsRegistry::new();
    registry.insert("noc", stats);

    OverloadReport {
        cols: cfg.cols,
        rows: cfg.rows,
        protected: cfg.protected,
        offered,
        delivered,
        shed_at_ingress: stats.counter("noc.ingress_refused"),
        alerts,
        alerts_by_reason,
        silent_drops,
        credit_wait_cycles: stats.counter("noc.credit_wait_cycles"),
        max_in_flight,
        drain_cycles_used,
        residue,
        conservation_ok,
        wedged,
        metrics_json: registry.render(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_load_delivers_everything() {
        let r = run_overload(&OverloadConfig {
            intensity: 0.02,
            ..OverloadConfig::default()
        });
        assert!(r.offered > 0);
        assert_eq!(r.delivered, r.offered, "{r:?}");
        assert_eq!(r.shed_at_ingress, 0);
        assert!(r.conservation_ok);
        assert!(!r.wedged);
        assert_eq!(r.residue, 0);
    }

    #[test]
    fn saturation_sheds_with_alerts_and_never_wedges() {
        let r = run_overload(&OverloadConfig {
            pattern: Pattern::Hotspot {
                hot: 15,
                fraction: 0.9,
            },
            intensity: 0.8,
            node_capacity: 4,
            ..OverloadConfig::default()
        });
        assert!(r.shed_at_ingress > 0, "saturation must shed: {r:?}");
        assert!(r.conservation_ok, "books must balance: {r:?}");
        assert_eq!(r.silent_drops, 0, "protected mode never loses silently");
        assert!(!r.wedged, "{r:?}");
        assert!(
            r.max_in_flight <= 16 * 4,
            "credits bound mesh memory: {}",
            r.max_in_flight
        );
    }

    #[test]
    fn bare_mesh_sheds_silently_under_the_same_load() {
        let cfg = OverloadConfig {
            pattern: Pattern::Hotspot {
                hot: 15,
                fraction: 0.9,
            },
            intensity: 0.8,
            node_capacity: 4,
            protected: false,
            ..OverloadConfig::default()
        };
        let r = run_overload(&cfg);
        assert!(r.silent_drops > 0, "bare mode loses without a word: {r:?}");
        assert!(r.conservation_ok, "ground truth still balances: {r:?}");
        assert!(!r.wedged, "bare mode makes no promise to break");
    }

    #[test]
    fn shed_rate_is_monotone_in_offered_load() {
        let shed_fraction = |intensity: f64| {
            let r = run_overload(&OverloadConfig {
                pattern: Pattern::Hotspot {
                    hot: 15,
                    fraction: 0.9,
                },
                intensity,
                node_capacity: 4,
                cycles: 3_000,
                ..OverloadConfig::default()
            });
            assert!(r.conservation_ok && !r.wedged, "{r:?}");
            r.shed_at_ingress as f64 / r.offered.max(1) as f64
        };
        let light = shed_fraction(0.05);
        let medium = shed_fraction(0.4);
        let heavy = shed_fraction(0.9);
        assert!(
            light <= medium && medium <= heavy,
            "{light} {medium} {heavy}"
        );
    }

    #[test]
    fn event_core_matches_stepped_core() {
        // Light load (idle-heavy, many skips), saturation (no skips
        // inside the window) and bare mode must all produce identical
        // reports under both cores, across seeds.
        let configs = [
            OverloadConfig {
                intensity: 0.02,
                ..OverloadConfig::default()
            },
            OverloadConfig {
                pattern: Pattern::Hotspot {
                    hot: 15,
                    fraction: 0.9,
                },
                intensity: 0.8,
                node_capacity: 4,
                cycles: 2_000,
                ..OverloadConfig::default()
            },
            OverloadConfig {
                intensity: 0.3,
                protected: false,
                cycles: 2_000,
                ..OverloadConfig::default()
            },
        ];
        for cfg in configs {
            for seed in [1u64, 9, 42] {
                let cfg = OverloadConfig { seed, ..cfg };
                let stepped = run_overload_with_core(&cfg, SimCore::Stepped);
                let event = run_overload_with_core(&cfg, SimCore::Event);
                assert_eq!(stepped, event, "seed {seed} cfg {cfg:?}");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = OverloadConfig {
            intensity: 0.5,
            node_capacity: 4,
            cycles: 2_000,
            ..OverloadConfig::default()
        };
        assert_eq!(run_overload(&cfg), run_overload(&cfg));
        let other = run_overload(&OverloadConfig { seed: 2, ..cfg });
        assert_ne!(run_overload(&cfg), other, "different seeds must differ");
    }
}
