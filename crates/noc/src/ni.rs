//! The network interface: Fiorin-style Address Protection Unit + probes.
//!
//! Fiorin et al. \[3\] put the filter in the interface between an IP and
//! the NoC, "splitting the IPs address map into zones with specific
//! security policies"; \[4\] adds monitoring probes inside the interface.
//! Both map directly onto `secbus-core`'s machinery: the APU *is* a
//! Configuration Memory + checking modules (same code as the paper's bus
//! firewalls — which is the whole argument for comparing placements, not
//! mechanisms), and the probe is an event counter block reporting to a
//! central collector.

use secbus_bus::Transaction;
use secbus_core::{CheckOutcome, ConfigMemory, SbTiming, Violation};
use secbus_sim::{Cycle, Stats};

use crate::topology::NodeId;

/// A per-NI monitoring report (the probe read-out of \[4\]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeReport {
    /// Which interface.
    pub node: NodeId,
    /// Requests examined.
    pub checked: u64,
    /// Requests rejected by the APU.
    pub rejected: u64,
    /// Arriving requests examined at the destination side.
    pub ingress_checked: u64,
    /// Arriving requests rejected at the destination side.
    pub ingress_rejected: u64,
    /// Violations by kind (mnemonic, count), sorted by mnemonic.
    pub by_kind: Vec<(String, u64)>,
}

/// A network interface with an Address Protection Unit.
pub struct NetworkInterface {
    node: NodeId,
    apu: ConfigMemory,
    timing: SbTiming,
    stats: Stats,
}

impl NetworkInterface {
    /// Create an NI whose APU enforces `policies`.
    pub fn new(node: NodeId, policies: ConfigMemory) -> Self {
        NetworkInterface {
            node,
            apu: policies,
            timing: SbTiming::PAPER,
            stats: Stats::new(),
        }
    }

    /// Override the checking latency.
    pub fn with_timing(mut self, timing: SbTiming) -> Self {
        self.timing = timing;
        self
    }

    /// The mesh position of this interface.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Check an outgoing request. Returns `Ok(latency)` when the packet
    /// may be injected, `Err((violation, latency))` when it is dropped at
    /// the interface.
    pub fn check(&mut self, txn: &Transaction, _now: Cycle) -> Result<u64, (Violation, u64)> {
        self.stats.incr("ni.checked");
        let latency = self.timing.total();
        let outcome = match self.apu.lookup(txn.addr) {
            None => CheckOutcome::Fail(Violation::NoPolicy),
            Some(policy) => secbus_core::checker::check_all(policy, txn),
        };
        match outcome {
            CheckOutcome::Pass => {
                self.stats.incr("ni.passed");
                Ok(latency)
            }
            CheckOutcome::Fail(v) => {
                self.stats.incr("ni.rejected");
                self.stats.incr(&format!("ni.violation.{}", v.mnemonic()));
                Err((v, latency))
            }
        }
    }

    /// Check an arriving request at the destination interface — the
    /// enforcement point that rerouted traffic cannot avoid. A packet
    /// may reach this node over *any* path the adaptive router picks;
    /// whatever the route, it is only serviced if the destination's own
    /// APU admits it, so a detour can never become a policy bypass.
    /// Returns `Ok(latency)` to service, `Err((violation, latency))` to
    /// refuse.
    pub fn check_ingress(
        &mut self,
        txn: &Transaction,
        _now: Cycle,
    ) -> Result<u64, (Violation, u64)> {
        self.stats.incr("ni.ingress_checked");
        let latency = self.timing.total();
        let outcome = match self.apu.lookup(txn.addr) {
            None => CheckOutcome::Fail(Violation::NoPolicy),
            Some(policy) => secbus_core::checker::check_all(policy, txn),
        };
        match outcome {
            CheckOutcome::Pass => {
                self.stats.incr("ni.ingress_passed");
                Ok(latency)
            }
            CheckOutcome::Fail(v) => {
                self.stats.incr("ni.ingress_rejected");
                self.stats.incr(&format!("ni.violation.{}", v.mnemonic()));
                Err((v, latency))
            }
        }
    }

    /// Read the probe counters (non-destructive).
    pub fn probe(&self) -> ProbeReport {
        let by_kind = self
            .stats
            .counters()
            .filter_map(|(k, v)| k.strip_prefix("ni.violation.").map(|m| (m.to_owned(), v)))
            .collect();
        ProbeReport {
            node: self.node,
            checked: self.stats.counter("ni.checked"),
            rejected: self.stats.counter("ni.rejected"),
            ingress_checked: self.stats.counter("ni.ingress_checked"),
            ingress_rejected: self.stats.counter("ni.ingress_rejected"),
            by_kind,
        }
    }

    /// The APU's policy table.
    pub fn policies(&self) -> &ConfigMemory {
        &self.apu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secbus_bus::{AddrRange, MasterId, Op, TxnId, Width};
    use secbus_core::{AdfSet, Rwa, SecurityPolicy};

    fn ni() -> NetworkInterface {
        let policies = ConfigMemory::with_policies(vec![SecurityPolicy::internal(
            1,
            AddrRange::new(0x1000, 0x100),
            Rwa::ReadWrite,
            AdfSet::WORD_ONLY,
        )])
        .unwrap();
        NetworkInterface::new(NodeId::new(1, 1), policies)
    }

    fn txn(op: Op, addr: u32, width: Width) -> Transaction {
        Transaction {
            id: TxnId(0),
            master: MasterId(0),
            op,
            addr,
            width,
            data: 0,
            burst: 1,
            issued_at: Cycle(0),
        }
    }

    #[test]
    fn apu_admits_and_rejects_like_a_local_firewall() {
        let mut ni = ni();
        assert_eq!(
            ni.check(&txn(Op::Read, 0x1004, Width::Word), Cycle(0)),
            Ok(12)
        );
        let err = ni
            .check(&txn(Op::Read, 0x9000, Width::Word), Cycle(0))
            .unwrap_err();
        assert_eq!(err.0, Violation::NoPolicy);
        let err = ni
            .check(&txn(Op::Write, 0x1000, Width::Byte), Cycle(0))
            .unwrap_err();
        assert_eq!(err.0, Violation::FormatViolation);
    }

    #[test]
    fn probe_reports_counters_by_kind() {
        let mut ni = ni();
        let _ = ni.check(&txn(Op::Read, 0x1000, Width::Word), Cycle(0));
        let _ = ni.check(&txn(Op::Read, 0x9000, Width::Word), Cycle(1));
        let _ = ni.check(&txn(Op::Read, 0x9000, Width::Word), Cycle(2));
        let report = ni.probe();
        assert_eq!(report.node, NodeId::new(1, 1));
        assert_eq!(report.checked, 3);
        assert_eq!(report.rejected, 2);
        assert_eq!(report.by_kind, vec![("no_policy".to_string(), 2)]);
    }

    #[test]
    fn ingress_check_enforces_the_same_policy_as_egress() {
        let mut ni = ni();
        assert_eq!(
            ni.check_ingress(&txn(Op::Read, 0x1004, Width::Word), Cycle(0)),
            Ok(12)
        );
        let err = ni
            .check_ingress(&txn(Op::Write, 0x9000, Width::Word), Cycle(1))
            .unwrap_err();
        assert_eq!(err.0, Violation::NoPolicy);
        let report = ni.probe();
        assert_eq!(report.ingress_checked, 2);
        assert_eq!(report.ingress_rejected, 1);
        // Egress counters are untouched by ingress traffic.
        assert_eq!(report.checked, 0);
        assert_eq!(report.rejected, 0);
    }

    #[test]
    fn probe_is_non_destructive() {
        let mut ni = ni();
        let _ = ni.check(&txn(Op::Read, 0x9000, Width::Word), Cycle(0));
        assert_eq!(ni.probe().rejected, 1);
        assert_eq!(ni.probe().rejected, 1);
    }
}
