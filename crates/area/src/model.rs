//! The calibrated composition model.
//!
//! Calibration sources (all from the paper's Table I):
//!
//! ```text
//! per-module:    SB = (0, 393, 393, 0)      CC = (436, 986, 344, 10)
//!                IC = (1224, 1404, 1704, 0) LF = (8, 403, 403, 0)
//! system rows:   w/o = (12895, 11474, 15473, 53)
//!                w/  = (15833, 19554, 21530, 63)
//! ```
//!
//! The with-firewalls row exceeds `baseline + SB+CC+IC + 4×LF` by the
//! interface glue (the LFCB datapath and alert wiring of each firewall);
//! that residual is solved once here and split across the five interfaces
//! so the case-study composition reproduces the printed row exactly.

use crate::resources::Resources;

/// Security Builder of the LCF.
pub const MODULE_SB: Resources = Resources::new(0, 393, 393, 0);
/// Confidentiality Core (AES-128).
pub const MODULE_CC: Resources = Resources::new(436, 986, 344, 10);
/// Integrity Core (hash tree).
pub const MODULE_IC: Resources = Resources::new(1224, 1404, 1704, 0);
/// One Local Firewall (its own SB + FI at the case-study rule count).
pub const MODULE_LF: Resources = Resources::new(8, 403, 403, 0);

/// Paper baseline: the generic case-study system without firewalls.
pub const GENERIC_WITHOUT: Resources = Resources::new(12_895, 11_474, 15_473, 53);
/// Paper result: the same system with 4 LFs + 1 LCF.
pub const GENERIC_WITH: Resources = Resources::new(15_833, 19_554, 21_530, 63);

/// LFCB/glue per Local Firewall (solved residual / 5, see module docs).
pub const LFCB_LF: Resources = Resources::new(249, 737, 400, 0);
/// LFCB/glue of the LCF (residual minus the four LF shares).
pub const LFCB_LCF: Resources = Resources::new(250, 737, 404, 0);

/// The rule count each firewall carries in the paper's case study; the
/// per-rule scaling is calibrated to zero increment at this point.
pub const DEFAULT_RULES_PER_FIREWALL: u32 = 8;

/// Per-extra-rule increment to a firewall's Security Builder (one more
/// comparator row in the policy CAM plus its result register).
pub const PER_RULE: Resources = Resources::new(4, 18, 14, 0);

// Baseline decomposition: plausible per-component costs that sum exactly
// to GENERIC_WITHOUT for the case-study shape (3 CPUs, 1 BRAM, 1 DDR,
// 1 dedicated IP). Values are representative of MicroBlaze v8 / MIG on
// Virtex-6 class devices.
/// One MicroBlaze core incl. its local (LMB) memory BRAMs.
pub const COMP_CPU: Resources = Resources::new(2_700, 2_200, 2_900, 8);
/// The shared internal BRAM (controller + 16 RAMB36).
pub const COMP_BRAM: Resources = Resources::new(400, 350, 500, 16);
/// The DDR controller (MIG) incl. its FIFOs.
pub const COMP_DDR: Resources = Resources::new(3_000, 3_200, 4_600, 12);
/// The dedicated IP.
pub const COMP_IP: Resources = Resources::new(500, 450, 600, 1);
/// The PLB-style shared bus / arbiter / decoder.
pub const COMP_BUS: Resources = Resources::new(895, 874, 1_073, 0);

/// The shape of a system to estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemShape {
    /// Number of processor cores.
    pub cpus: u32,
    /// Number of internal shared memories.
    pub brams: u32,
    /// Number of external-memory controllers.
    pub ddrs: u32,
    /// Number of dedicated IPs.
    pub ips: u32,
}

impl SystemShape {
    /// The paper's case study: 3 MicroBlaze + 1 BRAM + 1 DDR + 1 IP.
    pub const CASE_STUDY: SystemShape = SystemShape {
        cpus: 3,
        brams: 1,
        ddrs: 1,
        ips: 1,
    };

    /// IPs that receive a *Local* Firewall: the bus masters (processors
    /// and dedicated IPs). The internal shared memory is protected by the
    /// masters' outbound checks; the external memory gets the LCF. This
    /// count (4 in the case study) is what the Table I residual was solved
    /// against.
    pub fn local_firewall_count(&self) -> u32 {
        self.cpus + self.ips
    }
}

/// The area estimator.
#[derive(Debug, Clone, Copy, Default)]
pub struct AreaModel;

impl AreaModel {
    /// Cost of the generic (unprotected) system of the given shape.
    pub fn generic_system(&self, shape: SystemShape) -> Resources {
        COMP_CPU * shape.cpus
            + COMP_BRAM * shape.brams
            + COMP_DDR * shape.ddrs
            + COMP_IP * shape.ips
            + COMP_BUS
    }

    /// Cost of one Local Firewall carrying `rules` elementary rules.
    pub fn local_firewall(&self, rules: u32) -> Resources {
        MODULE_LF + LFCB_LF + self.rule_delta(rules)
    }

    /// Cost of the Local Ciphering Firewall carrying `rules` rules.
    pub fn ciphering_firewall(&self, rules: u32) -> Resources {
        MODULE_SB + MODULE_CC + MODULE_IC + LFCB_LCF + self.rule_delta(rules)
    }

    fn rule_delta(&self, rules: u32) -> Resources {
        PER_RULE * rules.saturating_sub(DEFAULT_RULES_PER_FIREWALL)
    }

    /// Cost of the protected system: generic + one LF per internal IP +
    /// one LCF on the external memory path, all at `rules_per_fw` rules.
    pub fn system_with_firewalls(&self, shape: SystemShape, rules_per_fw: u32) -> Resources {
        self.generic_system(shape)
            + self.local_firewall(rules_per_fw) * shape.local_firewall_count()
            + self.ciphering_firewall(rules_per_fw) * shape.ddrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_decomposition_sums_to_paper_row() {
        let m = AreaModel;
        assert_eq!(m.generic_system(SystemShape::CASE_STUDY), GENERIC_WITHOUT);
    }

    #[test]
    fn protected_case_study_reproduces_paper_row_exactly() {
        let m = AreaModel;
        let got = m.system_with_firewalls(SystemShape::CASE_STUDY, DEFAULT_RULES_PER_FIREWALL);
        assert_eq!(got, GENERIC_WITH, "Table I 'with firewalls' row");
    }

    #[test]
    fn residual_split_is_consistent() {
        // 4×LFCB_LF + LFCB_LCF must equal the solved residual.
        let residual =
            GENERIC_WITH - GENERIC_WITHOUT - (MODULE_LF * 4) - MODULE_SB - MODULE_CC - MODULE_IC;
        let glue = LFCB_LF * 4 + LFCB_LCF;
        assert_eq!(glue, residual);
    }

    #[test]
    fn case_study_has_four_local_firewalls() {
        // 3 CPUs + 1 dedicated IP behind LFs; the DDR sits behind the LCF.
        assert_eq!(SystemShape::CASE_STUDY.local_firewall_count(), 4);
    }

    #[test]
    fn bram_overhead_matches_paper_percentage() {
        let m = AreaModel;
        let base = m.generic_system(SystemShape::CASE_STUDY);
        let with = m.system_with_firewalls(SystemShape::CASE_STUDY, DEFAULT_RULES_PER_FIREWALL);
        let pct = with.overhead_pct(&base);
        assert!(
            (pct[3] - 18.87).abs() < 0.01,
            "BRAM overhead {:.2}%",
            pct[3]
        );
    }

    #[test]
    fn more_rules_cost_more_area() {
        let m = AreaModel;
        let a = m.local_firewall(8);
        let b = m.local_firewall(16);
        let c = m.local_firewall(64);
        assert!(b.slice_luts > a.slice_luts);
        assert!(c.slice_luts > b.slice_luts);
        // Linear growth: equal steps.
        assert_eq!(
            c.slice_luts - b.slice_luts,
            (64 - 16) / 8 * (b.slice_luts - a.slice_luts)
        );
    }

    #[test]
    fn fewer_rules_than_default_do_not_underflow() {
        let m = AreaModel;
        assert_eq!(m.local_firewall(1), m.local_firewall(8));
    }

    #[test]
    fn lcf_is_dominated_by_crypto_cores() {
        // Paper: "most of the area is devoted to the confidentiality and
        // Integrity Cores (about 90% of Local Ciphering Firewall area)".
        let m = AreaModel;
        let lcf = m.ciphering_firewall(DEFAULT_RULES_PER_FIREWALL);
        let crypto = MODULE_CC + MODULE_IC;
        let share = f64::from(crypto.slice_luts + crypto.slice_regs)
            / f64::from(lcf.slice_luts + lcf.slice_regs);
        assert!(share > 0.7, "crypto share {share:.2}");
    }

    #[test]
    fn larger_systems_scale_linearly() {
        let m = AreaModel;
        let small = SystemShape {
            cpus: 2,
            brams: 1,
            ddrs: 1,
            ips: 0,
        };
        let big = SystemShape {
            cpus: 8,
            brams: 1,
            ddrs: 1,
            ips: 0,
        };
        let delta = m.generic_system(big) - m.generic_system(small);
        assert_eq!(delta, COMP_CPU * 6);
    }
}
