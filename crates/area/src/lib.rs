//! # secbus-area — a parametric FPGA resource model for Table I
//!
//! The paper evaluates area by synthesising the case study on a Virtex-6
//! (XC6VLX240T) and reporting slice registers, slice LUTs, fully-used
//! LUT-FF pairs and block RAMs, without and with firewalls, plus a
//! per-module breakdown (Table I). We cannot run XST from Rust; instead
//! this crate is a **composition model calibrated on the paper's published
//! per-module numbers**:
//!
//! * the module costs (SB, CC, IC, LF) are the paper's own Table I rows,
//!   taken as calibration constants;
//! * the generic-system baseline is decomposed into plausible per-component
//!   costs (MicroBlaze, MIG DDR controller, BRAM controller, dedicated IP,
//!   bus) that sum exactly to the paper's baseline row;
//! * the interface glue (the LFCB datapath of each firewall) is solved
//!   from the difference between the with-firewalls row and the sum of
//!   baseline + modules, so composing the case study reproduces Table I
//!   **exactly**, and composing any *other* topology gives a defensible
//!   first-order estimate;
//! * rule-count scaling (the paper: "the cost of firewalls is also related
//!   to the number of security rules") adds a linear per-rule increment to
//!   the Security Builder, calibrated to zero at the case-study's default
//!   of 8 rules per firewall.
//!
//! The known OCR inconsistency between the paper's printed absolute counts
//! and its printed percentages is documented in DESIGN.md §2; this crate
//! reproduces the absolute counts and derives percentages from them.

pub mod energy;
pub mod model;
pub mod resources;
pub mod table1;

pub use energy::{ActivityCounts, EnergyModel, EnergyReport};
pub use model::{AreaModel, SystemShape, DEFAULT_RULES_PER_FIREWALL};
pub use resources::Resources;
pub use table1::Table1;
