//! Renders the paper's Table I from the model.

use crate::model::{
    AreaModel, SystemShape, DEFAULT_RULES_PER_FIREWALL, MODULE_CC, MODULE_IC, MODULE_LF, MODULE_SB,
};
use crate::resources::Resources;

/// The regenerated Table I.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Generic system without firewalls.
    pub without: Resources,
    /// Generic system with firewalls.
    pub with: Resources,
    /// Overhead percentages (with vs without), per column.
    pub overhead_pct: [f64; 4],
    /// LCF Security Builder.
    pub sb: Resources,
    /// LCF Confidentiality Core.
    pub cc: Resources,
    /// LCF Integrity Core.
    pub ic: Resources,
    /// One Local Firewall.
    pub lf: Resources,
}

impl Table1 {
    /// Regenerate the table for the paper's case study.
    pub fn case_study() -> Table1 {
        Table1::for_shape(SystemShape::CASE_STUDY, DEFAULT_RULES_PER_FIREWALL)
    }

    /// Regenerate for an arbitrary shape/rule count (ablations).
    pub fn for_shape(shape: SystemShape, rules: u32) -> Table1 {
        let m = AreaModel;
        let without = m.generic_system(shape);
        let with = m.system_with_firewalls(shape, rules);
        Table1 {
            without,
            with,
            overhead_pct: with.overhead_pct(&without),
            sb: MODULE_SB,
            cc: MODULE_CC,
            ic: MODULE_IC,
            lf: MODULE_LF,
        }
    }

    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let row = |name: &str, r: &Resources| {
            format!(
                "{:<24} {:>10} {:>10} {:>12} {:>8}\n",
                name, r.slice_regs, r.slice_luts, r.lutff_pairs, r.brams
            )
        };
        out.push_str(&format!(
            "{:<24} {:>10} {:>10} {:>12} {:>8}\n",
            "", "Slice Regs", "Slice LUTs", "LUT-FF pairs", "BRAMs"
        ));
        out.push_str(&row("Generic w/o firewalls", &self.without));
        out.push_str(&row("Generic w/ firewalls", &self.with));
        out.push_str(&format!(
            "{:<24} {:>9.2}% {:>9.2}% {:>11.2}% {:>7.2}%\n",
            "  overhead",
            self.overhead_pct[0],
            self.overhead_pct[1],
            self.overhead_pct[2],
            self.overhead_pct[3]
        ));
        out.push_str(&row("LCF: Security Builder", &self.sb));
        out.push_str(&row("LCF: Confidentiality", &self.cc));
        out.push_str(&row("LCF: Integrity", &self.ic));
        out.push_str(&row("Local Firewall", &self.lf));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GENERIC_WITH, GENERIC_WITHOUT};

    #[test]
    fn case_study_rows_match_paper() {
        let t = Table1::case_study();
        assert_eq!(t.without, GENERIC_WITHOUT);
        assert_eq!(t.with, GENERIC_WITH);
        assert_eq!(t.sb, Resources::new(0, 393, 393, 0));
        assert_eq!(t.cc, Resources::new(436, 986, 344, 10));
        assert_eq!(t.ic, Resources::new(1224, 1404, 1704, 0));
        assert_eq!(t.lf, Resources::new(8, 403, 403, 0));
    }

    #[test]
    fn render_contains_all_rows_and_numbers() {
        let s = Table1::case_study().render();
        for needle in [
            "12895", "15833", "11474", "19554", "393", "986", "1404", "403", "63",
        ] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
        assert!(s.contains("Generic w/o firewalls"));
        assert!(s.contains("overhead"));
    }

    #[test]
    fn derived_overheads_are_reported() {
        let t = Table1::case_study();
        // Derived from the absolute counts (see DESIGN.md on the OCR
        // mismatch with the paper's printed percentages).
        assert!((t.overhead_pct[0] - 22.78).abs() < 0.01);
        assert!((t.overhead_pct[3] - 18.87).abs() < 0.01);
    }

    #[test]
    fn bigger_rule_sets_raise_the_with_row_only() {
        let base = Table1::for_shape(SystemShape::CASE_STUDY, 8);
        let heavy = Table1::for_shape(SystemShape::CASE_STUDY, 40);
        assert_eq!(base.without, heavy.without);
        assert!(heavy.with.slice_luts > base.with.slice_luts);
    }
}
