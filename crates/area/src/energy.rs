//! Activity-based energy estimation.
//!
//! The paper motivates the area/latency trade-off with "embedded systems
//! where constraints are tight in terms of area, power and energy" but
//! reports no power numbers. This model makes the energy story explicit:
//! per-event energies (representative of a 40 nm-class FPGA; every
//! constant is a parameter, not a claim) multiplied by the activity
//! counters the simulator already collects. The output is the *relative*
//! picture — which mechanism dominates, how protection scales energy —
//! not absolute silicon measurements.

/// Event counts harvested from a run (see `secbus-bench`'s collector).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ActivityCounts {
    /// Transactions granted the bus.
    pub bus_grants: u64,
    /// Security Builder passes (all firewalls).
    pub sb_checks: u64,
    /// AES block operations (CC encrypt/decrypt passes).
    pub aes_blocks: u64,
    /// Hash evaluations (IC leaf + path nodes).
    pub hash_blocks: u64,
    /// Internal (BRAM) accesses served.
    pub bram_accesses: u64,
    /// External (DDR) device accesses served.
    pub ddr_accesses: u64,
    /// Cycles simulated (for static energy).
    pub cycles: u64,
}

/// Per-event energies in picojoules, plus static power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// One bus grant + data phase.
    pub bus_grant_pj: f64,
    /// One Security Builder pass (lookup + 4 checking modules).
    pub sb_check_pj: f64,
    /// One AES-128 block.
    pub aes_block_pj: f64,
    /// One SHA-256 compression.
    pub hash_block_pj: f64,
    /// One BRAM access.
    pub bram_access_pj: f64,
    /// One external DDR access (I/O dominated).
    pub ddr_access_pj: f64,
    /// Static power of the whole system, in milliwatts at the 100 MHz
    /// case-study clock (charged per cycle).
    pub static_mw: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        // Representative magnitudes: external I/O ≫ crypto ≫ checking ≫
        // on-chip RAM. The *ordering* is the load-bearing part.
        EnergyModel {
            bus_grant_pj: 14.0,
            sb_check_pj: 18.0,
            aes_block_pj: 180.0,
            hash_block_pj: 310.0,
            bram_access_pj: 9.0,
            ddr_access_pj: 1_400.0,
            static_mw: 350.0,
        }
    }
}

/// Estimated energy of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyReport {
    /// Dynamic energy per contributor, in nanojoules: (name, nJ).
    pub breakdown: Vec<(String, f64)>,
    /// Total dynamic energy in nanojoules.
    pub dynamic_nj: f64,
    /// Static energy over the run in nanojoules (at 100 MHz).
    pub static_nj: f64,
}

impl EnergyModel {
    /// Estimate energy for the given activity.
    pub fn estimate(&self, a: &ActivityCounts) -> EnergyReport {
        let items = [
            ("bus", self.bus_grant_pj * a.bus_grants as f64),
            ("checking (SB)", self.sb_check_pj * a.sb_checks as f64),
            ("AES (CC)", self.aes_block_pj * a.aes_blocks as f64),
            ("hash tree (IC)", self.hash_block_pj * a.hash_blocks as f64),
            ("BRAM", self.bram_access_pj * a.bram_accesses as f64),
            ("DDR", self.ddr_access_pj * a.ddr_accesses as f64),
        ];
        let breakdown: Vec<(String, f64)> = items
            .iter()
            .map(|(n, pj)| (n.to_string(), pj / 1000.0))
            .collect();
        let dynamic_nj = breakdown.iter().map(|(_, nj)| nj).sum();
        // static: mW at 100 MHz -> 10 ns/cycle -> pJ/cycle = mW * 10.
        let static_nj = self.static_mw * 10.0 * a.cycles as f64 / 1000.0;
        EnergyReport {
            breakdown,
            dynamic_nj,
            static_nj,
        }
    }
}

impl EnergyReport {
    /// Dynamic share of one named contributor (0..1).
    pub fn share(&self, name: &str) -> f64 {
        if self.dynamic_nj == 0.0 {
            return 0.0;
        }
        self.breakdown
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0.0, |(_, nj)| nj / self.dynamic_nj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts() -> ActivityCounts {
        ActivityCounts {
            bus_grants: 1_000,
            sb_checks: 2_000,
            aes_blocks: 500,
            hash_blocks: 400,
            bram_accesses: 800,
            ddr_accesses: 200,
            cycles: 10_000,
        }
    }

    #[test]
    fn totals_add_up() {
        let m = EnergyModel::default();
        let r = m.estimate(&counts());
        let sum: f64 = r.breakdown.iter().map(|(_, nj)| nj).sum();
        assert!((sum - r.dynamic_nj).abs() < 1e-9);
        assert!(r.dynamic_nj > 0.0 && r.static_nj > 0.0);
    }

    #[test]
    fn external_memory_dominates_per_access() {
        // 200 DDR accesses cost more than 800 BRAM accesses: the paper's
        // "promote internal communication" advice in energy terms.
        let m = EnergyModel::default();
        let r = m.estimate(&counts());
        assert!(r.share("DDR") > r.share("BRAM"));
        assert!(r.share("DDR") > r.share("checking (SB)"));
    }

    #[test]
    fn zero_activity_zero_dynamic() {
        let r = EnergyModel::default().estimate(&ActivityCounts::default());
        assert_eq!(r.dynamic_nj, 0.0);
        assert_eq!(r.share("bus"), 0.0);
    }

    #[test]
    fn checking_is_cheap_relative_to_crypto() {
        let m = EnergyModel::default();
        assert!(m.sb_check_pj * 10.0 < m.aes_block_pj + m.hash_block_pj);
    }
}
