//! FPGA resource vectors (the four columns of Table I).

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul, Sub};

/// One row of synthesis results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Resources {
    /// Slice registers.
    pub slice_regs: u32,
    /// Slice LUTs.
    pub slice_luts: u32,
    /// Fully-used LUT-FF pairs.
    pub lutff_pairs: u32,
    /// 36K block RAMs.
    pub brams: u32,
}

impl Resources {
    /// All-zero vector.
    pub const ZERO: Resources = Resources::new(0, 0, 0, 0);

    /// Construct a vector.
    pub const fn new(slice_regs: u32, slice_luts: u32, lutff_pairs: u32, brams: u32) -> Self {
        Resources {
            slice_regs,
            slice_luts,
            lutff_pairs,
            brams,
        }
    }

    /// Per-column overhead of `self` relative to `baseline`, in percent.
    ///
    /// Returns `[regs, luts, pairs, brams]`. A zero baseline column yields
    /// 0% rather than dividing by zero.
    pub fn overhead_pct(&self, baseline: &Resources) -> [f64; 4] {
        let pct = |a: u32, b: u32| {
            if b == 0 {
                0.0
            } else {
                (f64::from(a) - f64::from(b)) / f64::from(b) * 100.0
            }
        };
        [
            pct(self.slice_regs, baseline.slice_regs),
            pct(self.slice_luts, baseline.slice_luts),
            pct(self.lutff_pairs, baseline.lutff_pairs),
            pct(self.brams, baseline.brams),
        ]
    }

    /// Saturating subtraction per column (useful for deltas).
    pub fn saturating_sub(&self, other: &Resources) -> Resources {
        Resources {
            slice_regs: self.slice_regs.saturating_sub(other.slice_regs),
            slice_luts: self.slice_luts.saturating_sub(other.slice_luts),
            lutff_pairs: self.lutff_pairs.saturating_sub(other.lutff_pairs),
            brams: self.brams.saturating_sub(other.brams),
        }
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        Resources {
            slice_regs: self.slice_regs + rhs.slice_regs,
            slice_luts: self.slice_luts + rhs.slice_luts,
            lutff_pairs: self.lutff_pairs + rhs.lutff_pairs,
            brams: self.brams + rhs.brams,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        *self = *self + rhs;
    }
}

impl Sub for Resources {
    type Output = Resources;
    fn sub(self, rhs: Resources) -> Resources {
        Resources {
            slice_regs: self.slice_regs - rhs.slice_regs,
            slice_luts: self.slice_luts - rhs.slice_luts,
            lutff_pairs: self.lutff_pairs - rhs.lutff_pairs,
            brams: self.brams - rhs.brams,
        }
    }
}

impl Mul<u32> for Resources {
    type Output = Resources;
    fn mul(self, n: u32) -> Resources {
        Resources {
            slice_regs: self.slice_regs * n,
            slice_luts: self.slice_luts * n,
            lutff_pairs: self.lutff_pairs * n,
            brams: self.brams * n,
        }
    }
}

impl Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>7} regs {:>7} LUTs {:>7} pairs {:>4} BRAM",
            self.slice_regs, self.slice_luts, self.lutff_pairs, self.brams
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Resources::new(10, 20, 30, 4);
        let b = Resources::new(1, 2, 3, 1);
        assert_eq!(a + b, Resources::new(11, 22, 33, 5));
        assert_eq!(a - b, Resources::new(9, 18, 27, 3));
        assert_eq!(b * 3, Resources::new(3, 6, 9, 3));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Resources = vec![Resources::new(1, 1, 1, 0); 5].into_iter().sum();
        assert_eq!(total, Resources::new(5, 5, 5, 0));
    }

    #[test]
    fn overhead_percentages_match_paper_bram_column() {
        // 53 -> 63 BRAMs is the paper's +18.87%.
        let base = Resources::new(12895, 11474, 15473, 53);
        let with = Resources::new(15833, 19554, 21530, 63);
        let pct = with.overhead_pct(&base);
        assert!((pct[3] - 18.867924528301888).abs() < 1e-9);
        assert!(pct[0] > 0.0 && pct[1] > 0.0 && pct[2] > 0.0);
    }

    #[test]
    fn overhead_zero_baseline_is_zero() {
        let pct = Resources::new(5, 5, 5, 5).overhead_pct(&Resources::ZERO);
        assert_eq!(pct, [0.0; 4]);
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = Resources::new(1, 1, 1, 1);
        let b = Resources::new(2, 0, 2, 0);
        assert_eq!(a.saturating_sub(&b), Resources::new(0, 1, 0, 1));
    }

    #[test]
    fn display_contains_all_columns() {
        let s = Resources::new(1, 2, 3, 4).to_string();
        assert!(s.contains("regs") && s.contains("LUTs") && s.contains("BRAM"));
    }
}
